// E8 — Multi-resolution visual analytics aggregation (§3.2).
//
// Paper: "scalable spatio-temporal analytical querying, such as drill-down /
// zoom-in and on user-defined spatio-temporal regions of interest" and
// "building situation overview ... at desired scales and levels of detail".
//
// Benchmarks density-grid construction across resolutions, zoom-out
// coarsening, drill-down rebuilds, and situation-snapshot computation.

#include <benchmark/benchmark.h>

#include "bench_util.h"
#include "core/pipeline.h"
#include "va/density.h"
#include "va/flows.h"
#include "va/situation.h"

namespace marlin {
namespace {

ScenarioConfig VaConfig() {
  ScenarioConfig config;
  config.seed = 88;
  config.duration = 6 * kMillisPerHour;
  config.transit_vessels = 80;
  config.fishing_vessels = 15;
  config.loiter_vessels = 5;
  config.rendezvous_pairs = 0;
  config.dark_vessels = 0;
  config.spoof_identity_vessels = 0;
  config.spoof_teleport_vessels = 0;
  config.perfect_reception = true;
  return config;
}

void BM_DensityBuild(benchmark::State& state) {
  const ScenarioOutput& scenario = bench::SharedScenario(VaConfig());
  const double cell_deg = static_cast<double>(state.range(0)) / 1000.0;
  const BoundingBox bounds = bench::SharedWorld().Bounds().Expanded(0.5);
  size_t cells = 0;
  double points = 0;
  for (auto _ : state) {
    DensityGrid grid(bounds, cell_deg);
    for (const auto& [mmsi, traj] : scenario.truth) {
      grid.AddTrajectory(traj);
    }
    cells = static_cast<size_t>(grid.rows()) * grid.cols();
    points = grid.TotalWeight();
    benchmark::DoNotOptimize(grid);
  }
  state.counters["cells"] = static_cast<double>(cells);
  state.counters["points"] = points;
  state.counters["points_per_s"] =
      benchmark::Counter(points * state.iterations(),
                         benchmark::Counter::kIsRate);
}
BENCHMARK(BM_DensityBuild)
    ->Arg(20)    // 0.02°
    ->Arg(100)   // 0.1°
    ->Arg(500)   // 0.5°
    ->Arg(2000)  // 2.0°
    ->Unit(benchmark::kMillisecond);

void BM_ZoomOutCoarsen(benchmark::State& state) {
  const ScenarioOutput& scenario = bench::SharedScenario(VaConfig());
  const BoundingBox bounds = bench::SharedWorld().Bounds().Expanded(0.5);
  DensityGrid fine(bounds, 0.02);
  for (const auto& [mmsi, traj] : scenario.truth) fine.AddTrajectory(traj);
  for (auto _ : state) {
    benchmark::DoNotOptimize(fine.Coarsen(10));
  }
}
BENCHMARK(BM_ZoomOutCoarsen)->Unit(benchmark::kMillisecond);

void BM_DrillDownRebuild(benchmark::State& state) {
  const ScenarioOutput& scenario = bench::SharedScenario(VaConfig());
  const Port& port = bench::SharedWorld().ports()[6];
  const BoundingBox region(port.position.lat - 0.5, port.position.lon - 0.5,
                           port.position.lat + 0.5, port.position.lon + 0.5);
  for (auto _ : state) {
    DensityGrid detail = DensityGrid::DrillDown(region, 0.005);
    for (const auto& [mmsi, traj] : scenario.truth) {
      detail.AddTrajectory(traj);
    }
    benchmark::DoNotOptimize(detail);
  }
}
BENCHMARK(BM_DrillDownRebuild)->Unit(benchmark::kMillisecond);

void BM_SituationSnapshot(benchmark::State& state) {
  const ScenarioOutput& scenario = bench::SharedScenario(VaConfig());
  const World& world = bench::SharedWorld();
  static MaritimePipeline* pipeline = [] {
    auto* p = new MaritimePipeline(PipelineConfig{},
                                   &bench::SharedWorld().zones(), nullptr,
                                   nullptr, nullptr);
    p->Run(bench::SharedScenario(VaConfig()).nmea);
    return p;
  }();
  SituationOverview overview(&pipeline->store(), &world.zones(),
                             &pipeline->coverage());
  const Timestamp probe = scenario.nmea.back().event_time;
  for (auto _ : state) {
    benchmark::DoNotOptimize(overview.Snapshot(probe));
  }
  state.counters["vessels"] =
      static_cast<double>(pipeline->store().VesselCount());
}
BENCHMARK(BM_SituationSnapshot)->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace marlin

int main(int argc, char** argv) {
  marlin::bench::Banner(
      "E8: multi-resolution aggregation & situation overview (§3.2)",
      "\"drill-down / zoom-in\" querying and \"situation overview ... at "
      "desired scales and levels of detail\"");
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
