#ifndef MARLIN_BENCH_BENCH_UTIL_H_
#define MARLIN_BENCH_BENCH_UTIL_H_

/// \file bench_util.h
/// \brief Shared helpers for the experiment benchmarks (E1–E12, F1–F2).
///
/// Each bench binary regenerates one experiment from DESIGN.md §3 and prints
/// a table headed by the experiment id, the paper's claim, and the measured
/// result, so EXPERIMENTS.md can be cross-checked against raw output.

#include <cstdio>
#include <memory>
#include <string>

#include "sim/scenario.h"
#include "sim/world.h"

namespace marlin {
namespace bench {

/// \brief Prints the experiment banner.
inline void Banner(const char* id, const char* claim) {
  std::printf("\n===== %s =====\n", id);
  std::printf("paper anchor: %s\n\n", claim);
}

/// \brief Lazily generated shared scenario (expensive; reused across
/// benchmark repetitions within one binary).
inline const ScenarioOutput& SharedScenario(const ScenarioConfig& config) {
  static std::unique_ptr<World> world;
  static std::unique_ptr<ScenarioOutput> scenario;
  if (scenario == nullptr) {
    world = std::make_unique<World>(World::Basin());
    scenario = std::make_unique<ScenarioOutput>(
        GenerateScenario(*world, config));
  }
  return *scenario;
}

/// \brief The shared basin world (matches SharedScenario's world).
inline const World& SharedWorld() {
  static const World world = World::Basin();
  return world;
}

}  // namespace bench
}  // namespace marlin

#endif  // MARLIN_BENCH_BENCH_UTIL_H_
