// E4 — RDF stores vs. trajectory-native storage (§2.3, §2.5).
//
// Paper: "current RDF stores with spatial and/or temporal support are not
// tailored to offer efficient trajectory-oriented data management, due to
// the volatile, multi-dimensional, and inherently sequential nature of such
// data" and their "performance still falls largely behind standard
// spatially-enabled DBMS's".
//
// The same trajectories are stored (a) as a dictionary-encoded triple graph
// queried through a basic-graph-pattern join, and (b) in the trajectory-
// native store. The factor between per-query latencies and between memory
// footprints is the reproduced "shape".

#include <benchmark/benchmark.h>

#include <memory>

#include "bench_util.h"
#include "rdf/annotator.h"
#include "storage/trajectory_store.h"

namespace marlin {
namespace {

ScenarioConfig RdfConfig() {
  ScenarioConfig config;
  config.seed = 44;
  config.duration = 2 * kMillisPerHour;
  config.transit_vessels = 20;
  config.fishing_vessels = 5;
  config.loiter_vessels = 0;
  config.rendezvous_pairs = 0;
  config.dark_vessels = 0;
  config.spoof_identity_vessels = 0;
  config.spoof_teleport_vessels = 0;
  config.perfect_reception = true;
  return config;
}

struct Fixture {
  TermDictionary dict;
  std::unique_ptr<TripleStore> triples;
  TrajectoryStore native;
  std::vector<uint32_t> vessels;
  Timestamp t0 = 0, t1 = 0;

  static Fixture& Get() {
    static Fixture f;
    return f;
  }

 private:
  Fixture() {
    triples = std::make_unique<TripleStore>(&dict);
    TrajectoryAnnotator annotator(triples.get());
    const ScenarioOutput& scenario = bench::SharedScenario(RdfConfig());
    for (const auto& [mmsi, truth] : scenario.truth) {
      annotator.Annotate(truth);
      for (const auto& p : truth.points) (void)native.Append(mmsi, p);
      vessels.push_back(mmsi);
      t0 = truth.StartTime();
      t1 = truth.EndTime();
    }
    triples->Commit();
  }
};

void BM_RdfTrajectoryRetrieval(benchmark::State& state) {
  Fixture& f = Fixture::Get();
  const Timestamp qt0 = f.t0 + Minutes(30);
  const Timestamp qt1 = f.t0 + Minutes(90);
  size_t rows = 0;
  size_t i = 0;
  for (auto _ : state) {
    const uint32_t mmsi = f.vessels[i++ % f.vessels.size()];
    const auto points = QueryTrajectoryFromRdf(*f.triples, mmsi, qt0, qt1);
    rows = points.size();
    benchmark::DoNotOptimize(points);
  }
  state.counters["rows"] = static_cast<double>(rows);
  state.counters["store_bytes"] = static_cast<double>(
      f.triples->ApproximateBytes() + f.dict.ApproximateBytes());
  state.counters["triples"] = static_cast<double>(f.triples->size());
}
BENCHMARK(BM_RdfTrajectoryRetrieval)->Unit(benchmark::kMillisecond);

void BM_NativeTrajectoryRetrieval(benchmark::State& state) {
  Fixture& f = Fixture::Get();
  const Timestamp qt0 = f.t0 + Minutes(30);
  const Timestamp qt1 = f.t0 + Minutes(90);
  size_t rows = 0;
  size_t i = 0;
  for (auto _ : state) {
    const uint32_t mmsi = f.vessels[i++ % f.vessels.size()];
    const auto slice = f.native.GetTrajectorySlice(mmsi, qt0, qt1);
    rows = slice.ok() ? slice->points.size() : 0;
    benchmark::DoNotOptimize(slice);
  }
  state.counters["rows"] = static_cast<double>(rows);
  state.counters["store_bytes"] = static_cast<double>(
      f.native.PointCount() * sizeof(TrajectoryPoint));
}
BENCHMARK(BM_NativeTrajectoryRetrieval)->Unit(benchmark::kMicrosecond);

void BM_RdfPointLookupByPattern(benchmark::State& state) {
  // Single-pattern scans are where triple stores are fine — the gap opens
  // on multi-join trajectory reconstruction.
  Fixture& f = Fixture::Get();
  const TermId type = f.dict.Iri("rdf:type");
  const TermId vessel_class = f.dict.Iri("dtc:Vessel");
  for (auto _ : state) {
    benchmark::DoNotOptimize(f.triples->Match(std::nullopt, type, vessel_class));
  }
}
BENCHMARK(BM_RdfPointLookupByPattern)->Unit(benchmark::kMicrosecond);

}  // namespace
}  // namespace marlin

int main(int argc, char** argv) {
  marlin::bench::Banner(
      "E4: RDF store vs trajectory-native store (§2.3/§2.5)",
      "\"RDF stores ... are not tailored to offer efficient "
      "trajectory-oriented data management\"; performance \"falls largely "
      "behind\" dedicated stores");
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
