// E10 — Data-quality assessment & registry conflict resolution (§1, §4).
//
// Paper: "approximately 0.5% of AIS static data transmissions have errors of
// any kind" (Winkler [44]) and §4's MarineTraffic-vs-Lloyd's conflicts that
// "additional knowledge on sources' quality may help solving".
//
// Part A seeds static-data defects at the paper's 0.5% rate and measures the
// assessor's recovered rate. Part B sweeps registry disagreement rates and
// compares naive (coin-flip source) vs quality-aware conflict resolution.

#include <benchmark/benchmark.h>

#include <cstdio>

#include "ais/codec.h"
#include "ais/validation.h"
#include "bench_util.h"
#include "context/registry.h"

namespace marlin {
namespace {

// --- Part A: static-data error rate -------------------------------------

double MeasuredStaticErrorRate(double seeded_rate, uint64_t seed) {
  ScenarioConfig config;
  config.seed = seed;
  config.duration = 4 * kMillisPerHour;
  config.transit_vessels = 40;
  config.fishing_vessels = 0;
  config.loiter_vessels = 0;
  config.rendezvous_pairs = 0;
  config.dark_vessels = 0;
  config.spoof_identity_vessels = 0;
  config.spoof_teleport_vessels = 0;
  config.perfect_reception = true;
  config.static_error_rate = seeded_rate;
  config.static_interval = Minutes(6);
  const ScenarioOutput scenario =
      GenerateScenario(bench::SharedWorld(), config);
  AisDecoder decoder;
  QualityAssessor assessor;
  for (const auto& ev : scenario.nmea) {
    const auto msg = decoder.Decode(ev.payload, ev.ingest_time);
    if (msg.has_value()) assessor.Observe(*msg);
  }
  return assessor.report().StaticErrorRate();
}

// --- Part B: registry conflict resolution -------------------------------

struct ResolutionResult {
  double naive_accuracy = 0.0;
  double quality_aware_accuracy = 0.0;
  int conflicts = 0;
};

ResolutionResult ResolveSweepPoint(double disagreement_rate, uint64_t seed) {
  Rng rng(seed);
  VesselRegistry good("lloyds"), noisy("marinetraffic");
  SourceQualityModel quality;
  struct TruthRec {
    std::string flag;
    int length;
  };
  std::map<uint32_t, TruthRec> truth;
  for (uint32_t i = 0; i < 400; ++i) {
    const uint32_t mmsi = 228000000 + i;
    RegistryRecord rec;
    rec.mmsi = mmsi;
    rec.name = "VESSEL " + std::to_string(i);
    rec.flag = "FR";
    rec.length_m = 80 + static_cast<int>(i % 150);
    rec.beam_m = 15;
    rec.ship_type = 70;
    truth[mmsi] = TruthRec{rec.flag, rec.length_m};
    good.Upsert(rec);
    RegistryRecord copy = rec;
    if (rng.Bernoulli(disagreement_rate)) copy.flag = "MT";
    if (rng.Bernoulli(disagreement_rate)) {
      copy.length_m += static_cast<int>(rng.UniformInt(1, 5));
    }
    noisy.Upsert(copy);
  }
  // Calibrate quality on 20 vessels with known truth.
  int calibrated = 0;
  for (const auto& [mmsi, t] : truth) {
    if (calibrated >= 20) break;
    const auto g = good.Lookup(mmsi);
    const auto n = noisy.Lookup(mmsi);
    quality.Record("lloyds", g->flag == t.flag && g->length_m == t.length);
    quality.Record("marinetraffic",
                   n->flag == t.flag && n->length_m == t.length);
    ++calibrated;
  }

  ResolutionResult result;
  SourceQualityModel coin_flip_quality;  // uninformed: both sources 0.5
  RegistryResolver aware(&quality);
  RegistryResolver naive(&coin_flip_quality);
  int aware_right = 0, naive_right = 0;
  for (const auto& [mmsi, t] : truth) {
    const auto ra = aware.Resolve(noisy, good, mmsi);
    const auto rn = naive.Resolve(noisy, good, mmsi);
    if (!ra.has_value() || ra->conflicting_fields.empty()) continue;
    result.conflicts += static_cast<int>(ra->conflicting_fields.size());
    if (ra->record.flag == t.flag && ra->record.length_m == t.length) {
      aware_right += static_cast<int>(ra->conflicting_fields.size());
    }
    if (rn->record.flag == t.flag && rn->record.length_m == t.length) {
      naive_right += static_cast<int>(rn->conflicting_fields.size());
    }
  }
  if (result.conflicts > 0) {
    result.quality_aware_accuracy =
        static_cast<double>(aware_right) / result.conflicts;
    result.naive_accuracy = static_cast<double>(naive_right) / result.conflicts;
  }
  return result;
}

void PrintTables() {
  std::printf("--- Part A: static-data defect rate recovery ---\n");
  std::printf("%14s %14s\n", "seeded rate", "measured rate");
  for (double rate : {0.005, 0.02, 0.05}) {
    std::printf("%13.1f%% %13.2f%%\n", rate * 100,
                100.0 * MeasuredStaticErrorRate(rate, 1000));
  }
  std::printf("(paper claim: ~0.5%% of static transmissions carry errors)\n");

  std::printf("\n--- Part B: registry conflict resolution ---\n");
  std::printf("%18s %10s %14s %16s\n", "disagreement rate", "conflicts",
              "first-src acc.", "quality-aware");
  for (double rate : {0.05, 0.15, 0.30}) {
    const ResolutionResult r =
        ResolveSweepPoint(rate, 2000 + static_cast<uint64_t>(rate * 100));
    std::printf("%17.0f%% %10d %14.2f %16.2f\n", rate * 100, r.conflicts,
                r.naive_accuracy, r.quality_aware_accuracy);
  }
}

void BM_QualityAssessment(benchmark::State& state) {
  double measured = 0.0;
  for (auto _ : state) {
    measured = MeasuredStaticErrorRate(0.005, 1000);
  }
  state.counters["measured_rate_pct"] = measured * 100.0;
}
BENCHMARK(BM_QualityAssessment)->Unit(benchmark::kMillisecond)->Iterations(1);

void BM_RegistryResolution(benchmark::State& state) {
  ResolutionResult r{};
  for (auto _ : state) {
    r = ResolveSweepPoint(0.15, 2015);
  }
  state.counters["quality_aware_accuracy"] = r.quality_aware_accuracy;
  state.counters["naive_accuracy"] = r.naive_accuracy;
}
BENCHMARK(BM_RegistryResolution)->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace marlin

int main(int argc, char** argv) {
  marlin::bench::Banner(
      "E10: data quality & source-aware conflict resolution (§1, §4)",
      "\"~0.5% of AIS static data transmissions have errors\"; registry "
      "conflicts resolved with \"knowledge on sources' quality\"");
  marlin::PrintTables();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
