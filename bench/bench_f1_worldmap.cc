// F1 — Regenerating Figure 1: worldwide AIS positions (satellite reception).
//
// The paper's Figure 1 is a map of "Worldwide AIS positions acquired by
// satellites (ORBCOMM)". This bench builds the same artefact from the
// global simulator: a day of trunk-route traffic received mostly via the
// satellite model, decoded and binned into a 1° density grid, exported as
// worldmap_f1.ppm + CSV, and timed.

#include <benchmark/benchmark.h>

#include <cstdio>

#include "ais/codec.h"
#include "bench_util.h"
#include "sim/scenario.h"
#include "sim/world.h"
#include "va/density.h"

namespace marlin {
namespace {

const ScenarioOutput& GlobalScenario() {
  static const World world = World::Global();
  static const ScenarioOutput scenario = [] {
    ScenarioConfig config;
    config.seed = 19;
    config.duration = 12 * kMillisPerHour;
    config.transit_vessels = 100;
    config.fishing_vessels = 15;
    config.loiter_vessels = 0;
    config.rendezvous_pairs = 0;
    config.dark_vessels = 8;
    config.spoof_identity_vessels = 0;
    config.spoof_teleport_vessels = 0;
    config.report_interval_scale = 6.0;
    config.use_coastal_coverage_default = false;
    config.receiver.satellite_period_ms = Minutes(45);
    config.receiver.satellite_window_ms = Minutes(18);
    config.receiver.satellite_loss = 0.15;
    return GenerateScenario(world, config);
  }();
  return scenario;
}

DensityGrid BuildMap() {
  const ScenarioOutput& scenario = GlobalScenario();
  AisDecoder decoder;
  DensityGrid grid(BoundingBox(-65.0, -180.0, 70.0, 180.0), 1.0);
  for (const auto& ev : scenario.nmea) {
    const auto msg = decoder.Decode(ev.payload, ev.ingest_time);
    if (!msg.has_value()) continue;
    if (const auto* pr = std::get_if<PositionReport>(&*msg)) {
      if (pr->HasPosition()) grid.Add(pr->position);
    }
  }
  return grid;
}

void BM_BuildWorldMap(benchmark::State& state) {
  double positions = 0;
  uint64_t cells = 0;
  for (auto _ : state) {
    const DensityGrid grid = BuildMap();
    positions = grid.TotalWeight();
    cells = grid.NonEmptyCells();
    benchmark::DoNotOptimize(grid);
  }
  state.counters["received_positions"] = positions;
  state.counters["occupied_cells"] = static_cast<double>(cells);
}
BENCHMARK(BM_BuildWorldMap)->Unit(benchmark::kMillisecond);

void EmitArtifacts() {
  const DensityGrid grid = BuildMap();
  std::printf("received positions: %.0f across %llu occupied 1-degree cells\n",
              grid.TotalWeight(),
              static_cast<unsigned long long>(grid.NonEmptyCells()));
  std::printf("\n%s\n", grid.ToAscii(110).c_str());
  const Status ppm = grid.WritePpm("worldmap_f1.ppm");
  std::printf("PPM artefact: %s\n",
              ppm.ok() ? "worldmap_f1.ppm" : ppm.ToString().c_str());
}

}  // namespace
}  // namespace marlin

int main(int argc, char** argv) {
  marlin::bench::Banner(
      "F1: worldwide AIS position map (Figure 1)",
      "\"Worldwide AIS positions acquired by satellites (ORBCOMM)\" — "
      "regenerated from the satellite-reception simulator");
  marlin::EmitArtifacts();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
