// E1 — Ingest capacity vs. the global AIS feed (Figure 1 + §1).
//
// Paper: "a typical volume of radio and satellite-based worldwide maritime
// data represents an estimated 18 millions positions per day" ≈ 208 msg/s
// average. The experiment measures how many messages per second one MARLIN
// pipeline instance sustains at each stage depth, and reports the headroom
// factor over the global feed rate.

#include <benchmark/benchmark.h>

#include "ais/codec.h"
#include "bench_util.h"
#include "core/pipeline.h"
#include "core/sharded_pipeline.h"

namespace marlin {
namespace {

constexpr double kGlobalFeedMsgPerSec = 18e6 / 86400.0;  // ≈ 208

ScenarioConfig IngestConfig() {
  ScenarioConfig config;
  config.seed = 11;
  config.duration = Hours(1);
  config.transit_vessels = 60;
  config.fishing_vessels = 10;
  config.loiter_vessels = 4;
  config.rendezvous_pairs = 2;
  config.dark_vessels = 5;
  config.perfect_reception = true;
  return config;
}

void BM_DecodeOnly(benchmark::State& state) {
  const ScenarioOutput& scenario = bench::SharedScenario(IngestConfig());
  uint64_t messages = 0;
  for (auto _ : state) {
    AisDecoder decoder;
    for (const auto& ev : scenario.nmea) {
      benchmark::DoNotOptimize(decoder.Decode(ev.payload, ev.ingest_time));
    }
    messages += decoder.stats().messages_out;
  }
  state.counters["msgs_per_s"] = benchmark::Counter(
      static_cast<double>(messages), benchmark::Counter::kIsRate);
  state.counters["headroom_vs_global_feed"] = benchmark::Counter(
      static_cast<double>(messages) / kGlobalFeedMsgPerSec,
      benchmark::Counter::kIsRate);
}
BENCHMARK(BM_DecodeOnly)->Unit(benchmark::kMillisecond);

void BM_DecodeReconstruct(benchmark::State& state) {
  const ScenarioOutput& scenario = bench::SharedScenario(IngestConfig());
  uint64_t points = 0;
  for (auto _ : state) {
    AisDecoder decoder;
    TrajectoryReconstructor recon;
    std::vector<ReconstructedPoint> out;
    for (const auto& ev : scenario.nmea) {
      const auto msg = decoder.Decode(ev.payload, ev.ingest_time);
      if (!msg.has_value()) continue;
      if (const auto* pr = std::get_if<PositionReport>(&*msg)) {
        out.clear();
        recon.Ingest(*pr, &out, nullptr);
        points += out.size();
      }
    }
  }
  state.counters["points_per_s"] = benchmark::Counter(
      static_cast<double>(points), benchmark::Counter::kIsRate);
}
BENCHMARK(BM_DecodeReconstruct)->Unit(benchmark::kMillisecond);

void BM_FullPipeline(benchmark::State& state) {
  const ScenarioOutput& scenario = bench::SharedScenario(IngestConfig());
  const World& world = bench::SharedWorld();
  uint64_t messages = 0;
  for (auto _ : state) {
    MaritimePipeline pipeline(PipelineConfig{}, &world.zones(), nullptr,
                              nullptr, nullptr);
    pipeline.Run(scenario.nmea);
    messages += pipeline.metrics().decoder.messages_out;
  }
  state.counters["msgs_per_s"] = benchmark::Counter(
      static_cast<double>(messages), benchmark::Counter::kIsRate);
  state.counters["headroom_vs_global_feed"] = benchmark::Counter(
      static_cast<double>(messages) / kGlobalFeedMsgPerSec,
      benchmark::Counter::kIsRate);
}
BENCHMARK(BM_FullPipeline)->Unit(benchmark::kMillisecond);

// Sharded ingest via the batched API: the scaling axis threads=1..N.
void BM_ShardedPipeline(benchmark::State& state) {
  const ScenarioOutput& scenario = bench::SharedScenario(IngestConfig());
  const World& world = bench::SharedWorld();
  uint64_t messages = 0;
  for (auto _ : state) {
    ShardedPipeline::Options opts;
    opts.num_shards = static_cast<size_t>(state.range(0));
    ShardedPipeline pipeline(PipelineConfig{}, opts, &world.zones(), nullptr,
                             nullptr, nullptr);
    pipeline.IngestBatch(scenario.nmea);
    pipeline.Finish();
    messages += pipeline.metrics().decoder.messages_out;
  }
  state.counters["msgs_per_s"] = benchmark::Counter(
      static_cast<double>(messages), benchmark::Counter::kIsRate);
  state.counters["headroom_vs_global_feed"] = benchmark::Counter(
      static_cast<double>(messages) / kGlobalFeedMsgPerSec,
      benchmark::Counter::kIsRate);
}
BENCHMARK(BM_ShardedPipeline)
    ->Arg(1)
    ->Arg(2)
    ->Arg(4)
    ->Arg(8)
    ->Unit(benchmark::kMillisecond)
    ->MeasureProcessCPUTime()
    ->UseRealTime();

}  // namespace
}  // namespace marlin

int main(int argc, char** argv) {
  marlin::bench::Banner(
      "E1: ingest capacity (Figure 1, §1)",
      "\"18 millions positions per day\" worldwide ≈ 208 msg/s; a single "
      "pipeline instance must exceed this by a wide margin");
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
