// E11 — Choosing an uncertainty framework under conflict (§4).
//
// Paper: "no clear guidelines exist so far for the selection of the
// appropriate uncertainty framework and aggregation (or fusion) rule, [but]
// it is acknowledged that the choice depends on the nature, interpretation
// or type of uncertainty and information, and on the sources quality and
// independence."
//
// Task: classify a vessel (cargo/tanker/fishing) from three noisy soft
// sources whose conflict level and reliability are swept. Frameworks:
// Bayesian product, Dempster, Yager, discounted Dempster, possibility-min.
// Reported: accuracy and decisiveness per framework per regime.

#include <benchmark/benchmark.h>

#include <cstdio>

#include "bench_util.h"
#include "common/rng.h"
#include "uncertainty/bayes.h"
#include "uncertainty/dempster_shafer.h"
#include "uncertainty/possibility.h"

namespace marlin {
namespace {

constexpr int kClasses = 3;
constexpr int kTrials = 2000;

struct SourceReport {
  int claimed = 0;     // which class the source backs
  double confidence = 0.0;
};

/// Simulates one trial: the true class plus three source reports; unreliable
/// sources pick a wrong class with probability `error_rate`.
std::vector<SourceReport> SimulateSources(int true_class, double error_rate,
                                          Rng* rng) {
  std::vector<SourceReport> reports;
  for (int s = 0; s < 3; ++s) {
    SourceReport r;
    if (rng->Bernoulli(error_rate)) {
      r.claimed = (true_class + 1 + static_cast<int>(rng->NextBounded(2))) %
                  kClasses;
    } else {
      r.claimed = true_class;
    }
    r.confidence = rng->Uniform(0.7, 0.95);
    reports.push_back(r);
  }
  return reports;
}

struct FrameworkScore {
  int correct = 0;
  int undecided = 0;  // framework failed to fuse or gave a tie/vacuous answer
};

struct E11Row {
  double error_rate;
  FrameworkScore bayes, dempster, yager, discounted, possibility;
};

E11Row RunRegime(double error_rate, uint64_t seed) {
  Rng rng(seed);
  Frame frame({"cargo", "tanker", "fishing"});
  E11Row row;
  row.error_rate = error_rate;
  const double assumed_reliability = 1.0 - error_rate;

  for (int trial = 0; trial < kTrials; ++trial) {
    const int true_class = static_cast<int>(rng.NextBounded(kClasses));
    const auto reports = SimulateSources(true_class, error_rate, &rng);

    // Bayesian: product of per-source likelihoods.
    DiscreteBayes bayes(kClasses);
    bool bayes_ok = true;
    for (const auto& r : reports) {
      std::vector<double> likelihood(kClasses,
                                     (1.0 - r.confidence) / (kClasses - 1));
      likelihood[r.claimed] = r.confidence;
      bayes_ok &= bayes.Update(likelihood);
    }
    if (!bayes_ok) {
      ++row.bayes.undecided;
    } else if (bayes.Decide() == true_class) {
      ++row.bayes.correct;
    }

    // Evidence theory variants.
    std::vector<MassFunction> masses;
    for (const auto& r : reports) {
      MassFunction m(&frame);
      m.Assign(frame.Singleton(r.claimed), r.confidence);
      m.Assign(frame.Theta(), 1.0 - r.confidence);
      masses.push_back(m);
    }
    const auto dempster = CombineAll(masses, CombinationRule::kDempster);
    if (!dempster.ok()) {
      ++row.dempster.undecided;
    } else if (dempster->Decide() == true_class) {
      ++row.dempster.correct;
    }
    const auto yager = CombineAll(masses, CombinationRule::kYager);
    if (!yager.ok()) {
      ++row.yager.undecided;
    } else if (yager->Belief(frame.Theta()) > 0.9) {
      ++row.yager.undecided;  // conflict swamped the frame: no decision
    } else if (yager->Decide() == true_class) {
      ++row.yager.correct;
    }
    std::vector<MassFunction> discounted_masses;
    for (const auto& m : masses) {
      discounted_masses.push_back(m.Discount(assumed_reliability));
    }
    const auto discounted =
        CombineAll(discounted_masses, CombinationRule::kDempster);
    if (!discounted.ok()) {
      ++row.discounted.undecided;
    } else if (discounted->Decide() == true_class) {
      ++row.discounted.correct;
    }

    // Possibility theory: min combination of per-source distributions.
    PossibilityDistribution combined(kClasses);
    for (const auto& r : reports) {
      PossibilityDistribution pi(kClasses);
      for (int c = 0; c < kClasses; ++c) {
        pi.Set(c, c == r.claimed ? 1.0 : 1.0 - r.confidence);
      }
      combined = PossibilityDistribution::CombineMin(combined, pi);
    }
    if (combined.Inconsistency() > 0.99) {
      ++row.possibility.undecided;
    } else if (combined.Decide() == true_class) {
      ++row.possibility.correct;
    }
  }
  return row;
}

void PrintRow(const char* name, const FrameworkScore& s) {
  std::printf("  %-22s accuracy %.3f   undecided %.3f\n", name,
              static_cast<double>(s.correct) / kTrials,
              static_cast<double>(s.undecided) / kTrials);
}

void PrintTables() {
  for (double err : {0.05, 0.20, 0.40}) {
    std::printf("--- source error rate %.0f%% ---\n", err * 100);
    const E11Row row = RunRegime(err, 1100 + static_cast<uint64_t>(err * 100));
    PrintRow("bayes", row.bayes);
    PrintRow("dempster", row.dempster);
    PrintRow("yager", row.yager);
    PrintRow("dempster+discounting", row.discounted);
    PrintRow("possibility-min", row.possibility);
    std::printf("\n");
  }
  std::printf(
      "expected shape (paper §4): with reliable sources every rule agrees;\n"
      "as conflict grows, undiscounted Dempster degrades while discounting\n"
      "(source-quality knowledge) keeps accuracy highest — the choice of\n"
      "framework depends on source quality, as the paper argues.\n");
}

void BM_UncertaintySweep(benchmark::State& state) {
  const double err = static_cast<double>(state.range(0)) / 100.0;
  E11Row row{};
  for (auto _ : state) {
    row = RunRegime(err, 1142);
  }
  state.counters["dempster_acc"] =
      static_cast<double>(row.dempster.correct) / kTrials;
  state.counters["discounted_acc"] =
      static_cast<double>(row.discounted.correct) / kTrials;
}
BENCHMARK(BM_UncertaintySweep)->Arg(5)->Arg(20)->Arg(40)
    ->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace marlin

int main(int argc, char** argv) {
  marlin::bench::Banner(
      "E11: uncertainty framework comparison (§4)",
      "\"no clear guidelines ... the choice depends on the nature ... of "
      "uncertainty and information, and on the sources quality\"");
  marlin::PrintTables();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
