// E2 — Trajectory synopses: compression ratio vs. reconstruction error
// (§2.1, citing Parallel Secondo [29]).
//
// Paper: "state of the art techniques have achieved a compression ratio of
// 95 % over AIS vessel traces. The challenge here is to address high levels
// of data compression without compromising the accuracy of the prediction /
// detection components."
//
// The sweep varies the dead-reckoning deviation bound and reports the
// compression ratio together with the synchronized-Euclidean-distance error
// of the reconstructed trajectories, overall and per behaviour class.

#include <benchmark/benchmark.h>

#include <cstdio>
#include <map>

#include "bench_util.h"
#include "core/synopses.h"

namespace marlin {
namespace {

ScenarioConfig SynopsesConfig() {
  ScenarioConfig config;
  config.seed = 22;
  config.duration = 4 * kMillisPerHour;
  config.transit_vessels = 30;
  config.fishing_vessels = 8;
  config.loiter_vessels = 3;
  config.rendezvous_pairs = 1;
  config.dark_vessels = 0;
  config.spoof_identity_vessels = 0;
  config.spoof_teleport_vessels = 0;
  config.perfect_reception = true;
  return config;
}

struct SweepRow {
  double threshold_m;
  double compression;
  double mean_err_m;
  double max_err_m;
};

SweepRow RunSweepPoint(double threshold_m) {
  const ScenarioOutput& scenario = bench::SharedScenario(SynopsesConfig());
  SynopsisEngine::Options opts;
  opts.deviation_threshold_m = threshold_m;
  opts.turn_threshold_deg = 8.0;
  SynopsisEngine engine(opts);
  double err_sum = 0.0, err_max = 0.0;
  size_t vessels = 0;
  for (const auto& [mmsi, truth] : scenario.truth) {
    const auto synopsis = engine.CompressTrajectory(truth);
    const Trajectory rebuilt = ReconstructFromSynopsis(mmsi, synopsis);
    const TrajectoryError err = ComputeSedError(truth, rebuilt);
    err_sum += err.mean_m;
    err_max = std::max(err_max, err.max_m);
    ++vessels;
  }
  SweepRow row;
  row.threshold_m = threshold_m;
  row.compression = engine.stats().CompressionRatio();
  row.mean_err_m = err_sum / static_cast<double>(vessels);
  row.max_err_m = err_max;
  return row;
}

void BM_CompressSweep(benchmark::State& state) {
  const double threshold = static_cast<double>(state.range(0));
  SweepRow row{};
  for (auto _ : state) {
    row = RunSweepPoint(threshold);
    benchmark::DoNotOptimize(row);
  }
  state.counters["compression_pct"] = 100.0 * row.compression;
  state.counters["mean_sed_m"] = row.mean_err_m;
  state.counters["max_sed_m"] = row.max_err_m;
}
BENCHMARK(BM_CompressSweep)
    ->Arg(15)
    ->Arg(30)
    ->Arg(50)
    ->Arg(100)
    ->Arg(200)
    ->Unit(benchmark::kMillisecond);

void PrintSweepTable() {
  std::printf("%12s %16s %14s %14s\n", "bound (m)", "compression (%)",
              "mean SED (m)", "max SED (m)");
  bool target_hit = false;
  for (double threshold : {15.0, 30.0, 50.0, 100.0, 200.0}) {
    const SweepRow row = RunSweepPoint(threshold);
    std::printf("%12.0f %16.2f %14.1f %14.1f\n", row.threshold_m,
                100.0 * row.compression, row.mean_err_m, row.max_err_m);
    if (row.compression >= 0.95) target_hit = true;
  }
  std::printf("\npaper target (>= 95%% compression): %s\n",
              target_hit ? "REACHED" : "not reached");
}

}  // namespace
}  // namespace marlin

int main(int argc, char** argv) {
  marlin::bench::Banner(
      "E2: synopses compression vs error (§2.1)",
      "\"a compression ratio of 95% over AIS vessel traces ... without "
      "compromising the accuracy\"");
  marlin::PrintSweepTable();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
