// E12 — In-situ processing vs. centralize-then-process (§2.1).
//
// Paper: "in-situ processing aims to scale, by shortening the time needed
// for detecting patterns of interest within a single- or cross-streaming
// process ... such approaches have to become communication efficient."
//
// Two architectures over the same fleet:
//  * centralize: every raw position report is shipped ashore, patterns are
//    detected centrally;
//  * in-situ: each vessel compresses its own stream to critical points at
//    the edge, ships only the synopsis, and the shore detector consumes it.
// Reported: bytes moved, messages moved, and whether the pattern set
// (turn/stop events of interest) survives compression.

#include <benchmark/benchmark.h>

#include <cstdio>

#include "bench_util.h"
#include "core/synopses.h"

namespace marlin {
namespace {

ScenarioConfig InsituConfig() {
  ScenarioConfig config;
  config.seed = 121;
  config.duration = 4 * kMillisPerHour;
  config.transit_vessels = 40;
  config.fishing_vessels = 10;
  config.loiter_vessels = 4;
  config.rendezvous_pairs = 0;
  config.dark_vessels = 0;
  config.spoof_identity_vessels = 0;
  config.spoof_teleport_vessels = 0;
  config.perfect_reception = true;
  return config;
}

constexpr size_t kAisMessageBytes = 48;       // one armored AIVDM sentence
constexpr size_t kCriticalPointBytes = 32;    // compact synopsis record

struct E12Result {
  uint64_t raw_messages = 0;
  uint64_t raw_bytes = 0;
  uint64_t synopsis_messages = 0;
  uint64_t synopsis_bytes = 0;
  int raw_stop_events = 0;
  int synopsis_stop_events = 0;
};

E12Result Run() {
  const ScenarioOutput& scenario = bench::SharedScenario(InsituConfig());
  E12Result result;

  // Centralized: everything crosses the link.
  for (const auto& [mmsi, truth] : scenario.truth) {
    result.raw_messages += truth.points.size();
  }
  result.raw_bytes = result.raw_messages * kAisMessageBytes;

  // In-situ: per-vessel synopsis engines at the edge.
  for (const auto& [mmsi, truth] : scenario.truth) {
    SynopsisEngine edge;  // one engine per vessel = per-edge-device
    const auto synopsis = edge.CompressTrajectory(truth);
    result.synopsis_messages += synopsis.size();
    for (const auto& cp : synopsis) {
      if (cp.type == CriticalPointType::kStop) ++result.synopsis_stop_events;
    }
  }
  result.synopsis_bytes = result.synopsis_messages * kCriticalPointBytes;

  // Pattern ground truth from the raw streams: stop events (speed crossing)
  // detected centrally.
  for (const auto& [mmsi, truth] : scenario.truth) {
    bool stopped = true;  // vessels start moored
    for (const auto& p : truth.points) {
      const bool now = p.sog_mps < 0.6;
      if (now && !stopped) ++result.raw_stop_events;
      stopped = now;
    }
  }
  return result;
}

void PrintResult() {
  const E12Result r = Run();
  std::printf("%-34s %14s %14s\n", "", "centralize", "in-situ");
  std::printf("%-34s %14llu %14llu\n", "messages on the ship-shore link",
              static_cast<unsigned long long>(r.raw_messages),
              static_cast<unsigned long long>(r.synopsis_messages));
  std::printf("%-34s %11.2f MB %11.2f MB\n", "bytes on the link",
              r.raw_bytes / 1e6, r.synopsis_bytes / 1e6);
  std::printf("%-34s %13.1fx\n", "communication reduction",
              static_cast<double>(r.raw_bytes) /
                  std::max<uint64_t>(1, r.synopsis_bytes));
  std::printf("%-34s %14d %14d\n", "stop patterns recoverable",
              r.raw_stop_events, r.synopsis_stop_events);
}

void BM_EdgeCompression(benchmark::State& state) {
  E12Result r{};
  for (auto _ : state) {
    r = Run();
    benchmark::DoNotOptimize(r);
  }
  state.counters["reduction_x"] =
      static_cast<double>(r.raw_bytes) /
      std::max<uint64_t>(1, r.synopsis_bytes);
}
BENCHMARK(BM_EdgeCompression)->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace marlin

int main(int argc, char** argv) {
  marlin::bench::Banner(
      "E12: in-situ (edge) processing vs centralization (§2.1)",
      "in-situ processing must be \"communication efficient\" while "
      "\"shortening the time needed for detecting patterns\"");
  marlin::PrintResult();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
