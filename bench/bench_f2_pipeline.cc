// F2 — The integrated maritime information infrastructure (Figure 2).
//
// The paper's Figure 2 sketches the datAcron architecture: "integration of
// in-situ streaming data, trajectories detection and forecasting,
// recognition and identification of complex events and the development of
// visual analytics interfaces". This bench runs the whole architecture as
// one artefact and prints the per-stage instrumentation — the running
// equivalent of the figure — plus end-to-end timing.

#include <benchmark/benchmark.h>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <atomic>
#include <chrono>
#include <cstdio>
#include <map>
#include <thread>

#include <span>

#include "ais/codec.h"
#include "ais/messages.h"
#include "ais/nmea.h"
#include "ais/sixbit.h"
#include "bench_util.h"
#include "common/alloc_probe.h"
#include "context/weather.h"
#include "core/pipeline.h"
#include "core/query_engine.h"
#include "core/sharded_pipeline.h"
#include "net/tcp_ingest_server.h"
#include "stream/channel.h"
#include "stream/frame.h"
#include "stream/rate.h"
#include "va/situation.h"

// Heap probe for the allocations/line axis of the decode microbench: this
// binary's operator new counts into a thread-local the benchmark samples.
MARLIN_INSTALL_ALLOC_PROBE()

namespace marlin {
namespace {

ScenarioConfig F2Config() {
  ScenarioConfig config;
  config.seed = 2;
  config.duration = 3 * kMillisPerHour;
  config.transit_vessels = 30;
  config.fishing_vessels = 8;
  config.loiter_vessels = 3;
  config.rendezvous_pairs = 2;
  config.dark_vessels = 4;
  config.spoof_identity_vessels = 1;
  config.spoof_teleport_vessels = 1;
  return config;  // realistic reception: coastal + satellite
}

void PrintArchitectureRun() {
  const World& world = bench::SharedWorld();
  const ScenarioOutput& scenario = bench::SharedScenario(F2Config());
  WeatherProvider weather(7);
  MaritimePipeline pipeline(PipelineConfig{}, &world.zones(), &weather,
                            nullptr, nullptr);
  const auto events = pipeline.Run(scenario.nmea);
  const PipelineMetrics& m = pipeline.metrics();

  std::printf("stage graph (Figure 2), per-stage counters:\n\n");
  std::printf("  [AIS/NMEA sources] -> %llu lines (%llu bad)\n",
              static_cast<unsigned long long>(m.decoder.lines_in),
              static_cast<unsigned long long>(m.decoder.bad_sentences));
  std::printf("      |\n  [decoder] -> %llu messages (%llu pending frags)\n",
              static_cast<unsigned long long>(m.decoder.messages_out),
              static_cast<unsigned long long>(m.decoder.pending_fragments));
  std::printf(
      "      |\n  [trajectory reconstruction] -> %llu clean points\n"
      "      |     dupes %llu | stale %llu | outliers %llu | late %llu\n",
      static_cast<unsigned long long>(m.reconstruction.points_out),
      static_cast<unsigned long long>(m.reconstruction.duplicates),
      static_cast<unsigned long long>(m.reconstruction.stale),
      static_cast<unsigned long long>(m.reconstruction.outliers),
      static_cast<unsigned long long>(m.reconstruction.late_dropped));
  std::printf(
      "      |\n  [synopses] -> %llu critical points (compression %.1f%%)\n",
      static_cast<unsigned long long>(m.synopses.points_out),
      100.0 * m.synopses.CompressionRatio());
  std::printf(
      "      |\n  [semantic enrichment] -> %llu points joined "
      "(zones hit: %llu, queue drops: %llu)\n",
      static_cast<unsigned long long>(m.enrichment.points),
      static_cast<unsigned long long>(m.enrichment.zone_hits),
      static_cast<unsigned long long>(m.enrichment_stage.queue_dropped));
  std::printf(
      "      |\n  [complex event recognition] -> %llu events, %llu alerts\n",
      static_cast<unsigned long long>(m.events.events_out),
      static_cast<unsigned long long>(m.alerts));
  std::printf(
      "      |\n  [live picture / VA] -> %zu vessels, mean ingest rate "
      "%.1f msg/s (event time)\n",
      pipeline.store().VesselCount(), m.ingest_rate.EventsPerSecond());
  std::printf(
      "\n  end-to-end latency (event->processed): mean %.1f s, p99 %.1f s\n",
      m.end_to_end_latency.Mean() / 1000.0,
      static_cast<double>(m.end_to_end_latency.Quantile(0.99)) / 1000.0);
  std::printf("  (satellite deliveries dominate the tail — §1's latency "
              "challenge)\n");
}

// The byte-per-bit decode loop: PR 4's zero-copy parse + fragment assembly
// feeding the frozen byte-vector bit layer (`UnarmorPayloadInto` over a
// vector<uint8_t> of 0/1 + byte `DecodeMessageBits`) — the reference arm of
// BM_DecodeMicro's packed-vs-byte axis. Mirrors AisDecoder::Assemble
// including the receiver-time stamping so the two arms differ only in the
// bit representation.
class ByteBitDecoder {
 public:
  std::optional<AisMessage> Decode(std::string_view line,
                                   Timestamp received_at) {
    const ParsedLine parsed = AisDecoder::Parse(line, received_at);
    if (!parsed.ok) return std::nullopt;
    const auto assembled =
        assembler_.Add(parsed.sentence, parsed.received_at);
    if (!assembled.ok() || !assembled->has_value()) return std::nullopt;
    if (!UnarmorPayloadInto((*assembled)->payload, (*assembled)->fill_bits,
                            &bits_scratch_)
             .ok()) {
      return std::nullopt;
    }
    Result<AisMessage> msg = DecodeMessageBits(bits_scratch_);
    if (!msg.ok()) return std::nullopt;
    AisMessage out = std::move(*msg);
    const Timestamp stamp = parsed.received_at;
    std::visit(
        [stamp](auto& m) {
          using T = std::decay_t<decltype(m)>;
          if constexpr (std::is_same_v<T, ExtendedClassBReport>) {
            m.position_report.received_at = stamp;
          } else {
            m.received_at = stamp;
          }
        },
        out);
    return out;
  }

 private:
  AivdmAssembler assembler_;
  std::vector<uint8_t> bits_scratch_;
};

// The decode inner loop in isolation: the per-line cost every shard worker
// pays before any stateful stage runs. The packed:1 arm is the production
// path (zero-copy parse + packed-word de-armor + shift/mask field
// extraction over pooled `PackedBits` scratch); the packed:0 arm runs the
// frozen byte-per-bit bit layer over the same parse/assembly front half, so
// the ratio isolates PR 5's bit-packing multiplier. Counters surface both
// axes the refactor targets: lines/s and steady-state heap allocations per
// line (multi-fragment groups are the only remaining allocators —
// single-fragment traffic is allocation-free, asserted by
// tests/decode_equivalence_test.cc). CI runs the packed arm and fails on a
// >2x lines_per_s regression vs the committed BENCH_f2_pipeline.json
// baseline (tools/check_bench_regression.py).
void BM_DecodeMicro(benchmark::State& state) {
  const ScenarioOutput& scenario = bench::SharedScenario(F2Config());
  const bool packed = state.range(0) != 0;
  AisDecoder packed_decoder;
  ByteBitDecoder byte_decoder;
  // Warmup: size the decoder's pooled scratch so the counter reads the
  // steady state rather than first-touch growth.
  for (const auto& ev : scenario.nmea) {
    if (packed) {
      benchmark::DoNotOptimize(
          packed_decoder.Decode(ev.payload, ev.ingest_time));
    } else {
      benchmark::DoNotOptimize(byte_decoder.Decode(ev.payload, ev.ingest_time));
    }
  }
  uint64_t lines = 0;
  uint64_t messages = 0;
  uint64_t allocations = 0;
  for (auto _ : state) {
    const uint64_t before = AllocProbe::ThreadCount();
    for (const auto& ev : scenario.nmea) {
      auto msg = packed ? packed_decoder.Decode(ev.payload, ev.ingest_time)
                        : byte_decoder.Decode(ev.payload, ev.ingest_time);
      if (msg.has_value()) ++messages;
      benchmark::DoNotOptimize(msg);
    }
    allocations += AllocProbe::ThreadCount() - before;
    lines += scenario.nmea.size();
  }
  // Per-iteration message count (one pass over the corpus), not the
  // iteration-scaled running total.
  state.counters["messages"] = benchmark::Counter(
      static_cast<double>(messages), benchmark::Counter::kAvgIterations);
  state.counters["lines_per_s"] = benchmark::Counter(
      static_cast<double>(lines), benchmark::Counter::kIsRate);
  state.counters["allocs_per_line"] =
      static_cast<double>(allocations) / static_cast<double>(lines);
}
BENCHMARK(BM_DecodeMicro)
    ->ArgName("packed")
    ->Arg(1)
    ->Arg(0)
    ->Unit(benchmark::kMillisecond);

void BM_FullArchitecture(benchmark::State& state) {
  const World& world = bench::SharedWorld();
  const ScenarioOutput& scenario = bench::SharedScenario(F2Config());
  WeatherProvider weather(7);
  uint64_t events_out = 0;
  uint64_t lines = 0;
  for (auto _ : state) {
    MaritimePipeline pipeline(PipelineConfig{}, &world.zones(), &weather,
                              nullptr, nullptr);
    const auto events = pipeline.Run(scenario.nmea);
    events_out = events.size();
    lines += scenario.nmea.size();
    benchmark::DoNotOptimize(events);
  }
  state.counters["events"] = static_cast<double>(events_out);
  state.counters["nmea_lines"] = static_cast<double>(scenario.nmea.size());
  state.counters["lines_per_s"] = benchmark::Counter(
      static_cast<double>(lines), benchmark::Counter::kIsRate);
}
BENCHMARK(BM_FullArchitecture)->Unit(benchmark::kMillisecond);

// The isolated hand-off cost of one inter-stage hop: push `batch` items
// through a StageChannel and pop them back, single-threaded. Running both
// sides on one thread measures the *uncontended* per-item fabric cost —
// exactly the price every window hand-off pays before any cross-core
// effects — and is reproducible on single-core CI hosts where a two-thread
// arrangement would measure the scheduler instead. The spsc:1 arm is the
// lock-free ring (atomic store per publish, zero notifies when nobody
// waits); spsc:0 is the mutex+condvar reference arm (two lock acquisitions
// per cycle minimum). CI gates the spsc:1 arm's items_per_s against the
// committed baseline (tools/check_bench_regression.py).
void BM_QueueHop(benchmark::State& state) {
  const bool spsc = state.range(0) != 0;
  const size_t batch = static_cast<size_t>(state.range(1));
  StageChannel<uint64_t> channel(
      spsc ? QueueFabric::kSpscRing : QueueFabric::kMutex, /*capacity=*/256);
  std::vector<uint64_t> out;
  out.reserve(batch);
  uint64_t items = 0;
  for (auto _ : state) {
    for (size_t i = 0; i < batch; ++i) channel.Push(i);
    out.clear();
    size_t got = 0;
    while (got < batch) got += channel.PopBatch(&out, batch - got);
    benchmark::DoNotOptimize(out.data());
    items += batch;
  }
  state.counters["items_per_s"] = benchmark::Counter(
      static_cast<double>(items), benchmark::Counter::kIsRate);
  state.counters["notifies"] =
      static_cast<double>(channel.stats().notifies);
}
BENCHMARK(BM_QueueHop)
    ->ArgNames({"spsc", "batch"})
    ->Args({1, 1})
    ->Args({0, 1})
    ->Args({1, 16})
    ->Args({0, 16})
    ->Args({1, 64})
    ->Args({0, 64})
    ->Unit(benchmark::kMicrosecond);

// The tentpole scaling axis: the same architecture across 1..N MMSI shards,
// on either hand-off fabric (fabric:1 = lock-free SPSC rings, fabric:0 =
// the mutex reference arm — identical output, different hop cost).
// Near-linear growth of lines_per_s demonstrates that every stateful stage
// partitions cleanly by vessel (AISdb-style partitioning, arXiv:2407.08082).
void BM_ShardedArchitecture(benchmark::State& state) {
  const World& world = bench::SharedWorld();
  const ScenarioOutput& scenario = bench::SharedScenario(F2Config());
  WeatherProvider weather(7);
  uint64_t events_out = 0;
  uint64_t lines = 0;
  for (auto _ : state) {
    PipelineConfig config;
    config.lock_free_fabric = state.range(1) != 0;
    ShardedPipeline::Options opts;
    opts.num_shards = static_cast<size_t>(state.range(0));
    ShardedPipeline pipeline(config, opts, &world.zones(), &weather,
                             nullptr, nullptr);
    const auto events = pipeline.Run(scenario.nmea);
    events_out = events.size();
    lines += scenario.nmea.size();
    benchmark::DoNotOptimize(events);
  }
  state.counters["events"] = static_cast<double>(events_out);
  state.counters["lines_per_s"] = benchmark::Counter(
      static_cast<double>(lines), benchmark::Counter::kIsRate);
}
BENCHMARK(BM_ShardedArchitecture)
    ->ArgNames({"shards", "fabric"})
    ->Args({1, 1})
    ->Args({2, 1})
    ->Args({4, 1})
    ->Args({8, 1})
    ->Args({2, 0})
    ->Args({4, 0})
    ->Unit(benchmark::kMillisecond)
    ->MeasureProcessCPUTime()
    ->UseRealTime();

// The anomaly & integrity stage axis: arg0 = enable_anomaly. The off arm
// is the pre-stage baseline; the on arm pays the integrity scorer on every
// raw report plus the behaviour-change detector on every clean point, so
// the delta is the whole per-line price of the stage. detectors_per_s is
// the combined detector invocation rate (reports integrity-checked +
// points ingested by the behaviour detector) — the number CI gates, a
// canary for an allocation or a quadratic scan sneaking into the per-point
// path of either detector. Runs the sequential pipeline so the measurement
// is stage cost, not shard scheduling.
void BM_AnomalyStage(benchmark::State& state) {
  const World& world = bench::SharedWorld();
  const ScenarioOutput& scenario = bench::SharedScenario(F2Config());
  const bool anomaly = state.range(0) != 0;
  uint64_t lines = 0;
  uint64_t detector_calls = 0;
  AnomalyStageStats stage;
  for (auto _ : state) {
    PipelineConfig config;
    config.enable_anomaly = anomaly;
    MaritimePipeline pipeline(config, &world.zones(), nullptr, nullptr,
                              nullptr);
    const auto events = pipeline.Run(scenario.nmea);
    lines += scenario.nmea.size();
    stage = pipeline.metrics().anomaly;
    detector_calls += stage.integrity.reports_checked + stage.points_in;
    benchmark::DoNotOptimize(events);
  }
  state.counters["lines_per_s"] = benchmark::Counter(
      static_cast<double>(lines), benchmark::Counter::kIsRate);
  state.counters["detectors_per_s"] = benchmark::Counter(
      static_cast<double>(detector_calls), benchmark::Counter::kIsRate);
  state.counters["stage_events"] = static_cast<double>(stage.events_out);
  state.counters["quarantined"] =
      static_cast<double>(stage.points_quarantined);
}
BENCHMARK(BM_AnomalyStage)
    ->ArgName("anomaly")
    ->Arg(1)
    ->Arg(0)
    ->Unit(benchmark::kMillisecond);

// Weather source with a deliberate per-lookup stall, modelling a slow
// *remote* context service (the case §2.2's integration must survive).
// The stall blocks rather than spins: a slow upstream is I/O latency, not
// CPU demand, and on small hosts a spinning stall would steal the very
// cores the ingest path is being measured on.
class SlowWeather : public WeatherProvider {
 public:
  SlowWeather(uint64_t seed, std::chrono::microseconds stall)
      : WeatherProvider(seed), stall_(stall) {}

  WeatherSample At(const GeoPoint& p, Timestamp t) const override {
    std::this_thread::sleep_for(stall_);
    return WeatherProvider::At(p, t);
  }

 private:
  std::chrono::microseconds stall_;
};

// The enrichment-on/off axis: arg0 = shards, arg1 = mode.
//   mode 0: enrichment stage disabled entirely (the ingest-only baseline)
//   mode 1: async enrichment against a deliberately slow weather provider
//           (1 ms/lookup), enriched points delivered to a counting sink.
// The side-stage's drop-oldest queue means mode 1's ingest throughput must
// stay within ~10% of mode 0 — slow context sources cost drops (surfaced
// in the counters), never ingest stalls. The residual gap is the Finish
// delivery barrier (≤ queue_depth stalled lookups per shard) plus, on
// small hosts, sleep wake-up scheduling.
void BM_EnrichmentSideStage(benchmark::State& state) {
  const World& world = bench::SharedWorld();
  const ScenarioOutput& scenario = bench::SharedScenario(F2Config());
  const bool enrich = state.range(1) != 0;
  SlowWeather weather(7, std::chrono::microseconds(1000));
  uint64_t lines = 0;
  uint64_t enriched_out = 0;
  uint64_t drops = 0;
  for (auto _ : state) {
    PipelineConfig config;
    config.enable_enrichment = enrich;
    config.enrichment_queue_depth = 8;  // keeps the Finish barrier short
    ShardedPipeline::Options opts;
    opts.num_shards = static_cast<size_t>(state.range(0));
    ShardedPipeline pipeline(config, opts, &world.zones(),
                             enrich ? &weather : nullptr, nullptr, nullptr);
    std::atomic<uint64_t> delivered{0};
    if (enrich) {
      pipeline.SetEnrichedSink(
          [&delivered](const EnrichedPoint&) { ++delivered; });
    }
    const auto events = pipeline.Run(scenario.nmea);
    lines += scenario.nmea.size();
    enriched_out = delivered.load();
    drops = pipeline.metrics().enrichment_stage.queue_dropped;
    benchmark::DoNotOptimize(events);
  }
  state.counters["lines_per_s"] = benchmark::Counter(
      static_cast<double>(lines), benchmark::Counter::kIsRate);
  state.counters["enriched"] = static_cast<double>(enriched_out);
  state.counters["enrich_drops"] = static_cast<double>(drops);
}
BENCHMARK(BM_EnrichmentSideStage)
    ->Args({2, 0})
    ->Args({2, 1})
    ->Args({4, 0})
    ->Args({4, 1})
    ->Unit(benchmark::kMillisecond)
    ->MeasureProcessCPUTime()
    ->UseRealTime();

// The pair-stage axis: arg0 = pair_threads (grid-cell workers for the
// rendezvous/collision rules), arg1 = traffic density multiplier. Pairwise
// proximity analytics scale quadratically with density — exactly the cost
// the grid partitioner spreads — so the interesting read is how the
// pair_threads speedup grows with density. Counters surface the grid's
// occupancy/skew so a flat speedup is diagnosable (one hot cell ⇒ skew→1).
ScenarioConfig F2DensityConfig(int density) {
  ScenarioConfig config = F2Config();
  config.seed = 20 + density;
  config.duration = 90 * kMillisPerMinute;
  config.transit_vessels *= density;
  config.fishing_vessels *= density;
  config.loiter_vessels *= density;
  config.rendezvous_pairs *= density;
  config.perfect_reception = true;  // isolate compute from reception loss
  return config;
}

void BM_PairStageGrid(benchmark::State& state) {
  const World& world = bench::SharedWorld();
  // Per-density scenario cache (SharedScenario caches only one config).
  static std::map<int, ScenarioOutput> scenarios;
  const int density = static_cast<int>(state.range(1));
  auto [it, inserted] = scenarios.try_emplace(density);
  if (inserted) it->second = GenerateScenario(world, F2DensityConfig(density));
  const ScenarioOutput& scenario = it->second;

  uint64_t events_out = 0;
  uint64_t lines = 0;
  uint64_t parallel_windows = 0;
  double max_cell_share = 0.0;
  for (auto _ : state) {
    PipelineConfig config;
    config.pair_threads = static_cast<size_t>(state.range(0));
    ShardedPipeline::Options opts;
    opts.num_shards = 2;
    ShardedPipeline pipeline(config, opts, &world.zones(), nullptr, nullptr,
                             nullptr);
    const auto events = pipeline.Run(scenario.nmea);
    events_out = events.size();
    lines += scenario.nmea.size();
    parallel_windows = pipeline.metrics().pair_stage.parallel_windows;
    max_cell_share = pipeline.metrics().pair_stage.max_cell_share;
    benchmark::DoNotOptimize(events);
  }
  state.counters["events"] = static_cast<double>(events_out);
  state.counters["lines_per_s"] = benchmark::Counter(
      static_cast<double>(lines), benchmark::Counter::kIsRate);
  state.counters["par_windows"] = static_cast<double>(parallel_windows);
  state.counters["cell_share"] = max_cell_share;
}
BENCHMARK(BM_PairStageGrid)
    ->Args({1, 1})
    ->Args({2, 1})
    ->Args({4, 1})
    ->Args({1, 2})
    ->Args({2, 2})
    ->Args({4, 2})
    ->Args({1, 3})
    ->Args({4, 3})
    ->Unit(benchmark::kMillisecond)
    ->MeasureProcessCPUTime()
    ->UseRealTime();

// The historical serving tier under reader load: arg0 = concurrent reader
// threads, arg1 = live ingest on/off. Readers cycle a four-spec battery
// (full scan, time range, region, vessel set) against the per-shard epoch
// snapshots via the QueryEngine fan-out; the live:1 arm holds back the
// final quarter of the corpus and trickles it in chunk-by-chunk while the
// readers run, so the measured latencies include writer/reader contention
// on the snapshot handoff — the "N concurrent readers against live ingest"
// property the serving tier promises. Latencies feed per-reader
// LatencyReservoirs (merged after each round; samples are stored in
// microseconds, the reservoir is unit-agnostic). CI gates the readers:1 /
// live:0 arm's queries_per_s against the committed baseline
// (tools/check_bench_regression.py); the concurrent arms are there to show
// scaling and tail behaviour, not to gate on a 1-CPU recording host.
void BM_QueryServing(benchmark::State& state) {
  const World& world = bench::SharedWorld();
  const ScenarioOutput& scenario = bench::SharedScenario(F2Config());
  const size_t readers = static_cast<size_t>(state.range(0));
  const bool live = state.range(1) != 0;
  constexpr int kQueriesPerReader = 4;

  PipelineConfig config;
  config.archive.enabled = true;  // volatile archives: serving cost, not disk
  ShardedPipeline::Options opts;
  opts.num_shards = 2;
  ShardedPipeline pipeline(config, opts, &world.zones(), nullptr, nullptr,
                           nullptr);
  const std::span<const Event<std::string>> all(scenario.nmea);
  size_t ingested = live ? all.size() * 3 / 4 : all.size();
  pipeline.IngestBatch(all.subspan(0, ingested));
  if (!live) pipeline.Finish();

  QueryEngine::Options qopts;
  qopts.num_workers = 2;
  QueryEngine engine(pipeline.archive_view(), qopts);

  // Derive the battery's filters from what the archive actually holds so
  // every spec matches real data (an empty-result query would measure the
  // index pruning alone).
  const QueryResult probe = engine.Execute(QuerySpec{});
  Timestamp t_min = kMaxTimestamp;
  Timestamp t_max = kInvalidTimestamp;
  BoundingBox extent;
  std::vector<Mmsi> vessels;
  for (const QueryRow& row : probe.rows) {
    t_min = std::min(t_min, row.t);
    t_max = std::max(t_max, row.t);
    extent.Extend(row.position);
    if (vessels.empty() || vessels.back() != row.mmsi) {
      vessels.push_back(row.mmsi);
    }
  }
  std::sort(vessels.begin(), vessels.end());
  vessels.erase(std::unique(vessels.begin(), vessels.end()), vessels.end());
  std::vector<QuerySpec> specs(4);
  const Timestamp span = t_max - t_min;
  specs[1].t0 = t_min + span / 4;
  specs[1].t1 = t_min + 3 * span / 4;
  const double lat_pad = (extent.max_lat - extent.min_lat) * 0.2;
  const double lon_pad = (extent.max_lon - extent.min_lon) * 0.2;
  specs[2].region = BoundingBox{extent.min_lat + lat_pad,
                                extent.min_lon + lon_pad,
                                extent.max_lat - lat_pad,
                                extent.max_lon - lon_pad};
  for (size_t i = 0; i < vessels.size(); i += 3) {
    specs[3].vessels.push_back(vessels[i]);
  }

  LatencyReservoir latency;
  uint64_t queries = 0;
  uint64_t rows_last_round = 0;
  for (auto _ : state) {
    std::vector<LatencyReservoir> per_reader(readers);
    std::atomic<uint64_t> row_count{0};
    std::vector<std::thread> pool;
    pool.reserve(readers);
    for (size_t r = 0; r < readers; ++r) {
      pool.emplace_back([&engine, &specs, &per_reader, &row_count, r] {
        for (int q = 0; q < kQueriesPerReader; ++q) {
          const auto start = std::chrono::steady_clock::now();
          const QueryResult res =
              engine.Execute(specs[(r + static_cast<size_t>(q)) %
                                   specs.size()]);
          const auto elapsed =
              std::chrono::duration_cast<std::chrono::microseconds>(
                  std::chrono::steady_clock::now() - start);
          per_reader[r].Observe(static_cast<DurationMs>(elapsed.count()));
          row_count.fetch_add(res.rows.size(), std::memory_order_relaxed);
        }
      });
    }
    if (live && ingested < all.size()) {
      // One chunk per round keeps epochs publishing for as long as the
      // corpus lasts; once drained the readers keep running against the
      // finished archive.
      const size_t chunk = std::min<size_t>(2048, all.size() - ingested);
      pipeline.IngestBatch(all.subspan(ingested, chunk));
      ingested += chunk;
      if (ingested == all.size()) pipeline.Finish();
    }
    for (auto& t : pool) t.join();
    for (const LatencyReservoir& r : per_reader) latency.Merge(r);
    queries += readers * kQueriesPerReader;
    rows_last_round = row_count.load(std::memory_order_relaxed);
  }
  state.counters["queries_per_s"] = benchmark::Counter(
      static_cast<double>(queries), benchmark::Counter::kIsRate);
  state.counters["p99_us"] =
      static_cast<double>(latency.Quantile(0.99));
  state.counters["mean_us"] = latency.Mean();
  state.counters["rows_per_query"] =
      static_cast<double>(rows_last_round) /
      static_cast<double>(readers * kQueriesPerReader);
}
BENCHMARK(BM_QueryServing)
    ->ArgNames({"readers", "live"})
    ->Args({1, 0})
    ->Args({2, 0})
    ->Args({2, 1})
    ->Args({4, 1})
    ->Unit(benchmark::kMillisecond)
    ->MeasureProcessCPUTime()
    ->UseRealTime();

// Network front door: the scenario corpus replayed over loopback TCP
// through the epoll ingest server into the sequential pipeline. The wire
// image is pre-encoded outside timing, so the measured loop is transport +
// reassembly + ingest. The frame axis compares the two wire formats:
// frame:0 ships re-armored NMEA lines in `kLine` frames (the receiver
// decodes from scratch); frame:1 ships sender-side de-armored payloads in
// `kPacked` frames (the receiver skips NMEA parsing and six-bit
// de-armoring entirely). CI gates frame:0's lines_per_s.
void BM_NetIngest(benchmark::State& state) {
  const World& world = bench::SharedWorld();
  const ScenarioOutput& scenario = bench::SharedScenario(F2Config());
  const bool packed_wire = state.range(0) != 0;

  std::string wire;
  size_t records = 0;
  if (!packed_wire) {
    for (const Event<std::string>& ev : scenario.nmea) {
      AppendLineFrame(ev, &wire);
    }
    records = scenario.nmea.size();
  } else {
    // Sender-side assembly: parse + reassemble + de-armor once, offline.
    AivdmAssembler assembler;
    for (const Event<std::string>& ev : scenario.nmea) {
      const ParsedLine parsed = AisDecoder::Parse(ev.payload, ev.ingest_time);
      if (!parsed.ok) continue;
      const auto assembled =
          assembler.Add(parsed.sentence, parsed.received_at);
      if (!assembled.ok() || !assembled->has_value()) continue;
      PackedRecord record;
      record.received_at = parsed.received_at;
      if (!UnarmorPayloadInto((*assembled)->payload, (*assembled)->fill_bits,
                              &record.bits)
               .ok()) {
        continue;
      }
      const Event<PackedRecord> pe(ev.event_time, ev.ingest_time,
                                   ev.source_id, std::move(record));
      AppendPackedFrame(pe, &wire);
      ++records;
    }
  }

  uint64_t lines = 0;
  uint64_t events = 0;
  for (auto _ : state) {
    TcpIngestOptions options;
    options.mode = WireMode::kFrames;
    TcpIngestServer server(options);
    if (!server.Start().ok()) {
      state.SkipWithError("ingest server failed to start");
      return;
    }
    MaritimePipeline pipeline(PipelineConfig{}, &world.zones(), nullptr,
                              nullptr, nullptr);

    std::thread sender([&server, &wire] {
      const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
      if (fd < 0) return;
      struct sockaddr_in addr{};
      addr.sin_family = AF_INET;
      addr.sin_port = htons(server.port());
      ::inet_pton(AF_INET, "127.0.0.1", &addr.sin_addr);
      if (::connect(fd, reinterpret_cast<struct sockaddr*>(&addr),
                    sizeof(addr)) == 0) {
        size_t off = 0;
        while (off < wire.size()) {
          const ssize_t w = ::send(fd, wire.data() + off,
                                   std::min<size_t>(64 * 1024,
                                                    wire.size() - off),
                                   0);
          if (w <= 0) break;
          off += static_cast<size_t>(w);
        }
      }
      ::close(fd);
    });

    // Drain-while-receiving, like examples/netfeed: feed whatever the
    // server has buffered so ingest overlaps the network transfer.
    std::vector<Event<std::string>> line_batch;
    std::vector<Event<PackedRecord>> packed_batch;
    size_t delivered = 0;
    while (delivered < records) {
      const size_t n = packed_wire ? server.DrainPacked(&packed_batch)
                                   : server.DrainLines(&line_batch);
      if (n == 0) {
        std::this_thread::yield();
        continue;
      }
      delivered += n;
      if (packed_wire) {
        events += pipeline.IngestPackedBatch(packed_batch).size();
        packed_batch.clear();
      } else {
        events += pipeline.IngestBatch(line_batch).size();
        line_batch.clear();
      }
    }
    sender.join();
    server.Stop();
    events += pipeline.Finish().size();
    lines += scenario.nmea.size();
  }
  state.counters["lines_per_s"] = benchmark::Counter(
      static_cast<double>(lines), benchmark::Counter::kIsRate);
  state.counters["records_per_iter"] = static_cast<double>(records);
  state.counters["events_per_iter"] =
      static_cast<double>(events) /
      static_cast<double>(std::max<int64_t>(state.iterations(), 1));
}
BENCHMARK(BM_NetIngest)
    ->ArgName("frame")
    ->Arg(0)
    ->Arg(1)
    ->Unit(benchmark::kMillisecond)
    ->MeasureProcessCPUTime()
    ->UseRealTime();

}  // namespace
}  // namespace marlin

int main(int argc, char** argv) {
  marlin::bench::Banner(
      "F2: the integrated infrastructure as a running artefact (Figure 2)",
      "\"integration of in-situ streaming data, trajectories detection and "
      "forecasting, recognition ... of complex events and ... visual "
      "analytics\"");
  marlin::PrintArchitectureRun();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
