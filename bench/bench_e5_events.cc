// E5 — Early-warning event recognition: precision / recall / latency (§3.1).
//
// Paper: detection "encompasses many challenges, such as ... algorithms for
// complex event (and outlier) recognition and prediction in real-time,
// dealing with heterogeneous, fluctuating and noisy voluminous data
// streams".
//
// The harness seeds ground-truth events (rendezvous, dark periods,
// loitering, spoofing), runs the pipeline under increasing reception
// degradation, and scores detections per class plus the detection latency
// (event end -> alert).

#include <benchmark/benchmark.h>

#include <cstdio>
#include <map>

#include "bench_util.h"
#include "core/pipeline.h"

namespace marlin {
namespace {

ScenarioConfig EventsConfig(uint64_t seed, double loss) {
  ScenarioConfig config;
  config.seed = seed;
  config.duration = 4 * kMillisPerHour;
  config.transit_vessels = 25;
  config.fishing_vessels = 5;
  config.loiter_vessels = 3;
  config.rendezvous_pairs = 3;
  config.dark_vessels = 4;
  config.spoof_identity_vessels = 2;
  config.spoof_teleport_vessels = 2;
  if (loss <= 0.0) {
    config.perfect_reception = true;
  } else {
    config.receiver.terrestrial_loss = loss;
    // Full-coverage stations so loss (not geometry) is the variable.
    for (const Port& p : bench::SharedWorld().ports()) {
      config.receiver.stations.emplace_back(p.position, 400000.0);
    }
    config.use_coastal_coverage_default = false;
  }
  return config;
}

struct Score {
  int truth = 0;
  int detected = 0;
  int false_alarms = 0;
  double latency_sum_s = 0.0;

  double Recall() const {
    return truth == 0 ? 1.0 : static_cast<double>(detected) / truth;
  }
  double Precision() const {
    const int claimed = detected + false_alarms;
    return claimed == 0 ? 1.0 : static_cast<double>(detected) / claimed;
  }
};

bool Matches(const DetectedEvent& ev, const TrueEvent& truth,
             DurationMs slack) {
  const bool pair_event = truth.vessel_b != 0;
  bool vessels_ok;
  if (pair_event) {
    vessels_ok = (ev.vessel_a == truth.vessel_a && ev.vessel_b == truth.vessel_b) ||
                 (ev.vessel_a == truth.vessel_b && ev.vessel_b == truth.vessel_a) ||
                 // spoof truths carry (attacker, claimed-mmsi); detections
                 // name the claimed identity in vessel_a
                 ev.vessel_a == truth.vessel_b;
  } else {
    vessels_ok = ev.vessel_a == truth.vessel_a;
  }
  return vessels_ok && ev.detected_at >= truth.start - slack &&
         ev.detected_at <= truth.end + slack;
}

std::map<std::string, Score> ScoreRun(double loss, uint64_t seed) {
  const World& world = bench::SharedWorld();
  const ScenarioOutput scenario =
      GenerateScenario(world, EventsConfig(seed, loss));
  MaritimePipeline pipeline(PipelineConfig{}, &world.zones(), nullptr,
                            nullptr, nullptr);
  const auto events = pipeline.Run(scenario.nmea);

  const std::map<TrueEventType, std::vector<EventType>> mapping = {
      {TrueEventType::kRendezvous, {EventType::kRendezvous}},
      {TrueEventType::kDarkPeriod, {EventType::kDarkPeriod}},
      {TrueEventType::kLoitering, {EventType::kLoitering}},
      {TrueEventType::kSpoofIdentity,
       {EventType::kIdentitySpoof, EventType::kTeleportSpoof}},
      {TrueEventType::kSpoofTeleport,
       {EventType::kTeleportSpoof, EventType::kIdentitySpoof}},
  };

  std::map<std::string, Score> scores;
  std::map<const DetectedEvent*, bool> used;
  for (const auto& [true_type, detected_types] : mapping) {
    Score& score = scores[TrueEventTypeName(true_type)];
    for (const auto& truth : scenario.events) {
      if (truth.type != true_type) continue;
      // Dark periods shorter than the detector threshold are undetectable
      // by design; exclude them from recall accounting.
      if (true_type == TrueEventType::kDarkPeriod &&
          truth.end - truth.start < Minutes(16)) {
        continue;
      }
      ++score.truth;
      for (const auto& ev : events) {
        bool type_ok = false;
        for (EventType dt : detected_types) type_ok |= ev.type == dt;
        if (!type_ok) continue;
        if (Matches(ev, truth, Minutes(20))) {
          ++score.detected;
          score.latency_sum_s +=
              static_cast<double>(ev.detected_at - truth.start) / 1000.0;
          used[&ev] = true;
          break;
        }
      }
    }
  }
  // False alarms: detections of scored classes that matched no truth.
  for (const auto& ev : events) {
    const char* cls = nullptr;
    switch (ev.type) {
      case EventType::kRendezvous:
        cls = TrueEventTypeName(TrueEventType::kRendezvous);
        break;
      case EventType::kLoitering:
        cls = TrueEventTypeName(TrueEventType::kLoitering);
        break;
      case EventType::kDarkPeriod:
        cls = TrueEventTypeName(TrueEventType::kDarkPeriod);
        break;
      default:
        break;
    }
    if (cls == nullptr || used.count(&ev)) continue;
    bool matches_any = false;
    for (const auto& truth : scenario.events) {
      if (Matches(ev, truth, Minutes(30))) matches_any = true;
    }
    if (!matches_any) ++scores[cls].false_alarms;
  }
  return scores;
}

void PrintTable() {
  for (double loss : {0.0, 0.1, 0.3}) {
    std::printf("--- reception loss %.0f%% ---\n", loss * 100);
    std::printf("%-24s %6s %6s %6s %10s %10s %12s\n", "event class", "truth",
                "found", "FA", "recall", "precision", "latency(s)");
    const auto scores = ScoreRun(loss, 555);
    for (const auto& [name, s] : scores) {
      std::printf("%-24s %6d %6d %6d %10.2f %10.2f %12.0f\n", name.c_str(),
                  s.truth, s.detected, s.false_alarms, s.Recall(),
                  s.Precision(),
                  s.detected == 0 ? 0.0 : s.latency_sum_s / s.detected);
    }
    std::printf("\n");
  }
}

void BM_DetectionRun(benchmark::State& state) {
  const double loss = static_cast<double>(state.range(0)) / 100.0;
  double recall_sum = 0.0;
  int classes = 0;
  for (auto _ : state) {
    const auto scores = ScoreRun(loss, 555);
    recall_sum = 0.0;
    classes = 0;
    for (const auto& [name, s] : scores) {
      recall_sum += s.Recall();
      ++classes;
    }
  }
  state.counters["mean_recall"] = recall_sum / std::max(1, classes);
}
BENCHMARK(BM_DetectionRun)->Arg(0)->Arg(10)->Arg(30)->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace marlin

int main(int argc, char** argv) {
  marlin::bench::Banner(
      "E5: complex event recognition P/R/latency (§3.1)",
      "\"early warning anomaly detection ... complex event (and outlier) "
      "recognition and prediction in real-time\" over noisy streams");
  marlin::PrintTable();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
