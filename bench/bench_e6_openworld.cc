// E6 — Closed-world vs open-world querying under 'go dark' behaviour (§4).
//
// Paper (citing Windward [43]): "27% of ships do not transmit data at least
// 10% of the time ('go dark'). Consequently, querying for instance
// rendez-vous events from an AIS database will return only those events
// reflected by the AIS data. Considering that anything which is not in the
// AIS database remains possible is thus crucial to maritime anomaly
// detection."
//
// The fleet reproduces the Windward regime (27% of vessels dark >= 10% of
// the time). Half of the seeded rendezvous happen in the open; the other
// half are held *inside* dark windows. Closed-world recall collapses on the
// hidden half; the open-world evaluator recovers them as 'possible'.

#include <benchmark/benchmark.h>

#include <cstdio>

#include "bench_util.h"
#include "core/pipeline.h"
#include "geo/geodesy.h"

namespace marlin {
namespace {

struct HiddenMeeting {
  Mmsi a = 0, b = 0;
  Timestamp when = 0;
};

struct E6Result {
  double dark_fleet_fraction = 0.0;
  int visible_truth = 0, visible_found = 0;
  int hidden_truth = 0, hidden_found_closed = 0, hidden_possible_open = 0;
};

E6Result Run() {
  const World& world = bench::SharedWorld();
  ScenarioConfig config;
  config.seed = 66;
  config.duration = 6 * kMillisPerHour;
  config.transit_vessels = 30;
  config.fishing_vessels = 0;
  config.loiter_vessels = 0;
  config.rendezvous_pairs = 3;  // observable meetings
  config.dark_vessels = 16;     // ≈27% of the ~59-vessel fleet
  config.spoof_identity_vessels = 0;
  config.spoof_teleport_vessels = 0;
  config.perfect_reception = true;
  ScenarioOutput scenario = GenerateScenario(world, config);

  // Stage hidden meetings: pair up dark vessels and declare that they met in
  // the middle of their dark windows (the truth the AIS stream cannot see).
  std::vector<HiddenMeeting> hidden;
  std::vector<std::pair<Mmsi, std::pair<Timestamp, Timestamp>>> dark_windows;
  for (const auto& truth : scenario.events) {
    if (truth.type == TrueEventType::kDarkPeriod &&
        truth.end - truth.start >= Minutes(30)) {
      dark_windows.emplace_back(truth.vessel_a,
                                std::make_pair(truth.start, truth.end));
    }
  }
  for (size_t i = 0; i + 1 < dark_windows.size(); i += 2) {
    const auto& [ma, wa] = dark_windows[i];
    const auto& [mb, wb] = dark_windows[i + 1];
    // The meeting hypothesis: midpoint of the first window (both silent
    // around then in this construction — what matters for the experiment is
    // that vessel A is unobservable at the hypothesis time).
    hidden.push_back(HiddenMeeting{ma, mb, (wa.first + wa.second) / 2});
  }

  MaritimePipeline pipeline(PipelineConfig{}, &world.zones(), nullptr,
                            nullptr, nullptr);
  const auto events = pipeline.Run(scenario.nmea);

  E6Result result;
  // Windward statistic over the fleet.
  int dark_enough = 0, fleet = 0;
  for (const auto& spec : scenario.fleet) {
    ++fleet;
    if (pipeline.coverage().DarkFraction(spec.mmsi) >= 0.10) ++dark_enough;
  }
  result.dark_fleet_fraction = static_cast<double>(dark_enough) / fleet;

  // Visible rendezvous: classic detection.
  for (const auto& truth : scenario.events) {
    if (truth.type != TrueEventType::kRendezvous) continue;
    ++result.visible_truth;
    for (const auto& ev : events) {
      if (ev.type != EventType::kRendezvous) continue;
      if ((ev.vessel_a == std::min(truth.vessel_a, truth.vessel_b)) &&
          (ev.vessel_b == std::max(truth.vessel_a, truth.vessel_b))) {
        ++result.visible_found;
        break;
      }
    }
  }
  // Hidden rendezvous: closed world vs open world.
  for (const auto& meeting : hidden) {
    ++result.hidden_truth;
    for (const auto& ev : events) {
      if (ev.type == EventType::kRendezvous &&
          (ev.vessel_a == meeting.a || ev.vessel_b == meeting.a)) {
        ++result.hidden_found_closed;
        break;
      }
    }
    if (pipeline.coverage().CouldHaveActedAt(meeting.a, meeting.when) ==
        Verdict::kPossible) {
      ++result.hidden_possible_open;
    }
  }
  return result;
}

void PrintResult() {
  const E6Result r = Run();
  std::printf("fleet dark >=10%% of the time : %.0f%%  (Windward claim: 27%%)\n",
              100.0 * r.dark_fleet_fraction);
  std::printf("\n%-44s %8s %8s\n", "rendezvous class", "truth", "answered");
  std::printf("%-44s %8d %8d\n", "visible (closed-world query finds)",
              r.visible_truth, r.visible_found);
  std::printf("%-44s %8d %8d\n", "hidden in dark windows (closed world)",
              r.hidden_truth, r.hidden_found_closed);
  std::printf("%-44s %8d %8d\n", "hidden in dark windows (open world:possible)",
              r.hidden_truth, r.hidden_possible_open);
  const double closed_recall =
      r.hidden_truth == 0
          ? 0.0
          : static_cast<double>(r.hidden_found_closed) / r.hidden_truth;
  const double open_recall =
      r.hidden_truth == 0
          ? 0.0
          : static_cast<double>(r.hidden_possible_open) / r.hidden_truth;
  std::printf(
      "\nclosed-world recall on hidden events: %.2f  ->  open-world: %.2f\n",
      closed_recall, open_recall);
}

void BM_OpenWorldEvaluation(benchmark::State& state) {
  E6Result r{};
  for (auto _ : state) {
    r = Run();
    benchmark::DoNotOptimize(r);
  }
  state.counters["dark_fleet_pct"] = 100.0 * r.dark_fleet_fraction;
  state.counters["hidden_recall_closed"] =
      r.hidden_truth == 0
          ? 0
          : static_cast<double>(r.hidden_found_closed) / r.hidden_truth;
  state.counters["hidden_recall_open"] =
      r.hidden_truth == 0
          ? 0
          : static_cast<double>(r.hidden_possible_open) / r.hidden_truth;
}
BENCHMARK(BM_OpenWorldEvaluation)->Unit(benchmark::kMillisecond)->Iterations(1);

}  // namespace
}  // namespace marlin

int main(int argc, char** argv) {
  marlin::bench::Banner(
      "E6: open-world vs closed-world queries (§4)",
      "\"27% of ships do not transmit data at least 10% of the time\"; "
      "unobserved rendezvous \"remains possible\"");
  marlin::PrintResult();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
