// E9 — Trajectory prediction at different time scales (§3.1).
//
// Paper: "algorithms for the prediction of anticipated vessel trajectories
// at different time scale, which is fundamental to achieve early warning
// maritime monitoring."
//
// Historical basin traffic trains the flow-field predictor; unseen vessels
// are forecast at 1–60 minute horizons by dead reckoning, constant-turn and
// the flow field. The reproduced shape: route-aware prediction overtakes
// dead reckoning as the horizon grows past the typical time-to-next-turn.

#include <benchmark/benchmark.h>

#include <cstdio>
#include <map>

#include "bench_util.h"
#include "core/forecast.h"
#include "common/units.h"
#include "geo/geodesy.h"

namespace marlin {
namespace {

ScenarioConfig TrainConfig() {
  ScenarioConfig config;
  config.seed = 99;
  config.duration = 8 * kMillisPerHour;
  config.transit_vessels = 50;
  config.fishing_vessels = 0;
  config.loiter_vessels = 0;
  config.rendezvous_pairs = 0;
  config.dark_vessels = 0;
  config.spoof_identity_vessels = 0;
  config.spoof_teleport_vessels = 0;
  config.perfect_reception = true;
  return config;
}

const FlowFieldForecaster& TrainedFlow() {
  static const FlowFieldForecaster flow = [] {
    FlowFieldForecaster f;
    for (const auto& [mmsi, traj] :
         bench::SharedScenario(TrainConfig()).truth) {
      f.Train(traj);
    }
    return f;
  }();
  return flow;
}

const ScenarioOutput& EvalScenario() {
  static const ScenarioOutput scenario = [] {
    ScenarioConfig config = TrainConfig();
    config.seed = 909;
    config.transit_vessels = 12;
    return GenerateScenario(bench::SharedWorld(), config);
  }();
  return scenario;
}

using ErrorTable = std::map<std::string, std::map<double, double>>;

/// `turning_only`: restrict to forecasts whose truth path changes course by
/// ≥ 30° within the horizon — the situations where route knowledge can pay
/// (on straight legs every sane predictor is near-exact and equal).
ErrorTable ComputeErrors(bool turning_only) {
  const std::vector<double> horizons = {60, 300, 900, 1800, 3600};
  DeadReckoningForecaster dr;
  ConstantTurnForecaster ct;
  const FlowFieldForecaster& flow = TrainedFlow();
  ErrorTable table;
  std::map<std::string, std::map<double, int>> counts;
  for (const auto& [mmsi, traj] : EvalScenario().truth) {
    const auto& pts = traj.points;
    for (size_t i = 30; i < pts.size(); i += 90) {
      if (pts[i].sog_mps < 0.5) continue;  // moored: nothing to forecast
      std::vector<TrajectoryPoint> recent(
          pts.begin() + std::max<long>(0, static_cast<long>(i) - 29),
          pts.begin() + static_cast<long>(i) + 1);
      for (double h : horizons) {
        const Timestamp target = pts[i].t + static_cast<Timestamp>(h * 1000);
        if (target > traj.EndTime()) continue;
        const TrajectoryPoint actual = traj.At(target);
        if (turning_only) {
          const double turn =
              std::abs(AngleDifference(actual.cog_deg, pts[i].cog_deg));
          if (turn < 30.0 || actual.sog_mps < 0.5) continue;
        }
        for (const Forecaster* f :
             std::initializer_list<const Forecaster*>{&dr, &ct, &flow}) {
          const GeoPoint predicted = f->Predict(recent, h);
          table[f->name()][h] +=
              HaversineDistance(predicted, actual.position);
          counts[f->name()][h] += 1;
        }
      }
    }
  }
  for (auto& [name, row] : table) {
    for (auto& [h, sum] : row) {
      const int n = counts[name][h];
      if (n > 0) sum /= n;
    }
  }
  return table;
}

void PrintOneTable(const char* title, const ErrorTable& table) {
  std::printf("--- %s ---\n", title);
  std::printf("%-16s", "mean error (m)");
  for (double h : {60.0, 300.0, 900.0, 1800.0, 3600.0}) {
    std::printf(" %7.0fs", h);
  }
  std::printf("\n");
  for (const auto& [name, row] : table) {
    std::printf("%-16s", name.c_str());
    for (double h : {60.0, 300.0, 900.0, 1800.0, 3600.0}) {
      auto it = row.find(h);
      std::printf(" %8.0f", it == row.end() ? -1.0 : it->second);
    }
    std::printf("\n");
  }
  const auto& dr_row = table.at("dead-reckoning");
  const auto& flow_row = table.at("flow-field");
  double crossover = -1;
  for (double h : {60.0, 300.0, 900.0, 1800.0, 3600.0}) {
    if (dr_row.count(h) && flow_row.count(h) &&
        flow_row.at(h) < dr_row.at(h)) {
      crossover = h;
      break;
    }
  }
  if (crossover > 0) {
    std::printf("flow-field overtakes dead reckoning at horizon >= %.0f s\n\n",
                crossover);
  } else {
    std::printf("no crossover in the swept horizons\n\n");
  }
}

void PrintTable() {
  PrintOneTable("all forecasts", ComputeErrors(false));
  PrintOneTable("forecasts crossing a turn >= 30 deg (early-warning cases)",
                ComputeErrors(true));
}

void BM_ForecastSweep(benchmark::State& state) {
  ErrorTable table;
  for (auto _ : state) {
    table = ComputeErrors(false);
    benchmark::DoNotOptimize(table);
  }
  state.counters["dr_err_1800s"] = table["dead-reckoning"][1800.0];
  state.counters["flow_err_1800s"] = table["flow-field"][1800.0];
}
BENCHMARK(BM_ForecastSweep)->Unit(benchmark::kMillisecond)->Iterations(1);

}  // namespace
}  // namespace marlin

int main(int argc, char** argv) {
  marlin::bench::Banner(
      "E9: anticipated trajectories at multiple time scales (§3.1)",
      "\"prediction of anticipated vessel trajectories at different time "
      "scale ... fundamental to achieve early warning\"");
  marlin::PrintTable();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
