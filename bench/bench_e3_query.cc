// E3 — Posteriori vs. on-the-fly spatio-temporal querying (§2.3).
//
// Paper: existing systems are "oriented either towards a 'posteriori
// analysis' characterized by long processing times or 'on the fly
// processing' which can provide approximate answers to queries."
//
// The experiment stores a multi-hour basin history and compares:
//  * full archival scan (posteriori baseline),
//  * R-tree indexed range query over archived positions,
//  * trajectory-store window query (per-vessel pruning),
//  * live grid query of the current picture (on-the-fly, approximate in
//    that it sees only latest positions),
//  * synopsis-based approximate window query (bounded-error answers).

#include <benchmark/benchmark.h>

#include <memory>

#include "bench_util.h"
#include "core/synopses.h"
#include "storage/rtree.h"
#include "storage/trajectory_store.h"

namespace marlin {
namespace {

ScenarioConfig QueryConfig() {
  ScenarioConfig config;
  config.seed = 33;
  config.duration = 6 * kMillisPerHour;
  config.transit_vessels = 80;
  config.fishing_vessels = 15;
  config.loiter_vessels = 5;
  config.rendezvous_pairs = 0;
  config.dark_vessels = 0;
  config.spoof_identity_vessels = 0;
  config.spoof_teleport_vessels = 0;
  config.perfect_reception = true;
  return config;
}

struct Fixture {
  TrajectoryStore store;
  std::vector<std::pair<GeoPoint, std::pair<uint32_t, Timestamp>>> flat;
  RTree rtree;
  TrajectoryStore synopsis_store;
  Timestamp t0 = 0, t1 = 0;

  static const Fixture& Get() {
    static Fixture f;
    return f;
  }

 private:
  Fixture() {
    const ScenarioOutput& scenario = bench::SharedScenario(QueryConfig());
    SynopsisEngine synopses;
    std::vector<RTreeEntry> entries;
    uint64_t id = 0;
    for (const auto& [mmsi, truth] : scenario.truth) {
      for (const auto& p : truth.points) {
        (void)store.Append(mmsi, p);
        flat.emplace_back(p.position, std::make_pair(mmsi, p.t));
        BoundingBox box;
        box.Extend(p.position);
        entries.push_back(RTreeEntry{box, id++});
      }
      for (const auto& cp : synopses.CompressTrajectory(truth)) {
        (void)synopsis_store.Append(cp.mmsi, cp.point);
      }
      t0 = truth.StartTime();
      t1 = truth.EndTime();
    }
    rtree = RTree(std::move(entries));
  }
};

const BoundingBox kQueryBox(39.0, 0.0, 41.5, 4.0);

void BM_FullScanWindow(benchmark::State& state) {
  const Fixture& f = Fixture::Get();
  const Timestamp qt0 = f.t0 + Hours(2), qt1 = f.t0 + Hours(4);
  size_t hits = 0;
  for (auto _ : state) {
    size_t n = 0;
    for (const auto& [pos, key] : f.flat) {
      if (key.second >= qt0 && key.second <= qt1 && kQueryBox.Contains(pos)) {
        ++n;
      }
    }
    hits = n;
    benchmark::DoNotOptimize(n);
  }
  state.counters["rows"] = static_cast<double>(hits);
  state.counters["stored_points"] = static_cast<double>(f.flat.size());
}
BENCHMARK(BM_FullScanWindow)->Unit(benchmark::kMillisecond);

void BM_RTreeRange(benchmark::State& state) {
  const Fixture& f = Fixture::Get();
  size_t hits = 0;
  for (auto _ : state) {
    const auto ids = f.rtree.Query(kQueryBox);
    hits = ids.size();
    benchmark::DoNotOptimize(ids);
  }
  state.counters["rows"] = static_cast<double>(hits);
}
BENCHMARK(BM_RTreeRange)->Unit(benchmark::kMillisecond);

void BM_TrajectoryStoreWindow(benchmark::State& state) {
  const Fixture& f = Fixture::Get();
  const Timestamp qt0 = f.t0 + Hours(2), qt1 = f.t0 + Hours(4);
  size_t hits = 0;
  for (auto _ : state) {
    const auto result = f.store.QueryWindow(kQueryBox, qt0, qt1);
    size_t n = 0;
    for (const auto& traj : result) n += traj.points.size();
    hits = n;
    benchmark::DoNotOptimize(result);
  }
  state.counters["rows"] = static_cast<double>(hits);
}
BENCHMARK(BM_TrajectoryStoreWindow)->Unit(benchmark::kMillisecond);

void BM_LiveGridQuery(benchmark::State& state) {
  const Fixture& f = Fixture::Get();
  size_t hits = 0;
  for (auto _ : state) {
    const auto ids = f.store.QueryLive(kQueryBox);
    hits = ids.size();
    benchmark::DoNotOptimize(ids);
  }
  state.counters["rows"] = static_cast<double>(hits);
}
BENCHMARK(BM_LiveGridQuery)->Unit(benchmark::kMicrosecond);

void BM_SynopsisApproxWindow(benchmark::State& state) {
  // On-the-fly style: query the compressed store; answers are approximate
  // within the synopsis error bound but the data volume is ~20x smaller.
  const Fixture& f = Fixture::Get();
  const Timestamp qt0 = f.t0 + Hours(2), qt1 = f.t0 + Hours(4);
  size_t hits = 0;
  for (auto _ : state) {
    const auto result = f.synopsis_store.QueryWindow(kQueryBox, qt0, qt1);
    size_t n = 0;
    for (const auto& traj : result) n += traj.points.size();
    hits = n;
    benchmark::DoNotOptimize(result);
  }
  state.counters["rows"] = static_cast<double>(hits);
  state.counters["synopsis_points"] =
      static_cast<double>(f.synopsis_store.PointCount());
}
BENCHMARK(BM_SynopsisApproxWindow)->Unit(benchmark::kMicrosecond);

void BM_NearestNeighbours(benchmark::State& state) {
  const Fixture& f = Fixture::Get();
  const GeoPoint probe(40.2, 2.0);
  for (auto _ : state) {
    benchmark::DoNotOptimize(f.store.NearestLive(probe, 10));
  }
}
BENCHMARK(BM_NearestNeighbours)->Unit(benchmark::kMicrosecond);

}  // namespace
}  // namespace marlin

int main(int argc, char** argv) {
  marlin::bench::Banner(
      "E3: posteriori vs on-the-fly querying (§2.3)",
      "\"'posteriori analysis' characterized by long processing times or "
      "'on the fly processing' which can provide approximate answers\"");
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
