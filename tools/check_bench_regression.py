#!/usr/bin/env python3
"""Hot-path microbench regression gates.

Compares counters of a fresh Release run against the committed
BENCH_f2_pipeline.json baseline and fails (exit 1) on a >2x regression.
The 2x margin absorbs host differences between the recording machine and
CI runners while still catching the failure modes these guard against.

Four gates:

* BM_DecodeMicro lines_per_s, packed arm (packed:1) — the production
  bit-packed decode path. Canary for per-line allocation, copying, or
  byte-per-bit extraction sneaking back into the hot path. Older
  baselines that predate the axis expose a single unsuffixed
  BM_DecodeMicro entry, which is accepted as a fallback so the gate
  stays comparable across the transition.
* BM_QueueHop items_per_s, lock-free arm (spsc:1) — the SPSC ring
  stage-to-stage hand-off. Canary for a lock, syscall, or unconditional
  wake-up sneaking into the push/pop fast path. Baselines recorded
  before the queue-hop bench existed simply skip this gate with a
  notice.
* BM_QueryServing queries_per_s, single-reader finished-archive arm
  (readers:1/live:0) — the historical serving tier's fan-out/scan/merge
  path. Canary for index pruning breaking (every query degenerating to
  a full decode) or a lock sneaking into the snapshot read path. The
  concurrent/live arms are informational only: their numbers measure
  scheduler contention on small hosts, not the serving tier. Baselines
  recorded before the serving tier existed skip this gate with a
  notice.
* BM_AnomalyStage detectors_per_s, enabled arm (anomaly:1) — the
  integrity scorer + behaviour-change detector invocation rate. Canary
  for an allocation or a quadratic scan sneaking into the per-report /
  per-point path of the anomaly & integrity stage. Baselines recorded
  before the stage existed skip this gate with a notice.
* BM_NetIngest lines_per_s, NMEA-line arm (frame:0) — loopback TCP
  replay through the epoll ingest server into the pipeline. Canary for
  a per-byte copy, per-frame allocation, or busy-spin sneaking into
  the read-loop / frame-decode / drain hand-off path. Baselines
  recorded before the network front door existed skip this gate with
  a notice.

Usage:
  check_bench_regression.py <baseline.json> <current.json> [min_ratio]

Both files are Google Benchmark JSON (--benchmark_format=json /
--benchmark_out). Exits 0 with a notice when the baseline predates a
gated benchmark; current runs that merely filtered a benchmark out are
skipped per-gate the same way (only gates whose benchmark ran are
enforced, and at least one must have).
"""

import json
import sys


def load_benchmarks(path):
    with open(path) as f:
        return json.load(f).get("benchmarks", [])


def decode_lines_per_s(benchmarks):
    fallback = None
    for bench in benchmarks:
        name = bench.get("name", "")
        if not name.startswith("BM_DecodeMicro") or "lines_per_s" not in bench:
            continue
        if "packed:1" in name:
            return float(bench["lines_per_s"])
        if "packed:0" not in name and fallback is None:
            fallback = float(bench["lines_per_s"])
    return fallback


def queue_hop_items_per_s(benchmarks):
    # Prefer the singleton-batch arm (the worst case for hand-off
    # overhead); fall back to any spsc:1 arm if the batch axis changes.
    fallback = None
    for bench in benchmarks:
        name = bench.get("name", "")
        if not name.startswith("BM_QueueHop") or "items_per_s" not in bench:
            continue
        if "spsc:1" not in name:
            continue
        if "batch:1/" in name or name.endswith("batch:1"):
            return float(bench["items_per_s"])
        if fallback is None:
            fallback = float(bench["items_per_s"])
    return fallback


def query_serving_queries_per_s(benchmarks):
    # Gate the uncontended single-reader arm against the finished archive
    # (the only arm whose number is a property of the serving tier rather
    # than of host scheduling); fall back to any arm if the axes change.
    fallback = None
    for bench in benchmarks:
        name = bench.get("name", "")
        if not name.startswith("BM_QueryServing") or \
                "queries_per_s" not in bench:
            continue
        if "readers:1/" in name and "live:0" in name:
            return float(bench["queries_per_s"])
        if fallback is None:
            fallback = float(bench["queries_per_s"])
    return fallback


def anomaly_stage_detectors_per_s(benchmarks):
    # Gate the enabled arm (anomaly:1) — the combined integrity-scorer +
    # behaviour-change-detector invocation rate. The off arm is the
    # pre-stage baseline and carries no detector work to gate.
    for bench in benchmarks:
        name = bench.get("name", "")
        if not name.startswith("BM_AnomalyStage") or \
                "detectors_per_s" not in bench:
            continue
        if "anomaly:1" in name:
            return float(bench["detectors_per_s"])
    return None


def net_ingest_lines_per_s(benchmarks):
    # Gate the frame:0 (re-armored NMEA line) arm — the production wire
    # shape; the packed arm is informational (it measures the sender-side
    # de-armoring saving, not the server). Fall back to any arm if the
    # frame axis changes.
    fallback = None
    for bench in benchmarks:
        name = bench.get("name", "")
        if not name.startswith("BM_NetIngest") or \
                "lines_per_s" not in bench:
            continue
        if "frame:0" in name:
            return float(bench["lines_per_s"])
        if fallback is None:
            fallback = float(bench["lines_per_s"])
    return fallback


GATES = [
    ("decode microbench", decode_lines_per_s, "lines/s"),
    ("queue hop (spsc)", queue_hop_items_per_s, "items/s"),
    ("query serving", query_serving_queries_per_s, "queries/s"),
    ("anomaly stage", anomaly_stage_detectors_per_s, "detections/s"),
    ("net ingest", net_ingest_lines_per_s, "lines/s"),
]


def main(argv):
    if len(argv) < 3:
        print(__doc__)
        return 2
    baseline_path, current_path = argv[1], argv[2]
    min_ratio = float(argv[3]) if len(argv) > 3 else 0.5

    baseline_benchmarks = load_benchmarks(baseline_path)
    current_benchmarks = load_benchmarks(current_path)

    failed = False
    gated = 0
    for label, extract, unit in GATES:
        baseline = extract(baseline_benchmarks)
        if baseline is None:
            print(f"notice: {baseline_path} predates the {label} bench; "
                  "skipping that gate")
            continue
        current = extract(current_benchmarks)
        if current is None:
            print(f"notice: {current_path} has no {label} entry "
                  "(filtered out of this run); skipping that gate")
            continue
        gated += 1
        ratio = current / baseline
        print(f"{label}: baseline {baseline:,.0f} {unit}, "
              f"current {current:,.0f} {unit} ({ratio:.2f}x baseline, "
              f"gate at {min_ratio:.2f}x)")
        if ratio < min_ratio:
            print(f"FAIL: {label} regressed beyond the gate")
            failed = True
    if gated == 0:
        print(f"error: no gated benchmark present in both {baseline_path} "
              f"and {current_path} — did the benchmark run?")
        return 1
    if failed:
        return 1
    print("OK")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
