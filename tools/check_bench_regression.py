#!/usr/bin/env python3
"""Decode-microbench regression gate.

Compares the BM_DecodeMicro lines_per_s counter of a fresh Release run
against the committed BENCH_f2_pipeline.json baseline and fails (exit 1)
on a >2x regression. The 2x margin absorbs host differences between the
recording machine and CI runners while still catching the failure mode
this guards against: an accidental re-introduction of per-line
allocation/copying into the decode hot path, which costs well over 2x.

The gate tracks the *packed* arm of the packed-vs-byte axis
(BM_DecodeMicro/packed:1) — the production bit-packed decode path. Older
baselines that predate the axis expose a single unsuffixed BM_DecodeMicro
entry, which is accepted as a fallback so the gate stays comparable across
the transition.

Usage:
  check_bench_regression.py <baseline.json> <current.json> [min_ratio]

Both files are Google Benchmark JSON (--benchmark_format=json /
--benchmark_out). Exits 0 with a notice when the baseline predates the
microbench (no BM_DecodeMicro entry).
"""

import json
import sys


def decode_lines_per_s(path):
    with open(path) as f:
        data = json.load(f)
    fallback = None
    for bench in data.get("benchmarks", []):
        name = bench.get("name", "")
        if not name.startswith("BM_DecodeMicro") or "lines_per_s" not in bench:
            continue
        if "packed:1" in name:
            return float(bench["lines_per_s"])
        if "packed:0" not in name and fallback is None:
            fallback = float(bench["lines_per_s"])
    return fallback


def main(argv):
    if len(argv) < 3:
        print(__doc__)
        return 2
    baseline_path, current_path = argv[1], argv[2]
    min_ratio = float(argv[3]) if len(argv) > 3 else 0.5

    baseline = decode_lines_per_s(baseline_path)
    if baseline is None:
        print(f"notice: {baseline_path} has no BM_DecodeMicro lines_per_s; "
              "nothing to gate against")
        return 0
    current = decode_lines_per_s(current_path)
    if current is None:
        print(f"error: {current_path} has no BM_DecodeMicro lines_per_s — "
              "did the benchmark run?")
        return 1

    ratio = current / baseline
    print(f"decode microbench: baseline {baseline:,.0f} lines/s, "
          f"current {current:,.0f} lines/s ({ratio:.2f}x baseline, "
          f"gate at {min_ratio:.2f}x)")
    if ratio < min_ratio:
        print("FAIL: decode throughput regressed beyond the gate")
        return 1
    print("OK")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
