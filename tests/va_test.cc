// Unit tests for marlin_va: density grids, temporal histograms, flows,
// situation overview.

#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>

#include "common/rng.h"
#include "va/density.h"
#include "va/flows.h"
#include "va/situation.h"

namespace marlin {
namespace {

// --- DensityGrid ----------------------------------------------------------

TEST(DensityGridTest, DimensionsFromBoundsAndPitch) {
  const DensityGrid grid(BoundingBox(36.0, -6.0, 44.0, 9.0), 0.5);
  EXPECT_EQ(grid.rows(), 16);
  EXPECT_EQ(grid.cols(), 30);
}

TEST(DensityGridTest, AddAccumulates) {
  DensityGrid grid(BoundingBox(0, 0, 10, 10), 1.0);
  grid.Add(GeoPoint(5.5, 5.5));
  grid.Add(GeoPoint(5.6, 5.4), 2.0);
  EXPECT_DOUBLE_EQ(grid.At(5, 5), 3.0);
  EXPECT_DOUBLE_EQ(grid.TotalWeight(), 3.0);
  EXPECT_EQ(grid.NonEmptyCells(), 1u);
  EXPECT_DOUBLE_EQ(grid.MaxValue(), 3.0);
}

TEST(DensityGridTest, OutOfBoundsIgnored) {
  DensityGrid grid(BoundingBox(0, 0, 10, 10), 1.0);
  grid.Add(GeoPoint(20, 20));
  grid.Add(GeoPoint(-5, 5));
  EXPECT_DOUBLE_EQ(grid.TotalWeight(), 0.0);
}

TEST(DensityGridTest, EdgeCellsClamped) {
  DensityGrid grid(BoundingBox(0, 0, 10, 10), 1.0);
  grid.Add(GeoPoint(10.0, 10.0));  // exactly on the max corner
  EXPECT_DOUBLE_EQ(grid.At(grid.rows() - 1, grid.cols() - 1), 1.0);
}

TEST(DensityGridTest, CoarsenPreservesMass) {
  DensityGrid grid(BoundingBox(0, 0, 8, 8), 0.5);
  Rng rng(271);
  for (int i = 0; i < 500; ++i) {
    grid.Add(GeoPoint(rng.Uniform(0, 8), rng.Uniform(0, 8)));
  }
  const DensityGrid coarse = grid.Coarsen(4);
  EXPECT_DOUBLE_EQ(coarse.TotalWeight(), grid.TotalWeight());
  EXPECT_EQ(coarse.rows(), grid.rows() / 4);
  EXPECT_LE(coarse.NonEmptyCells(), grid.NonEmptyCells());
}

TEST(DensityGridTest, AddTrajectory) {
  DensityGrid grid(BoundingBox(39, 4, 41, 6), 0.1);
  Trajectory traj;
  traj.mmsi = 1;
  for (int i = 0; i < 50; ++i) {
    TrajectoryPoint p;
    p.t = i;
    p.position = GeoPoint(40.0, 4.5 + 0.02 * i);
    traj.points.push_back(p);
  }
  grid.AddTrajectory(traj);
  EXPECT_DOUBLE_EQ(grid.TotalWeight(), 50.0);
  EXPECT_GE(grid.NonEmptyCells(), 9u);
}

TEST(DensityGridTest, CsvListsNonEmptyCells) {
  DensityGrid grid(BoundingBox(0, 0, 2, 2), 1.0);
  grid.Add(GeoPoint(0.5, 0.5));
  grid.Add(GeoPoint(1.5, 1.5));
  const std::string csv = grid.ToCsv();
  EXPECT_NE(csv.find("row,col,lat,lon,value"), std::string::npos);
  // Header + 2 data lines.
  EXPECT_EQ(std::count(csv.begin(), csv.end(), '\n'), 3);
}

TEST(DensityGridTest, AsciiRenderHasExpectedShape) {
  DensityGrid grid(BoundingBox(0, 0, 10, 20), 1.0);
  for (int i = 0; i < 100; ++i) grid.Add(GeoPoint(5.5, 10.5));
  const std::string art = grid.ToAscii(40);
  EXPECT_EQ(std::count(art.begin(), art.end(), '\n'), grid.rows());
  EXPECT_NE(art.find('@'), std::string::npos);  // the hot cell
}

TEST(DensityGridTest, PpmWritesValidHeader) {
  DensityGrid grid(BoundingBox(0, 0, 4, 4), 1.0);
  grid.Add(GeoPoint(2.5, 2.5));
  const std::string path = ::testing::TempDir() + "/marlin_density.ppm";
  ASSERT_TRUE(grid.WritePpm(path).ok());
  std::ifstream in(path, std::ios::binary);
  std::string magic;
  int w = 0, h = 0, maxval = 0;
  in >> magic >> w >> h >> maxval;
  EXPECT_EQ(magic, "P6");
  EXPECT_EQ(w, grid.cols());
  EXPECT_EQ(h, grid.rows());
  EXPECT_EQ(maxval, 255);
  // Pixel payload present: 1 whitespace + w*h*3 bytes.
  in.seekg(0, std::ios::end);
  EXPECT_GE(static_cast<int>(in.tellg()),
            w * h * 3);
  std::filesystem::remove(path);
}

// --- TemporalHistogram -----------------------------------------------------

TEST(TemporalHistogramTest, BucketsByHourOfDay) {
  TemporalHistogram hist;
  const Timestamp midnight = 1700006400000;  // some UTC midnight multiple
  const Timestamp base = midnight - (midnight % kMillisPerDay);
  hist.Add(base + 3 * kMillisPerHour + 5);
  hist.Add(base + 3 * kMillisPerHour + 999);
  hist.Add(base + 17 * kMillisPerHour);
  EXPECT_EQ(hist.At(3), 2u);
  EXPECT_EQ(hist.At(17), 1u);
  EXPECT_EQ(hist.Total(), 3u);
  EXPECT_EQ(hist.PeakHour(), 3);
}

// --- FlowMatrix ------------------------------------------------------------

TEST(FlowMatrixTest, PortToPortVisitSequence) {
  ZoneDatabase zones;
  GeoZone a;
  a.name = "A";
  a.type = ZoneType::kPort;
  a.polygon = Polygon::Circle(GeoPoint(40.0, 5.0), 3000.0);
  const uint32_t id_a = zones.Add(std::move(a));
  GeoZone b;
  b.name = "B";
  b.type = ZoneType::kPort;
  b.polygon = Polygon::Circle(GeoPoint(41.0, 6.0), 3000.0);
  const uint32_t id_b = zones.Add(std::move(b));

  FlowMatrix flows(&zones, ZoneType::kPort);
  Trajectory traj;
  traj.mmsi = 1;
  // A → open sea → B.
  auto add = [&traj](const GeoPoint& p, Timestamp t) {
    TrajectoryPoint tp;
    tp.t = t;
    tp.position = p;
    traj.points.push_back(tp);
  };
  add(GeoPoint(40.0, 5.0), 0);
  add(GeoPoint(40.5, 5.5), 1000);
  add(GeoPoint(41.0, 6.0), 2000);
  flows.AddTrajectory(traj);
  EXPECT_EQ(flows.Count(id_a, id_b), 1u);
  EXPECT_EQ(flows.Count(id_b, id_a), 0u);
  const auto edges = flows.Edges();
  ASSERT_EQ(edges.size(), 1u);
  EXPECT_EQ(edges[0].count, 1u);
  const std::string csv = flows.ToCsv();
  EXPECT_NE(csv.find("A,B,1"), std::string::npos);
}

TEST(FlowMatrixTest, RepeatSamplesInOneZoneCountOnce) {
  ZoneDatabase zones;
  GeoZone a;
  a.name = "A";
  a.type = ZoneType::kPort;
  a.polygon = Polygon::Circle(GeoPoint(40.0, 5.0), 3000.0);
  const uint32_t id_a = zones.Add(std::move(a));
  GeoZone b;
  b.name = "B";
  b.type = ZoneType::kPort;
  b.polygon = Polygon::Circle(GeoPoint(41.0, 6.0), 3000.0);
  const uint32_t id_b = zones.Add(std::move(b));
  FlowMatrix flows(&zones, ZoneType::kPort);
  Trajectory traj;
  traj.mmsi = 1;
  for (int i = 0; i < 10; ++i) {  // linger in A
    TrajectoryPoint tp;
    tp.t = i;
    tp.position = GeoPoint(40.0, 5.0);
    traj.points.push_back(tp);
  }
  TrajectoryPoint tp;
  tp.t = 100;
  tp.position = GeoPoint(41.0, 6.0);
  traj.points.push_back(tp);
  flows.AddTrajectory(traj);
  EXPECT_EQ(flows.Count(id_a, id_b), 1u);
}

// --- SituationOverview -------------------------------------------------

TEST(SituationTest, SnapshotCountsAndAlerts) {
  TrajectoryStore store;
  ZoneDatabase zones;
  GeoZone port;
  port.name = "P";
  port.type = ZoneType::kPort;
  port.polygon = Polygon::Circle(GeoPoint(41.35, 2.15), 3000.0);
  zones.Add(std::move(port));
  CoverageModel coverage;

  const Timestamp t0 = 1700000000000;
  // Fresh vessel inside the port.
  TrajectoryPoint p;
  p.t = t0;
  p.position = GeoPoint(41.35, 2.15);
  ASSERT_TRUE(store.Append(1, p).ok());
  coverage.Observe(1, t0);
  // Stale vessel at sea (last seen 2 h ago).
  p.t = t0 - Hours(2);
  p.position = GeoPoint(40.0, 5.0);
  ASSERT_TRUE(store.Append(2, p).ok());
  coverage.Observe(2, t0 - Hours(2));

  SituationOverview overview(&store, &zones, &coverage);
  DetectedEvent alert;
  alert.type = EventType::kRendezvous;
  alert.severity = 0.8;
  alert.detected_at = t0 - Minutes(10);
  alert.vessel_a = 1;
  alert.vessel_b = 2;
  overview.RecordEvents({alert});
  // Low-severity events are not retained as alerts.
  DetectedEvent minor;
  minor.type = EventType::kZoneExit;
  minor.severity = 0.1;
  minor.detected_at = t0;
  overview.RecordEvents({minor});

  const SituationSnapshot snap = overview.Snapshot(t0 + Minutes(1));
  EXPECT_EQ(snap.active_vessels, 1u);
  EXPECT_EQ(snap.dark_vessels, 1u);
  EXPECT_EQ(snap.vessels_per_zone_type.at("port"), 1u);
  ASSERT_EQ(snap.active_alerts.size(), 1u);
  EXPECT_EQ(snap.active_alerts[0].type, EventType::kRendezvous);

  const std::string text = SituationOverview::Render(snap, &zones);
  EXPECT_NE(text.find("active vessels: 1"), std::string::npos);
  EXPECT_NE(text.find("rendezvous"), std::string::npos);
}

TEST(SituationTest, AlertsExpire) {
  TrajectoryStore store;
  ZoneDatabase zones;
  CoverageModel coverage;
  SituationOverview::Options opts;
  opts.alert_retention_ms = Minutes(30);
  SituationOverview overview(&store, &zones, &coverage, opts);
  DetectedEvent alert;
  alert.type = EventType::kCollisionRisk;
  alert.severity = 0.9;
  alert.detected_at = 1700000000000;
  overview.RecordEvents({alert});
  EXPECT_EQ(overview.Snapshot(alert.detected_at + Minutes(10)).active_alerts.size(),
            1u);
  EXPECT_TRUE(overview.Snapshot(alert.detected_at + Hours(1)).active_alerts.empty());
}

}  // namespace
}  // namespace marlin
