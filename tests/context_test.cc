// Unit tests for marlin_context: zones, weather provider, registries.

#include <gtest/gtest.h>

#include <set>

#include "context/registry.h"
#include "context/weather.h"
#include "context/zones.h"
#include "geo/geodesy.h"

namespace marlin {
namespace {

// --- ZoneDatabase ---------------------------------------------------------

class ZoneDbTest : public ::testing::Test {
 protected:
  ZoneDbTest() {
    GeoZone port;
    port.name = "Port Vell";
    port.type = ZoneType::kPort;
    port.polygon = Polygon::Circle(GeoPoint(41.35, 2.15), 3000.0);
    port_id_ = db_.Add(std::move(port));

    GeoZone anchorage;
    anchorage.name = "Port Vell anchorage";
    anchorage.type = ZoneType::kAnchorage;
    anchorage.polygon = Polygon::Circle(GeoPoint(41.35, 2.15), 9000.0);
    anchorage.speed_limit_knots = 8.0;
    anchorage_id_ = db_.Add(std::move(anchorage));

    GeoZone reserve;
    reserve.name = "Coral Reserve";
    reserve.type = ZoneType::kProtectedArea;
    reserve.fishing_prohibited = true;
    reserve.polygon = Polygon::Circle(GeoPoint(37.8, 1.8), 15000.0);
    reserve_id_ = db_.Add(std::move(reserve));
  }
  ZoneDatabase db_;
  uint32_t port_id_, anchorage_id_, reserve_id_;
};

TEST_F(ZoneDbTest, PointInNestedZones) {
  const auto zones = db_.ZonesAt(GeoPoint(41.35, 2.15));
  ASSERT_EQ(zones.size(), 2u);  // port + anchorage
}

TEST_F(ZoneDbTest, PointInOuterRingOnly) {
  const GeoPoint outer = Destination(GeoPoint(41.35, 2.15), 90.0, 6000.0);
  const auto zones = db_.ZonesAt(outer);
  ASSERT_EQ(zones.size(), 1u);
  EXPECT_EQ(zones[0]->id, anchorage_id_);
  EXPECT_DOUBLE_EQ(zones[0]->speed_limit_knots, 8.0);
}

TEST_F(ZoneDbTest, TypeFilteredLookup) {
  const auto ports = db_.ZonesAt(GeoPoint(41.35, 2.15), ZoneType::kPort);
  ASSERT_EQ(ports.size(), 1u);
  EXPECT_EQ(ports[0]->name, "Port Vell");
  EXPECT_TRUE(db_.ZonesAt(GeoPoint(41.35, 2.15), ZoneType::kEez).empty());
}

TEST_F(ZoneDbTest, OpenSeaHasNoZones) {
  EXPECT_TRUE(db_.ZonesAt(GeoPoint(40.0, 5.0)).empty());
}

TEST_F(ZoneDbTest, RegionQuery) {
  const auto zones = db_.ZonesIn(BoundingBox(37.0, 1.0, 39.0, 3.0));
  ASSERT_EQ(zones.size(), 1u);
  EXPECT_EQ(zones[0]->id, reserve_id_);
}

TEST_F(ZoneDbTest, FindByIdAndIri) {
  const GeoZone* z = db_.Find(reserve_id_);
  ASSERT_NE(z, nullptr);
  EXPECT_TRUE(z->fishing_prohibited);
  EXPECT_EQ(z->Iri(), "dtc:zone/" + std::to_string(reserve_id_));
  EXPECT_EQ(db_.Find(9999), nullptr);
}

TEST(ZoneTypeTest, AllNamesDistinct) {
  std::set<std::string> names;
  for (int i = 0; i <= 6; ++i) {
    names.insert(ZoneTypeName(static_cast<ZoneType>(i)));
  }
  EXPECT_EQ(names.size(), 7u);
}

// --- WeatherProvider --------------------------------------------------------

TEST(WeatherTest, DeterministicForSameSeed) {
  const WeatherProvider a(42), b(42);
  const GeoPoint p(40.0, 5.0);
  const Timestamp t = 1700000000000;
  const WeatherSample sa = a.At(p, t);
  const WeatherSample sb = b.At(p, t);
  EXPECT_DOUBLE_EQ(sa.wind_speed_mps, sb.wind_speed_mps);
  EXPECT_DOUBLE_EQ(sa.wave_height_m, sb.wave_height_m);
}

TEST(WeatherTest, DifferentSeedsDiffer) {
  const WeatherProvider a(1), b(2);
  const WeatherSample sa = a.At(GeoPoint(40, 5), 1700000000000);
  const WeatherSample sb = b.At(GeoPoint(40, 5), 1700000000000);
  EXPECT_NE(sa.wind_speed_mps, sb.wind_speed_mps);
}

TEST(WeatherTest, ValuesWithinPhysicalBounds) {
  const WeatherProvider provider(7);
  for (double lat = -60; lat <= 60; lat += 13.7) {
    for (double lon = -170; lon <= 170; lon += 23.1) {
      const WeatherSample s =
          provider.At(GeoPoint(lat, lon), 1700000000000 + lat * 1e7);
      EXPECT_GE(s.wind_speed_mps, 0.0);
      EXPECT_LE(s.wind_speed_mps, 22.0);
      EXPECT_GE(s.wave_height_m, 0.0);
      EXPECT_LE(s.wave_height_m, 6.0);
      EXPECT_GE(s.wind_dir_deg, 0.0);
      EXPECT_LE(s.wind_dir_deg, 360.0);
      EXPECT_LE(s.current_speed_mps, 1.5);
    }
  }
}

TEST(WeatherTest, SpatiallySmooth) {
  // Adjacent points (1 km apart, grid pitch ~55 km) see nearly equal weather.
  const WeatherProvider provider(11);
  const GeoPoint a(40.0, 5.0);
  const GeoPoint b = Destination(a, 90.0, 1000.0);
  const Timestamp t = 1700000000000;
  EXPECT_NEAR(provider.At(a, t).wind_speed_mps,
              provider.At(b, t).wind_speed_mps, 1.0);
}

TEST(WeatherTest, TemporallySmooth) {
  const WeatherProvider provider(13);
  const GeoPoint p(40.0, 5.0);
  const Timestamp t = 1700000000000;
  EXPECT_NEAR(provider.At(p, t).wind_speed_mps,
              provider.At(p, t + Minutes(5)).wind_speed_mps, 1.5);
}

TEST(WeatherTest, FieldActuallyVaries) {
  const WeatherProvider provider(17);
  double min = 1e9, max = -1e9;
  for (int i = 0; i < 50; ++i) {
    const double v =
        provider.At(GeoPoint(30.0 + i, -100.0 + 3 * i), 1700000000000)
            .wind_speed_mps;
    min = std::min(min, v);
    max = std::max(max, v);
  }
  EXPECT_GT(max - min, 3.0);
}

// --- Registry / conflict resolution -------------------------------------

RegistryRecord MakeRecord(uint32_t mmsi, const std::string& name,
                          const std::string& flag, int length) {
  RegistryRecord r;
  r.mmsi = mmsi;
  r.imo = 9074729;
  r.name = name;
  r.flag = flag;
  r.call_sign = "FABC";
  r.length_m = length;
  r.beam_m = 20;
  r.ship_type = 70;
  return r;
}

TEST(RegistryTest, LookupSemantics) {
  VesselRegistry reg("marinetraffic");
  EXPECT_FALSE(reg.Lookup(1).has_value());
  reg.Upsert(MakeRecord(1, "SEA STAR", "FR", 120));
  ASSERT_TRUE(reg.Lookup(1).has_value());
  EXPECT_EQ(reg.Lookup(1)->name, "SEA STAR");
  reg.Upsert(MakeRecord(1, "SEA STAR II", "FR", 120));
  EXPECT_EQ(reg.Lookup(1)->name, "SEA STAR II");
  EXPECT_EQ(reg.size(), 1u);
}

TEST(RegistryResolverTest, AgreementPassesThrough) {
  SourceQualityModel quality;
  VesselRegistry a("marinetraffic"), b("lloyds");
  a.Upsert(MakeRecord(1, "SEA STAR", "FR", 120));
  b.Upsert(MakeRecord(1, "SEA STAR", "FR", 120));
  RegistryResolver resolver(&quality);
  const auto resolved = resolver.Resolve(a, b, 1);
  ASSERT_TRUE(resolved.has_value());
  EXPECT_TRUE(resolved->conflicting_fields.empty());
  EXPECT_EQ(resolved->record.name, "SEA STAR");
}

TEST(RegistryResolverTest, QualityBreaksConflicts) {
  SourceQualityModel quality;
  // Lloyd's has proven more reliable historically.
  for (int i = 0; i < 20; ++i) quality.Record("lloyds", true);
  for (int i = 0; i < 20; ++i) quality.Record("marinetraffic", i % 2 == 0);
  VesselRegistry a("marinetraffic"), b("lloyds");
  a.Upsert(MakeRecord(1, "SEA STAR", "MT", 118));  // stale flag, odd length
  b.Upsert(MakeRecord(1, "SEA STAR", "FR", 120));
  RegistryResolver resolver(&quality);
  const auto resolved = resolver.Resolve(a, b, 1);
  ASSERT_TRUE(resolved.has_value());
  // Both flag and length conflicted; the reliable source won both.
  EXPECT_EQ(resolved->conflicting_fields.size(), 2u);
  EXPECT_EQ(resolved->record.flag, "FR");
  EXPECT_EQ(resolved->record.length_m, 120);
  EXPECT_EQ(resolved->chosen_source.at("flag"), "lloyds");
}

TEST(RegistryResolverTest, SingleSourceFallback) {
  SourceQualityModel quality;
  VesselRegistry a("marinetraffic"), b("lloyds");
  a.Upsert(MakeRecord(5, "ONLY HERE", "FR", 80));
  RegistryResolver resolver(&quality);
  const auto resolved = resolver.Resolve(a, b, 5);
  ASSERT_TRUE(resolved.has_value());
  EXPECT_EQ(resolved->record.name, "ONLY HERE");
  EXPECT_TRUE(resolved->conflicting_fields.empty());
  EXPECT_FALSE(resolver.Resolve(a, b, 404).has_value());
}

}  // namespace
}  // namespace marlin
