// Fault-tolerance tests: the deterministic injector itself, WAL/run crash
// semantics of the LSM store under injected IO failures, and the supervised
// sharded pipeline — a worker killed at any instrumented site must restart,
// replay, and reproduce the fault-free event stream exactly (or degrade to
// counted drops once the restart budget / replay history is exhausted).

#include <gtest/gtest.h>

#include <algorithm>
#include <filesystem>
#include <set>
#include <string>
#include <tuple>
#include <vector>

#include "common/fault.h"
#include "core/pipeline.h"
#include "core/sharded_pipeline.h"
#include "sim/scenario.h"
#include "sim/world.h"
#include "storage/lsm_store.h"
#include "stream/dead_letter.h"

namespace marlin {
namespace {

// --- Injector units ---------------------------------------------------------

TEST(FaultInjectorTest, DisarmedSitesAreInert) {
  FaultInjector::Disarm();
  EXPECT_FALSE(FaultInjector::armed());
  // The macro guards on armed(): with no plan this whole block is a no-op.
  EXPECT_NO_THROW(MARLIN_FAULT_POINT("nonexistent.site"));
}

TEST(FaultInjectorTest, FiresOnExactlyTheNthHit) {
  ScopedFaultPlan plan(FaultPlan().Fail("site.a", 3));
  EXPECT_NO_THROW(FaultInjector::Hit("site.a"));
  EXPECT_NO_THROW(FaultInjector::Hit("site.a"));
  try {
    FaultInjector::Hit("site.a");
    FAIL() << "third hit must throw";
  } catch (const FaultInjectedError& e) {
    EXPECT_EQ(e.site(), "site.a");
  }
  // One-shot rule: later hits pass again.
  EXPECT_NO_THROW(FaultInjector::Hit("site.a"));
  EXPECT_NO_THROW(FaultInjector::Hit("site.other"));
  EXPECT_EQ(FaultInjector::HitCount("site.a"), 4u);
  EXPECT_EQ(FaultInjector::FiredCount(), 1u);
}

TEST(FaultInjectorTest, RepeatedRuleFiresFromFirstHitOnward) {
  ScopedFaultPlan plan(FaultPlan().FailRepeatedly("site.r", 2));
  EXPECT_NO_THROW(FaultInjector::Hit("site.r"));
  for (int i = 0; i < 3; ++i) {
    EXPECT_THROW(FaultInjector::Hit("site.r"), FaultInjectedError);
  }
  EXPECT_EQ(FaultInjector::FiredCount(), 3u);
}

TEST(FaultInjectorTest, IoSitesReportActionsInsteadOfThrowing) {
  ScopedFaultPlan plan(FaultPlan()
                           .Fail("io.err", 1, FaultAction::kIoError)
                           .Fail("io.torn", 1, FaultAction::kShortWrite)
                           .Fail("io.crash", 1, FaultAction::kThrow));
  auto a = FaultInjector::HitIo("io.err");
  ASSERT_TRUE(a.has_value());
  EXPECT_EQ(*a, FaultAction::kIoError);
  EXPECT_FALSE(FaultInjector::HitIo("io.err").has_value());  // one-shot

  auto b = FaultInjector::HitIo("io.torn");
  ASSERT_TRUE(b.has_value());
  EXPECT_EQ(*b, FaultAction::kShortWrite);

  // kThrow rules throw even through the IO entry point (worker crash).
  EXPECT_THROW(FaultInjector::HitIo("io.crash"), FaultInjectedError);
}

TEST(FaultInjectorTest, SeededPlansAreReproducible) {
  const std::vector<std::string> sites = {"a", "b", "c", "d"};
  std::set<std::pair<std::string, uint64_t>> picks;
  for (uint64_t seed = 0; seed < 32; ++seed) {
    const FaultPlan p1 = FaultPlan::Seeded(seed, sites, FaultAction::kThrow, 50);
    const FaultPlan p2 = FaultPlan::Seeded(seed, sites, FaultAction::kThrow, 50);
    ASSERT_EQ(p1.rules().size(), 1u);
    ASSERT_EQ(p2.rules().size(), 1u);
    EXPECT_EQ(p1.rules()[0].site, p2.rules()[0].site) << seed;
    EXPECT_EQ(p1.rules()[0].hit, p2.rules()[0].hit) << seed;
    EXPECT_GE(p1.rules()[0].hit, 1u);
    EXPECT_LE(p1.rules()[0].hit, 50u);
    picks.emplace(p1.rules()[0].site, p1.rules()[0].hit);
  }
  // Sweeping seeds sweeps (site, timing) pairs, not one fixed point.
  EXPECT_GT(picks.size(), 4u);
}

TEST(FaultInjectorTest, ScopedPlanDisarmsOnScopeExit) {
  {
    ScopedFaultPlan plan(FaultPlan().FailRepeatedly("scoped.site", 1));
    EXPECT_TRUE(FaultInjector::armed());
    EXPECT_THROW(FaultInjector::Hit("scoped.site"), FaultInjectedError);
  }
  EXPECT_FALSE(FaultInjector::armed());
  EXPECT_NO_THROW(MARLIN_FAULT_POINT("scoped.site"));
}

// --- Dead-letter queue units ------------------------------------------------

TEST(DeadLetterQueueTest, EvictsPayloadsButNeverCounts) {
  DeadLetterQueue q(2);
  q.Push(DeadLetterReason::kBadSentence, "l1", 1);
  q.Push(DeadLetterReason::kBadSentence, "l2", 2);
  q.Push(DeadLetterReason::kBadPayload, "l3", 3);  // evicts l1
  q.PushCount(DeadLetterReason::kDegradedDrop, 5);

  const DeadLetterStats s = q.stats();
  EXPECT_EQ(s.enqueued, 3u);
  EXPECT_EQ(s.counted_only, 5u);
  EXPECT_EQ(s.evicted, 1u);
  EXPECT_EQ(s.depth, 2u);
  EXPECT_EQ(s.total(), 8u);
  EXPECT_EQ(s.by_reason[static_cast<size_t>(DeadLetterReason::kBadSentence)],
            2u);
  EXPECT_EQ(s.by_reason[static_cast<size_t>(DeadLetterReason::kDegradedDrop)],
            5u);

  std::vector<DeadLetter> drained;
  EXPECT_EQ(q.Drain(&drained), 2u);
  ASSERT_EQ(drained.size(), 2u);
  EXPECT_EQ(drained[0].payload, "l2");
  EXPECT_EQ(drained[1].payload, "l3");
  // Counters survive the drain; the retained depth does not.
  EXPECT_EQ(q.stats().total(), 8u);
  EXPECT_EQ(q.stats().depth, 0u);
}

// --- LSM store under injected IO faults -------------------------------------

class LsmFaultTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = ::testing::TempDir() + "/marlin_fault_" +
           std::to_string(reinterpret_cast<uintptr_t>(this));
    std::filesystem::remove_all(dir_);
  }
  void TearDown() override {
    FaultInjector::Disarm();  // a failed assertion must not leak a plan
    std::filesystem::remove_all(dir_);
  }
  LsmStore::Options DirOptions() {
    LsmStore::Options opts;
    opts.directory = dir_;
    return opts;
  }
  std::string dir_;
};

TEST_F(LsmFaultTest, WalAppendFailureIsAllOrNothing) {
  auto store = LsmStore::Open(DirOptions());
  ASSERT_TRUE(store.ok());
  ASSERT_TRUE((*store)->Put("k0", "v0").ok());
  {
    ScopedFaultPlan plan(
        FaultPlan().Fail("lsm.wal.append", 1, FaultAction::kIoError));
    EXPECT_FALSE((*store)->Put("k1", "v1").ok());
  }
  // The failed append left neither WAL bytes nor a memtable entry behind.
  EXPECT_FALSE((*store)->Get("k1").ok());
  ASSERT_TRUE((*store)->Put("k2", "v2").ok());
  store->reset();

  auto reopened = LsmStore::Open(DirOptions());
  ASSERT_TRUE(reopened.ok());
  EXPECT_EQ(*(*reopened)->Get("k0"), "v0");
  EXPECT_FALSE((*reopened)->Get("k1").ok());
  EXPECT_EQ(*(*reopened)->Get("k2"), "v2");
  EXPECT_EQ((*reopened)->stats().wal_torn_truncated, 0u);
}

TEST_F(LsmFaultTest, TornWalTailTruncatedAtReopen) {
  auto store = LsmStore::Open(DirOptions());
  ASSERT_TRUE(store.ok());
  ASSERT_TRUE((*store)->Put("k0", "v0").ok());
  {
    // Simulated power loss mid-append: half a frame really lands on disk.
    ScopedFaultPlan plan(
        FaultPlan().Fail("lsm.wal.append", 1, FaultAction::kShortWrite));
    EXPECT_FALSE((*store)->Put("torn", "never-acked").ok());
  }
  store->reset();  // crash: no clean shutdown work happens after this

  auto reopened = LsmStore::Open(DirOptions());
  ASSERT_TRUE(reopened.ok());
  EXPECT_EQ(*(*reopened)->Get("k0"), "v0");
  EXPECT_FALSE((*reopened)->Get("torn").ok());
  EXPECT_GT((*reopened)->stats().wal_torn_truncated, 0u);
  // The truncated log accepts (and preserves) appends again.
  ASSERT_TRUE((*reopened)->Put("k1", "v1").ok());
  reopened->reset();
  auto third = LsmStore::Open(DirOptions());
  ASSERT_TRUE(third.ok());
  EXPECT_EQ(*(*third)->Get("k0"), "v0");
  EXPECT_EQ(*(*third)->Get("k1"), "v1");
}

TEST_F(LsmFaultTest, WalSyncCountsEveryAppend) {
  LsmStore::Options opts = DirOptions();
  opts.wal_sync = true;
  auto store = LsmStore::Open(opts);
  ASSERT_TRUE(store.ok());
  for (int i = 0; i < 5; ++i) {
    ASSERT_TRUE((*store)->Put("k" + std::to_string(i), "v").ok());
  }
  EXPECT_EQ((*store)->stats().wal_syncs, 5u);
}

TEST_F(LsmFaultTest, RunWriteFailureKeepsMemtableAndWal) {
  auto store = LsmStore::Open(DirOptions());
  ASSERT_TRUE(store.ok());
  for (int i = 0; i < 10; ++i) {
    ASSERT_TRUE((*store)->Put("k" + std::to_string(i), "v").ok());
  }
  {
    ScopedFaultPlan plan(
        FaultPlan().Fail("lsm.run.write", 1, FaultAction::kIoError));
    EXPECT_FALSE((*store)->Flush().ok());
  }
  // Nothing lost: the data still lives in memtable + WAL, and the next
  // flush succeeds.
  for (int i = 0; i < 10; ++i) {
    EXPECT_TRUE((*store)->Get("k" + std::to_string(i)).ok()) << i;
  }
  ASSERT_TRUE((*store)->Flush().ok());
  EXPECT_EQ((*store)->NumRuns(), 1u);
  store->reset();
  auto reopened = LsmStore::Open(DirOptions());
  ASSERT_TRUE(reopened.ok());
  for (int i = 0; i < 10; ++i) {
    EXPECT_TRUE((*reopened)->Get("k" + std::to_string(i)).ok()) << i;
  }
}

// --- Supervised sharded pipeline --------------------------------------------

ScenarioOutput MakeScenario(uint64_t seed, bool perfect_reception) {
  static World world = World::Basin();
  ScenarioConfig config;
  config.seed = seed;
  config.duration = 90 * kMillisPerMinute;
  config.transit_vessels = 14;
  config.fishing_vessels = 4;
  config.loiter_vessels = 2;
  config.rendezvous_pairs = 2;
  config.dark_vessels = 2;
  config.spoof_identity_vessels = 1;
  config.spoof_teleport_vessels = 1;
  config.perfect_reception = perfect_reception;
  return GenerateScenario(world, config);
}

const World& SharedWorld() {
  static World world = World::Basin();
  return world;
}

auto EventKey(const DetectedEvent& ev) {
  return std::make_tuple(ev.detected_at, ev.vessel_a, ev.vessel_b,
                         static_cast<int>(ev.type), ev.start, ev.end,
                         ev.zone_id, ev.severity, ev.where.lat, ev.where.lon);
}

void ExpectSameEvents(const std::vector<DetectedEvent>& a,
                      const std::vector<DetectedEvent>& b,
                      bool compare_order) {
  ASSERT_EQ(a.size(), b.size());
  std::vector<decltype(EventKey(a.front()))> ka, kb;
  for (const auto& ev : a) ka.push_back(EventKey(ev));
  for (const auto& ev : b) kb.push_back(EventKey(ev));
  if (!compare_order) {
    std::sort(ka.begin(), ka.end());
    std::sort(kb.begin(), kb.end());
  }
  for (size_t i = 0; i < ka.size(); ++i) {
    EXPECT_EQ(ka[i], kb[i]) << "event mismatch at index " << i;
  }
}

PipelineConfig TestConfig() {
  PipelineConfig pc;
  pc.window_lines = 512;  // several windows per scenario
  return pc;
}

std::vector<DetectedEvent> RunSharded(const PipelineConfig& pc,
                                      size_t num_shards,
                                      const ScenarioOutput& scenario,
                                      PipelineMetrics* metrics_out = nullptr,
                                      std::vector<DeadLetter>* letters_out =
                                          nullptr) {
  ShardedPipeline::Options opts;
  opts.num_shards = num_shards;
  ShardedPipeline sharded(pc, opts, &SharedWorld().zones(), nullptr, nullptr,
                          nullptr);
  auto events = sharded.Run(scenario.nmea);
  if (letters_out != nullptr) sharded.DrainDeadLetters(letters_out);
  if (metrics_out != nullptr) *metrics_out = sharded.metrics();
  return events;
}

// The core restart determinism claim: kill a shard worker mid-window at each
// instrumented site; the restarted worker (rebuilt core + full replay) must
// emit the byte-identical event stream of a run that never crashed.
class SupervisedRestartTest : public ::testing::TestWithParam<const char*> {};

TEST_P(SupervisedRestartTest, RestartReproducesFaultFreeEventStream) {
  const std::string site = GetParam();
  const ScenarioOutput scenario = MakeScenario(941, /*perfect_reception=*/false);
  const PipelineConfig pc = TestConfig();

  MaritimePipeline sequential(pc, &SharedWorld().zones(), nullptr, nullptr,
                              nullptr);
  const auto reference = sequential.Run(scenario.nmea);
  ASSERT_GT(reference.size(), 0u);

  PipelineMetrics metrics;
  std::vector<DetectedEvent> events;
  {
    // Hit 40 lands mid-window for the per-message site; the flush /
    // epoch-close sites reach 40 hits never, so give those hit 1.
    const uint64_t hit = site == "shard.worker.message" ? 40 : 1;
    ScopedFaultPlan plan(FaultPlan().Fail(site, hit));
    events = RunSharded(pc, 2, scenario, &metrics);
  }

  ExpectSameEvents(reference, events, /*compare_order=*/false);
  const SupervisorStats& sup = metrics.health.supervisor;
  EXPECT_EQ(sup.failures, 1u);
  EXPECT_EQ(sup.restarts, 1u);
  EXPECT_EQ(sup.degraded_workers, 0u);
  ASSERT_TRUE(sup.failures_by_site.count(site)) << site;
  EXPECT_EQ(sup.failures_by_site.at(site), 1u);
  EXPECT_GT(sup.windows_replayed, 0u);
}

INSTANTIATE_TEST_SUITE_P(Sites, SupervisedRestartTest,
                         ::testing::Values("shard.worker.message",
                                           "shard.worker.flush",
                                           "shard.worker.close_epoch"));

TEST(SupervisedPipelineTest, ArchiveEpochCrashRestartsAndRepublishes) {
  const ScenarioOutput scenario = MakeScenario(942, /*perfect_reception=*/false);
  PipelineConfig pc = TestConfig();
  pc.archive.enabled = true;  // volatile partitions; replay republishes them

  PipelineMetrics clean_metrics;
  const auto reference = RunSharded(pc, 2, scenario, &clean_metrics);
  ASSERT_GT(reference.size(), 0u);
  ASSERT_GT(clean_metrics.archive.blocks, 0u);

  PipelineMetrics metrics;
  std::vector<DetectedEvent> events;
  {
    ScopedFaultPlan plan(FaultPlan().Fail("archive.close_epoch", 3));
    events = RunSharded(pc, 2, scenario, &metrics);
  }
  ExpectSameEvents(reference, events, /*compare_order=*/false);
  EXPECT_EQ(metrics.health.supervisor.failures, 1u);
  EXPECT_EQ(metrics.health.supervisor.restarts, 1u);
  // The rebuilt partition was repopulated by replay: the merged block count
  // matches the run that never crashed.
  EXPECT_EQ(metrics.archive.blocks, clean_metrics.archive.blocks);
  EXPECT_EQ(metrics.archive.epochs, clean_metrics.archive.epochs);
}

TEST(SupervisedPipelineTest, ParseCrashRejectsChunkAndPipelineSurvives) {
  const ScenarioOutput scenario = MakeScenario(943, /*perfect_reception=*/false);
  const PipelineConfig pc = TestConfig();
  PipelineMetrics metrics;
  std::vector<DetectedEvent> events;
  {
    ScopedFaultPlan plan(FaultPlan().Fail("shard.worker.parse", 100));
    events = RunSharded(pc, 2, scenario, &metrics);
  }
  // Parsing is stateless: the failed chunk's remaining lines are rejected
  // (counted) and the stream continues; no restart, no wedge.
  EXPECT_GT(events.size(), 0u);
  const SupervisorStats& sup = metrics.health.supervisor;
  EXPECT_EQ(sup.failures, 1u);
  EXPECT_EQ(sup.restarts, 0u);
  ASSERT_TRUE(sup.failures_by_site.count("shard.worker.parse"));
}

TEST(SupervisedPipelineTest, TruncatedReplayHistoryDegradesInsteadOfRestarting) {
  const ScenarioOutput scenario = MakeScenario(944, /*perfect_reception=*/false);
  PipelineConfig pc = TestConfig();
  // A buffer far smaller than one window: by the second window the history
  // is truncated and a deterministic rebuild is impossible. Single shard so
  // the Nth global hit is deterministically the Nth window — with pipelined
  // shards the hit could land on a worker still inside its first window.
  pc.supervision.replay_max_messages = 8;
  PipelineMetrics metrics;
  std::vector<DetectedEvent> events;
  {
    ScopedFaultPlan plan(FaultPlan().Fail("shard.worker.close_epoch", 3));
    events = RunSharded(pc, 1, scenario, &metrics);
  }
  const SupervisorStats& sup = metrics.health.supervisor;
  EXPECT_EQ(sup.failures, 1u);
  EXPECT_EQ(sup.restarts, 0u);
  EXPECT_EQ(sup.degraded_workers, 1u);
  // Subsequent windows routed to the degraded shard were counted, not lost
  // silently.
  EXPECT_GT(sup.degraded_dropped_messages, 0u);
  EXPECT_EQ(metrics.health.dead_letter.by_reason[static_cast<size_t>(
                DeadLetterReason::kDegradedDrop)],
            sup.degraded_dropped_messages);
  EXPECT_GE(metrics.health.DataAtRisk(), sup.degraded_dropped_messages);
}

TEST(SupervisedPipelineTest, ExhaustedRestartBudgetDegradesAllWorkers) {
  const ScenarioOutput scenario = MakeScenario(945, /*perfect_reception=*/false);
  PipelineConfig pc = TestConfig();
  pc.supervision.restart_budget = 0;
  PipelineMetrics metrics;
  std::vector<DetectedEvent> events;
  {
    ScopedFaultPlan plan(
        FaultPlan().FailRepeatedly("shard.worker.message", 1));
    events = RunSharded(pc, 2, scenario, &metrics);
  }
  // Every worker died on its first window and degraded; the coordinator
  // completed the stream anyway, with every dropped message on the ledger.
  const SupervisorStats& sup = metrics.health.supervisor;
  EXPECT_EQ(sup.degraded_workers, 2u);
  EXPECT_EQ(sup.restarts, 0u);
  EXPECT_GT(sup.degraded_dropped_messages, 0u);
  EXPECT_GT(metrics.health.dead_letter.counted_only, 0u);
}

TEST(SupervisedPipelineTest, SupervisionOffMatchesSupervisionOn) {
  const ScenarioOutput scenario = MakeScenario(946, /*perfect_reception=*/false);
  PipelineConfig on = TestConfig();
  PipelineConfig off = TestConfig();
  off.supervision.enabled = false;

  PipelineMetrics m_on, m_off;
  const auto ev_on = RunSharded(on, 2, scenario, &m_on);
  const auto ev_off = RunSharded(off, 2, scenario, &m_off);
  ASSERT_GT(ev_on.size(), 0u);
  ExpectSameEvents(ev_on, ev_off, /*compare_order=*/true);
  // With no plan armed the supervision machinery never engages.
  EXPECT_EQ(m_on.health.supervisor.failures, 0u);
  EXPECT_EQ(m_on.health.supervisor.restarts, 0u);
  EXPECT_EQ(m_on.health.supervisor.degraded_workers, 0u);
}

TEST(SupervisedPipelineTest, DeadLetterLedgersMatchSequentialPipeline) {
  const ScenarioOutput scenario = MakeScenario(947, /*perfect_reception=*/false);
  // Salt the stream with unparseable frames so the reject path is exercised
  // deterministically (both pipelines see the identical salted stream).
  std::vector<Event<std::string>> stream = scenario.nmea;
  std::vector<Event<std::string>> salted;
  salted.reserve(stream.size() + stream.size() / 100 + 1);
  for (size_t i = 0; i < stream.size(); ++i) {
    salted.push_back(stream[i]);
    if (i % 100 == 0) {
      Event<std::string> bad = stream[i];  // same timestamps, garbage payload
      bad.payload = "!AIVDM,mangled-frame-" + std::to_string(i);
      salted.push_back(std::move(bad));
    }
  }

  const PipelineConfig pc = TestConfig();
  MaritimePipeline sequential(pc, &SharedWorld().zones(), nullptr, nullptr,
                              nullptr);
  sequential.Run(salted);
  std::vector<DeadLetter> seq_letters;
  sequential.DrainDeadLetters(&seq_letters);
  ASSERT_GT(seq_letters.size(), 0u);

  ShardedPipeline::Options opts;
  opts.num_shards = 3;
  ShardedPipeline sharded(pc, opts, &SharedWorld().zones(), nullptr, nullptr,
                          nullptr);
  sharded.Run(salted);
  std::vector<DeadLetter> shard_letters;
  sharded.DrainDeadLetters(&shard_letters);

  // Line-for-line parity: same rejects, same reasons, same payloads, same
  // order — shard count notwithstanding.
  ASSERT_EQ(seq_letters.size(), shard_letters.size());
  for (size_t i = 0; i < seq_letters.size(); ++i) {
    EXPECT_EQ(seq_letters[i].reason, shard_letters[i].reason) << i;
    EXPECT_EQ(seq_letters[i].payload, shard_letters[i].payload) << i;
    EXPECT_EQ(seq_letters[i].ingest_time, shard_letters[i].ingest_time) << i;
  }
  const DeadLetterStats& a = sequential.metrics().health.dead_letter;
  const DeadLetterStats& b = sharded.metrics().health.dead_letter;
  EXPECT_EQ(a.enqueued, b.enqueued);
  for (size_t r = 0; r < kDeadLetterReasonCount; ++r) {
    EXPECT_EQ(a.by_reason[r], b.by_reason[r]) << r;
  }
}

TEST(SupervisedPipelineTest, PairCellCrashFallsBackToSequentialWindow) {
  const ScenarioOutput scenario = MakeScenario(948, /*perfect_reception=*/false);
  PipelineConfig pc = TestConfig();
  pc.pair_threads = 2;

  MaritimePipeline sequential(pc, &SharedWorld().zones(), nullptr, nullptr,
                              nullptr);
  const auto reference = sequential.Run(scenario.nmea);
  ASSERT_GT(reference.size(), 0u);

  PipelineMetrics metrics;
  std::vector<DetectedEvent> events;
  {
    ScopedFaultPlan plan(FaultPlan().Fail("pair.cell_task", 2));
    events = RunSharded(pc, 2, scenario, &metrics);
  }
  // The failed parallel window was recomputed sequentially — equivalence
  // with the single-threaded pair engine is what makes that fallback sound.
  ExpectSameEvents(reference, events, /*compare_order=*/false);
  EXPECT_GE(metrics.health.supervisor.pair_windows_recovered, 1u);
}

TEST(SupervisedPipelineTest, EnrichmentTransformCrashIsIsolated) {
  const ScenarioOutput scenario = MakeScenario(949, /*perfect_reception=*/false);
  const PipelineConfig pc = TestConfig();

  MaritimePipeline sequential(pc, &SharedWorld().zones(), nullptr, nullptr,
                              nullptr);
  const auto reference = sequential.Run(scenario.nmea);

  PipelineMetrics metrics;
  std::vector<DetectedEvent> events;
  {
    ScopedFaultPlan plan(FaultPlan().Fail("enrichment.transform", 5));
    events = RunSharded(pc, 2, scenario, &metrics);
  }
  // The side-stage loses exactly the crashed item (counted); the event
  // stream — fed by the main path — is untouched, and Finish's delivery
  // barrier still terminates.
  ExpectSameEvents(reference, events, /*compare_order=*/false);
  EXPECT_GE(metrics.health.enrichment_transform_failures, 1u);
  EXPECT_GE(metrics.health.DataAtRisk(), 1u);
}

}  // namespace
}  // namespace marlin
