// Wire-frame codec battery: round-trip properties plus a torture sweep
// (truncation at every byte offset, corruption at every byte offset, zero
// length, max size, oversized length field) asserting the decoder's
// untouched-or-complete contract and exact dead-letter reason codes.

#include "stream/frame.h"

#include <cstdint>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "common/packed_bits.h"
#include "stream/dead_letter.h"
#include "stream/event.h"

namespace marlin {
namespace {

// Deterministic xorshift so every failure reproduces from the seed.
class Rng {
 public:
  explicit Rng(uint64_t seed) : state_(seed ? seed : 1) {}
  uint64_t Next() {
    state_ ^= state_ << 13;
    state_ ^= state_ >> 7;
    state_ ^= state_ << 17;
    return state_;
  }
  uint64_t NextBounded(uint64_t bound) { return Next() % bound; }

 private:
  uint64_t state_;
};

Event<std::string> MakeLineEvent(uint64_t i) {
  return Event<std::string>(
      static_cast<Timestamp>(1700000000000 + i * 7),
      static_cast<Timestamp>(1700000000100 + i * 7), i % 5,
      "!AIVDM,1,1,,A,13HOI:0P0000VOHLCnHQKwvL05Ip,0*23");
}

Event<PackedRecord> MakePackedEvent(Rng* rng, uint64_t i) {
  PackedRecord record;
  record.received_at = static_cast<Timestamp>(1700000000000 + i);
  const int bits = 1 + static_cast<int>(rng->NextBounded(300));
  for (int remaining = bits; remaining > 0;) {
    const int width = remaining >= 64 ? 64 : remaining;
    uint64_t value = rng->Next();
    if (width < 64) value &= (uint64_t{1} << width) - 1;
    record.bits.AppendBits(value, width);
    remaining -= width;
  }
  return Event<PackedRecord>(static_cast<Timestamp>(1700000001000 + i),
                             static_cast<Timestamp>(1700000001200 + i),
                             i % 3, std::move(record));
}

uint64_t TotalFaultBytes(const std::vector<FrameDecoder::Fault>& faults) {
  uint64_t total = 0;
  for (const auto& fault : faults) total += fault.bytes;
  return total;
}

TEST(FrameTest, LineFrameRoundTrip) {
  const Event<std::string> ev = MakeLineEvent(3);
  std::string wire;
  AppendLineFrame(ev, &wire);
  EXPECT_EQ(wire.size(), kFrameOverheadBytes + 24 + ev.payload.size());

  FrameDecoder decoder;
  decoder.Feed(wire);
  DecodedFrame frame;
  ASSERT_TRUE(decoder.Next(&frame));
  EXPECT_EQ(frame.kind, FrameKind::kLine);
  EXPECT_EQ(frame.line.event_time, ev.event_time);
  EXPECT_EQ(frame.line.ingest_time, ev.ingest_time);
  EXPECT_EQ(frame.line.source_id, ev.source_id);
  EXPECT_EQ(frame.line.payload, ev.payload);
  EXPECT_FALSE(decoder.Next(&frame));
  decoder.Finish();
  EXPECT_TRUE(decoder.TakeFaults().empty());
  EXPECT_EQ(decoder.stats().frames, 1u);
}

TEST(FrameTest, PackedFrameRoundTripPreservesEveryBit) {
  Rng rng(42);
  for (uint64_t i = 0; i < 200; ++i) {
    const Event<PackedRecord> ev = MakePackedEvent(&rng, i);
    std::string wire;
    AppendPackedFrame(ev, &wire);
    FrameDecoder decoder;
    decoder.Feed(wire);
    DecodedFrame frame;
    ASSERT_TRUE(decoder.Next(&frame)) << "record " << i;
    EXPECT_EQ(frame.kind, FrameKind::kPacked);
    EXPECT_EQ(frame.packed.event_time, ev.event_time);
    EXPECT_EQ(frame.packed.ingest_time, ev.ingest_time);
    EXPECT_EQ(frame.packed.source_id, ev.source_id);
    EXPECT_TRUE(frame.packed.payload == ev.payload) << "record " << i;
    decoder.Finish();
    EXPECT_TRUE(decoder.TakeFaults().empty());
  }
}

TEST(FrameTest, EmptyLinePayloadRoundTrips) {
  Event<std::string> ev(5, 6, 7, "");
  std::string wire;
  AppendLineFrame(ev, &wire);
  FrameDecoder decoder;
  decoder.Feed(wire);
  DecodedFrame frame;
  ASSERT_TRUE(decoder.Next(&frame));
  EXPECT_EQ(frame.line.payload, "");
}

TEST(FrameTest, EmptyPackedBitsRoundTrips) {
  Event<PackedRecord> ev;
  ev.event_time = 1;
  ev.ingest_time = 2;
  ev.source_id = 3;
  ev.payload.received_at = 4;
  std::string wire;
  AppendPackedFrame(ev, &wire);
  FrameDecoder decoder;
  decoder.Feed(wire);
  DecodedFrame frame;
  ASSERT_TRUE(decoder.Next(&frame));
  EXPECT_EQ(frame.packed.payload.bits.size_bits(), 0u);
  EXPECT_EQ(frame.packed.payload.received_at, 4);
}

TEST(FrameTest, MaxSizeFrameRoundTrips) {
  Event<std::string> ev(11, 12, 13,
                        std::string(kMaxFramePayload - 24, 'x'));
  std::string wire;
  AppendLineFrame(ev, &wire);
  EXPECT_EQ(wire.size(), kFrameOverheadBytes + kMaxFramePayload);
  FrameDecoder decoder;
  decoder.Feed(wire);
  DecodedFrame frame;
  ASSERT_TRUE(decoder.Next(&frame));
  EXPECT_EQ(frame.line.payload.size(), kMaxFramePayload - 24);
  decoder.Finish();
  EXPECT_TRUE(decoder.TakeFaults().empty());
}

// The round-trip property under arbitrary transport chunking: a stream of
// mixed frames split at random byte boundaries decodes to the identical
// record sequence regardless of the split pattern.
TEST(FrameTest, ChunkedDeliveryIsSplitOblivious) {
  Rng rng(1234);
  std::vector<Event<std::string>> lines;
  std::vector<Event<PackedRecord>> packed;
  std::string wire;
  std::vector<FrameKind> order;
  for (uint64_t i = 0; i < 60; ++i) {
    if (rng.NextBounded(2) == 0) {
      lines.push_back(MakeLineEvent(i));
      AppendLineFrame(lines.back(), &wire);
      order.push_back(FrameKind::kLine);
    } else {
      packed.push_back(MakePackedEvent(&rng, i));
      AppendPackedFrame(packed.back(), &wire);
      order.push_back(FrameKind::kPacked);
    }
  }

  for (int trial = 0; trial < 20; ++trial) {
    FrameDecoder decoder;
    size_t line_i = 0, packed_i = 0, order_i = 0;
    size_t offset = 0;
    DecodedFrame frame;
    auto drain = [&] {
      while (decoder.Next(&frame)) {
        ASSERT_LT(order_i, order.size());
        ASSERT_EQ(frame.kind, order[order_i++]);
        if (frame.kind == FrameKind::kLine) {
          EXPECT_EQ(frame.line.payload, lines[line_i].payload);
          EXPECT_EQ(frame.line.event_time, lines[line_i].event_time);
          ++line_i;
        } else {
          EXPECT_TRUE(frame.packed.payload == packed[packed_i].payload);
          ++packed_i;
        }
      }
    };
    while (offset < wire.size()) {
      // Chunk sizes biased tiny so every header/CRC straddle happens.
      const size_t n =
          std::min<size_t>(1 + rng.NextBounded(13), wire.size() - offset);
      decoder.Feed(std::string_view(wire).substr(offset, n));
      offset += n;
      drain();
    }
    decoder.Finish();
    EXPECT_EQ(line_i, lines.size()) << "trial " << trial;
    EXPECT_EQ(packed_i, packed.size()) << "trial " << trial;
    EXPECT_TRUE(decoder.TakeFaults().empty()) << "trial " << trial;
  }
}

// Torture: truncate the wire at EVERY byte offset. The decoder must
// surface nothing (untouched-or-complete) and, at end-of-stream, account
// the partial bytes as exactly one kFrameCorrupt fault.
TEST(FrameTest, TruncationAtEveryOffsetYieldsOneCorruptFault) {
  const Event<std::string> ev = MakeLineEvent(9);
  std::string wire;
  AppendLineFrame(ev, &wire);
  for (size_t cut = 0; cut < wire.size(); ++cut) {
    FrameDecoder decoder;
    decoder.Feed(std::string_view(wire).substr(0, cut));
    DecodedFrame frame;
    EXPECT_FALSE(decoder.Next(&frame)) << "cut " << cut;
    decoder.Finish();
    const auto faults = decoder.TakeFaults();
    if (cut == 0) {
      EXPECT_TRUE(faults.empty());
    } else {
      ASSERT_EQ(faults.size(), 1u) << "cut " << cut;
      EXPECT_EQ(faults[0].reason, DeadLetterReason::kFrameCorrupt);
      EXPECT_EQ(faults[0].bytes, cut);
    }
    EXPECT_EQ(decoder.stats().frames, 0u);
  }
}

// Torture: corrupt EVERY byte offset in turn, with a pristine frame
// appended after the damaged one. The decoder must never surface a
// damaged frame; whether the trailing frame survives depends on where the
// damage landed (a corrupted *length field* can swallow the next frame
// while resynchronising — inherent to length-prefixed framing), but every
// byte must be accounted either to a surfaced frame or to a fault.
TEST(FrameTest, CorruptionAtEveryOffsetNeverSurfacesDamage) {
  const Event<std::string> ev = MakeLineEvent(21);
  std::string wire;
  AppendLineFrame(ev, &wire);
  std::string clean;
  AppendLineFrame(MakeLineEvent(22), &clean);

  for (size_t at = 0; at < wire.size(); ++at) {
    std::string damaged = wire;
    damaged[at] = static_cast<char>(damaged[at] ^ 0x5A);
    FrameDecoder decoder;
    decoder.Feed(damaged);
    decoder.Feed(clean);
    DecodedFrame frame;
    size_t surfaced = 0;
    while (decoder.Next(&frame)) {
      ++surfaced;
      // Only the pristine trailing frame may ever come out.
      EXPECT_EQ(frame.line.payload, MakeLineEvent(22).payload)
          << "offset " << at;
      EXPECT_EQ(frame.line.event_time, MakeLineEvent(22).event_time)
          << "offset " << at;
    }
    EXPECT_LE(surfaced, 1u) << "offset " << at;
    decoder.Finish();
    const auto faults = decoder.TakeFaults();
    EXPECT_GE(faults.size(), 1u) << "offset " << at;
    // Conservation: every fed byte is either consumed by the surfaced
    // clean frame or skipped into a fault — nothing vanishes silently.
    EXPECT_EQ(TotalFaultBytes(faults) + surfaced * clean.size(),
              wire.size() + clean.size())
        << "offset " << at;
    EXPECT_EQ(decoder.stats().frames, surfaced) << "offset " << at;
    // Damage anywhere outside the length field keeps the stream in sync.
    if (at < 4 || at >= 8) {
      EXPECT_EQ(surfaced, 1u) << "offset " << at;
    }
  }
}

TEST(FrameTest, CorruptedCrcIsOneCorruptFault) {
  const Event<std::string> ev = MakeLineEvent(33);
  std::string wire;
  AppendLineFrame(ev, &wire);
  wire.back() = static_cast<char>(wire.back() ^ 0xFF);
  FrameDecoder decoder;
  decoder.Feed(wire);
  DecodedFrame frame;
  EXPECT_FALSE(decoder.Next(&frame));
  const auto faults = decoder.TakeFaults();
  ASSERT_EQ(faults.size(), 1u);
  EXPECT_EQ(faults[0].reason, DeadLetterReason::kFrameCorrupt);
  EXPECT_EQ(faults[0].bytes, wire.size());
  EXPECT_EQ(decoder.stats().corrupt, 1u);
}

// A structurally hostile length field (beyond the cap) must not make the
// decoder buffer or seek on its say-so: the region becomes exactly one
// kFrameOversized fault and a following frame still decodes.
TEST(FrameTest, OversizedLengthFieldIsOneOversizedFault) {
  std::string wire;
  wire.push_back(static_cast<char>(kFrameMagic0));
  wire.push_back(static_cast<char>(kFrameMagic1));
  wire.push_back(static_cast<char>(kFrameVersion));
  wire.push_back(static_cast<char>(FrameKind::kLine));
  frame_internal::AppendU32LE(&wire,
                              static_cast<uint32_t>(kMaxFramePayload + 1));
  wire.append("garbage-after-hostile-header");
  const size_t hostile_bytes = wire.size();
  std::string clean;
  AppendLineFrame(MakeLineEvent(44), &clean);
  wire += clean;

  FrameDecoder decoder;
  decoder.Feed(wire);
  DecodedFrame frame;
  ASSERT_TRUE(decoder.Next(&frame));
  EXPECT_EQ(frame.line.payload, MakeLineEvent(44).payload);
  EXPECT_FALSE(decoder.Next(&frame));
  const auto faults = decoder.TakeFaults();
  ASSERT_EQ(faults.size(), 1u);
  EXPECT_EQ(faults[0].reason, DeadLetterReason::kFrameOversized);
  EXPECT_EQ(faults[0].bytes, hostile_bytes);
  EXPECT_EQ(decoder.stats().oversized, 1u);
  EXPECT_EQ(decoder.stats().corrupt, 0u);
}

// A zero-length payload cannot hold the 24-byte envelope: CRC-clean but
// structurally invalid, consumed whole as one corrupt fault.
TEST(FrameTest, ZeroLengthPayloadFrameIsOneCorruptFault) {
  std::string wire;
  const size_t start = wire.size();
  frame_internal::BeginFrame(&wire, FrameKind::kLine);
  frame_internal::SealFrame(&wire, start);
  ASSERT_EQ(wire.size(), kFrameOverheadBytes);

  FrameDecoder decoder;
  decoder.Feed(wire);
  DecodedFrame frame;
  EXPECT_FALSE(decoder.Next(&frame));
  const auto faults = decoder.TakeFaults();
  ASSERT_EQ(faults.size(), 1u);
  EXPECT_EQ(faults[0].reason, DeadLetterReason::kFrameCorrupt);
  EXPECT_EQ(faults[0].bytes, kFrameOverheadBytes);
}

// Leading garbage before a valid frame: skipped to the magic as one
// corrupt region, then the frame decodes normally.
TEST(FrameTest, LeadingGarbageIsOneRegionThenFrameDecodes) {
  std::string wire = "some unframed noise\r\n";
  const size_t noise = wire.size();
  AppendLineFrame(MakeLineEvent(55), &wire);
  FrameDecoder decoder;
  decoder.Feed(wire);
  DecodedFrame frame;
  ASSERT_TRUE(decoder.Next(&frame));
  EXPECT_EQ(frame.line.payload, MakeLineEvent(55).payload);
  const auto faults = decoder.TakeFaults();
  ASSERT_EQ(faults.size(), 1u);
  EXPECT_EQ(faults[0].reason, DeadLetterReason::kFrameCorrupt);
  EXPECT_EQ(faults[0].bytes, noise);
}

// A packed frame whose tail word has set bits below the declared bit count
// violates the tail-zero invariant and must be rejected (CRC-clean but
// structurally invalid), keeping decode bijective with encode.
TEST(FrameTest, PackedTailBitsBelowCountAreRejected) {
  Rng rng(7);
  Event<PackedRecord> ev = MakePackedEvent(&rng, 0);
  // Force a partial tail word.
  ev.payload.bits = PackedBits();
  ev.payload.bits.AppendBits(0x2F, 6);
  std::string wire;
  AppendPackedFrame(ev, &wire);
  // Set a bit below the 6 declared bits (inside the tail word's low bits),
  // then re-seal the CRC so only the structural check can catch it.
  const size_t word_off = kFrameHeaderBytes + 24 + 12;
  wire[word_off] = static_cast<char>(wire[word_off] | 0x01);
  const uint32_t crc = Crc32c(wire.data() + 2, wire.size() - 2 - 4);
  wire.resize(wire.size() - 4);
  frame_internal::AppendU32LE(&wire, crc);

  FrameDecoder decoder;
  decoder.Feed(wire);
  DecodedFrame frame;
  EXPECT_FALSE(decoder.Next(&frame));
  const auto faults = decoder.TakeFaults();
  ASSERT_EQ(faults.size(), 1u);
  EXPECT_EQ(faults[0].reason, DeadLetterReason::kFrameCorrupt);
}

}  // namespace
}  // namespace marlin
