// Robustness & property tests: fuzzed decoder input, storage-engine torture
// (random crash points), and parameterized invariant sweeps across modules.
//
// These target the paper's veracity theme (§1): every parser and store must
// survive arbitrarily corrupted input without crashing, and recover exactly
// the data that was durably written.

#include <gtest/gtest.h>

#include <cmath>
#include <filesystem>
#include <fstream>
#include <map>
#include <set>
#include <string>
#include <vector>

#include "ais/codec.h"
#include "ais/messages.h"
#include "ais/sixbit.h"
#include "common/fault.h"
#include "common/rng.h"
#include "common/units.h"
#include "core/reconstruction.h"
#include "core/synopses.h"
#include "geo/geodesy.h"
#include "storage/archive.h"
#include "storage/lsm_store.h"
#include "stream/reorder.h"

namespace marlin {
namespace {

// --- Decoder fuzzing -------------------------------------------------------

TEST(DecoderFuzzTest, RandomGarbageNeverCrashes) {
  AisDecoder decoder;
  Rng rng(0xF00D);
  for (int i = 0; i < 20000; ++i) {
    std::string line;
    const size_t len = rng.NextBounded(120);
    for (size_t j = 0; j < len; ++j) {
      line.push_back(static_cast<char>(rng.NextBounded(256)));
    }
    decoder.Decode(line, static_cast<Timestamp>(i));
  }
  EXPECT_EQ(decoder.stats().lines_in, 20000u);
  // Virtually everything must be rejected cleanly.
  EXPECT_LT(decoder.stats().messages_out, 5u);
}

TEST(DecoderFuzzTest, MutatedValidSentencesNeverCrash) {
  // Start from valid sentences, flip bytes: checksum must catch nearly all
  // mutations; none may crash or yield out-of-range positions.
  AisEncoder encoder;
  PositionReport pr;
  pr.message_type = 1;
  pr.mmsi = 228123456;
  pr.position = GeoPoint(43.1, 5.2);
  pr.sog_knots = 11.0;
  pr.cog_deg = 90.0;
  const auto lines = encoder.Encode(AisMessage(pr));
  ASSERT_TRUE(lines.ok());
  const std::string base = (*lines)[0];
  AisDecoder decoder;
  Rng rng(0xBEEF);
  int accepted = 0;
  for (int i = 0; i < 20000; ++i) {
    std::string mutated = base;
    const int flips = 1 + static_cast<int>(rng.NextBounded(3));
    for (int f = 0; f < flips; ++f) {
      mutated[rng.NextBounded(mutated.size())] =
          static_cast<char>(rng.NextBounded(256));
    }
    const auto msg = decoder.Decode(mutated, 0);
    if (msg.has_value()) {
      ++accepted;
      if (const auto* p = std::get_if<PositionReport>(&*msg)) {
        if (p->HasPosition()) {
          EXPECT_GE(p->position.lat, -90.0);
          EXPECT_LE(p->position.lat, 90.0);
        }
      }
    }
  }
  // The 8-bit checksum lets ~1/256 of mutations through; they decode as
  // garbage-but-valid bitfields, which is exactly real receiver behaviour.
  EXPECT_LT(accepted, 20000 / 64);
}

TEST(DecoderFuzzTest, TruncatedTagBlocksRejected) {
  AisDecoder decoder;
  EXPECT_FALSE(decoder.Decode("\\c:17000000", 0).has_value());
  EXPECT_FALSE(decoder.Decode("\\c:17000000*XX\\!AIVDM,junk", 0).has_value());
  EXPECT_FALSE(decoder.Decode("\\", 0).has_value());
  EXPECT_GE(decoder.stats().bad_sentences, 3u);
}

TEST(BitFuzzTest, RandomPayloadDecodeIsTotal) {
  Rng rng(0xCAFE);
  for (int i = 0; i < 5000; ++i) {
    std::vector<uint8_t> bits;
    const int n = 38 + static_cast<int>(rng.NextBounded(500));
    for (int b = 0; b < n; ++b) {
      bits.push_back(static_cast<uint8_t>(rng.NextBounded(2)));
    }
    // Must either decode or fail with a Status — never crash or hang.
    (void)DecodeMessageBits(bits);
  }
}

// --- LSM torture -----------------------------------------------------------

class LsmTortureTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = ::testing::TempDir() + "/marlin_torture_" +
           std::to_string(reinterpret_cast<uintptr_t>(this));
    std::filesystem::remove_all(dir_);
  }
  void TearDown() override { std::filesystem::remove_all(dir_); }
  std::string dir_;
};

TEST_F(LsmTortureTest, RepeatedReopenPreservesEverything) {
  // Write in bursts with reopen (simulated restart) after every burst;
  // every durably written key must always be readable afterwards.
  std::map<std::string, std::string> reference;
  Rng rng(0xD15C);
  for (int session = 0; session < 8; ++session) {
    LsmStore::Options opts;
    opts.directory = dir_;
    opts.memtable_bytes_limit = 2048;  // force flushes mid-session
    opts.max_runs = 3;                 // force compactions
    auto store = LsmStore::Open(opts);
    ASSERT_TRUE(store.ok()) << session;
    for (int i = 0; i < 300; ++i) {
      const std::string key = "k" + std::to_string(rng.NextBounded(150));
      if (rng.Bernoulli(0.2)) {
        ASSERT_TRUE((*store)->Delete(key).ok());
        reference.erase(key);
      } else {
        const std::string value =
            "s" + std::to_string(session) + "v" + std::to_string(i);
        ASSERT_TRUE((*store)->Put(key, value).ok());
        reference[key] = value;
      }
    }
    // Half the sessions end without an explicit flush: WAL must carry them.
    if (session % 2 == 0) ASSERT_TRUE((*store)->Flush().ok());
  }
  auto store = LsmStore::Open([this] {
    LsmStore::Options opts;
    opts.directory = dir_;
    return opts;
  }());
  ASSERT_TRUE(store.ok());
  for (const auto& [k, v] : reference) {
    auto got = (*store)->Get(k);
    ASSERT_TRUE(got.ok()) << k;
    EXPECT_EQ(*got, v) << k;
  }
}

TEST_F(LsmTortureTest, CorruptRunFileQuarantinedAtOpen) {
  LsmStore::Options opts;
  opts.directory = dir_;
  {
    auto store = LsmStore::Open(opts);
    ASSERT_TRUE((*store)->Put("key", "value").ok());
    ASSERT_TRUE((*store)->Flush().ok());
  }
  // Corrupt a byte in the middle of the run file.
  for (const auto& entry : std::filesystem::directory_iterator(dir_)) {
    if (entry.path().extension() != ".sst") continue;
    std::fstream f(entry.path(), std::ios::in | std::ios::out |
                                     std::ios::binary);
    f.seekp(static_cast<std::streamoff>(entry.file_size() / 2));
    f.put('\x7F');
  }
  // Corruption is never read back as data — but neither does it brick the
  // store: the bad run is moved aside (bytes preserved for forensics) and
  // counted, and the store opens with what remains.
  auto reopened = LsmStore::Open(opts);
  ASSERT_TRUE(reopened.ok());
  EXPECT_EQ((*reopened)->stats().runs_quarantined, 1u);
  EXPECT_EQ((*reopened)->NumRuns(), 0u);
  EXPECT_FALSE((*reopened)->Get("key").ok());
  size_t quarantined_files = 0;
  for (const auto& entry :
       std::filesystem::directory_iterator(dir_ + "/quarantine")) {
    (void)entry;
    ++quarantined_files;
  }
  EXPECT_EQ(quarantined_files, 1u);
  // The quarantined file's number is not reused: new writes flush cleanly.
  ASSERT_TRUE((*reopened)->Put("key2", "value2").ok());
  ASSERT_TRUE((*reopened)->Flush().ok());
  EXPECT_EQ(*(*reopened)->Get("key2"), "value2");
}

// --- Archive crash-at-every-site torture ------------------------------------

class ArchiveTortureTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = ::testing::TempDir() + "/marlin_archive_torture_" +
           std::to_string(reinterpret_cast<uintptr_t>(this));
    std::filesystem::remove_all(dir_);
  }
  void TearDown() override {
    FaultInjector::Disarm();
    std::filesystem::remove_all(dir_);
  }
  std::string dir_;
};

struct TorturePoint {
  int64_t lat_e7 = 0;
  int64_t lon_e7 = 0;
  float sog = 0.0f;
  float cog = 0.0f;
};

// The archive stores coordinates as 1e-7-degree fixed point; quantizing both
// sides makes "byte-identical" comparable without float-noise caveats.
TorturePoint Quantized(const TrajectoryPoint& p) {
  return TorturePoint{std::llround(p.position.lat * 1e7),
                      std::llround(p.position.lon * 1e7), p.sog_mps, p.cog_deg};
}

TEST_F(ArchiveTortureTest, CrashAtEverySiteRecoversExactlyTheDurablePrefix) {
  // Every fault site on the Stage → CloseEpoch → LSM path, killed at several
  // hit offsets. Each armed run ingests multi-vessel epochs until the fault
  // fires (= the process crashes there), then the archive is reopened with
  // self-recovery: the recovered rows must be (a) a subset of everything the
  // dying run attempted, (b) a superset of everything it acked (epochs whose
  // CloseEpoch returned OK before the crash), and (c) byte-identical to the
  // fault-free values, row for row.
  struct SiteCase {
    const char* site;
    FaultAction action;
  };
  const std::vector<SiteCase> cases = {
      {"archive.stage", FaultAction::kThrow},
      {"archive.close_epoch", FaultAction::kThrow},
      {"archive.snapshot.publish", FaultAction::kThrow},
      {"archive.close_epoch.write", FaultAction::kIoError},
      {"lsm.wal.append", FaultAction::kIoError},
      {"lsm.wal.append", FaultAction::kShortWrite},
      {"lsm.run.write", FaultAction::kIoError},
      {"lsm.run.write", FaultAction::kShortWrite},
      {"lsm.run.rename", FaultAction::kIoError},
      {"lsm.compact", FaultAction::kIoError},
  };
  const std::vector<uint64_t> hits = {1, 4, 11};

  constexpr int kEpochs = 6;
  constexpr int kVessels = 5;
  constexpr int kPointsPerEpoch = 8;
  constexpr Timestamp kBase = 1700000000000;

  ArchiveOptions opts;
  opts.enabled = true;
  opts.memtable_bytes_limit = 2048;  // several flushes across the run
  opts.max_runs = 2;                 // and at least one compaction
  opts.background_compaction = false;
  opts.recover_on_open = true;

  int case_index = 0;
  for (const SiteCase& sc : cases) {
    for (const uint64_t hit : hits) {
      const std::string sub =
          dir_ + "/case_" + std::to_string(case_index++);
      SCOPED_TRACE(std::string(sc.site) + " hit " + std::to_string(hit));

      // (mmsi, t) → expected values for every point the run attempted to
      // stage; `acked` holds the keys of epochs whose CloseEpoch acked.
      std::map<std::pair<uint32_t, Timestamp>, TorturePoint> attempted;
      std::set<std::pair<uint32_t, Timestamp>> acked;
      {
        ScopedFaultPlan plan(FaultPlan().Fail(sc.site, hit, sc.action));
        auto archive = std::make_unique<ShardArchive>(opts, sub);
        std::vector<std::pair<uint32_t, Timestamp>> pending;
        bool crashed = false;
        for (int e = 0; e < kEpochs && !crashed; ++e) {
          for (int v = 0; v < kVessels && !crashed; ++v) {
            const uint32_t mmsi = 100 + static_cast<uint32_t>(v);
            for (int i = 0; i < kPointsPerEpoch; ++i) {
              const int k = e * kPointsPerEpoch + i;
              TrajectoryPoint p;
              p.t = kBase + static_cast<Timestamp>(k) * 1000;
              p.position.lat = 40.0 + v * 0.01 + k * 1e-4;
              p.position.lon = 5.0 + v * 0.01 + k * 1e-4;
              p.sog_mps = 0.5f * static_cast<float>(k);
              p.cog_deg = static_cast<float>((k * 10) % 360);
              try {
                archive->Stage(mmsi, p);
              } catch (const FaultInjectedError&) {
                crashed = true;  // point never staged — not attempted
                break;
              }
              attempted[{mmsi, p.t}] = Quantized(p);
              pending.emplace_back(mmsi, p.t);
            }
          }
          if (crashed) break;
          try {
            const Status s = archive->CloseEpoch();
            if (!s.ok()) {
              crashed = true;  // durability failure: pending stays at-risk
            } else {
              for (const auto& key : pending) acked.insert(key);
              pending.clear();
            }
          } catch (const FaultInjectedError&) {
            crashed = true;
          }
        }
        // Crash: the archive dies with whatever it made durable.
      }

      ShardArchive recovered(opts, sub);
      std::map<std::pair<uint32_t, Timestamp>, TorturePoint> got;
      for (int v = 0; v < kVessels; ++v) {
        const uint32_t mmsi = 100 + static_cast<uint32_t>(v);
        std::vector<TrajectoryPoint> rows;
        ASSERT_TRUE(
            recovered.LoadVesselRange(mmsi, 0, kMaxTimestamp, &rows).ok());
        for (const TrajectoryPoint& p : rows) {
          EXPECT_TRUE(got.emplace(std::make_pair(mmsi, p.t), Quantized(p))
                          .second)
              << "duplicate recovered row for mmsi " << mmsi << " t " << p.t;
        }
      }
      // (a) subset of attempted, (c) byte-identical values.
      for (const auto& [key, val] : got) {
        auto it = attempted.find(key);
        ASSERT_NE(it, attempted.end())
            << "recovered a row that was never staged";
        EXPECT_EQ(val.lat_e7, it->second.lat_e7);
        EXPECT_EQ(val.lon_e7, it->second.lon_e7);
        EXPECT_EQ(val.sog, it->second.sog);
        EXPECT_EQ(val.cog, it->second.cog);
      }
      // (b) superset of the acked prefix.
      for (const auto& key : acked) {
        EXPECT_TRUE(got.count(key))
            << "acked row lost: mmsi " << key.first << " t " << key.second;
      }
      // Query determinism: a second recovery serves the identical rows.
      ShardArchive again(opts, sub);
      for (int v = 0; v < kVessels; ++v) {
        const uint32_t mmsi = 100 + static_cast<uint32_t>(v);
        std::vector<TrajectoryPoint> a, b;
        ASSERT_TRUE(recovered.LoadVesselRange(mmsi, 0, kMaxTimestamp, &a).ok());
        ASSERT_TRUE(again.LoadVesselRange(mmsi, 0, kMaxTimestamp, &b).ok());
        ASSERT_EQ(a.size(), b.size());
        for (size_t i = 0; i < a.size(); ++i) {
          EXPECT_EQ(a[i].t, b[i].t);
          EXPECT_EQ(Quantized(a[i]).lat_e7, Quantized(b[i]).lat_e7);
          EXPECT_EQ(Quantized(a[i]).lon_e7, Quantized(b[i]).lon_e7);
        }
      }
      EXPECT_EQ(again.stats().recovered_blocks,
                recovered.stats().recovered_blocks);
    }
  }
}

// --- Reorder-buffer property sweep ----------------------------------------

class ReorderPropertyTest
    : public ::testing::TestWithParam<std::tuple<int, int>> {};

TEST_P(ReorderPropertyTest, OutputAlwaysSortedAndComplete) {
  const auto [max_delay_ms, jitter_ms] = GetParam();
  ReorderBuffer<int> buffer(ReorderBuffer<int>::Options{
      static_cast<DurationMs>(max_delay_ms), false});
  Rng rng(991 + max_delay_ms + jitter_ms);
  std::vector<Event<int>> out;
  const int n = 2000;
  for (int i = 0; i < n; ++i) {
    const Timestamp jittered =
        i * 50 + static_cast<Timestamp>(rng.NextBounded(jitter_ms + 1));
    buffer.Push(Event<int>(jittered, i), &out);
  }
  buffer.Flush(&out);
  // Property 1: event-time sorted output.
  for (size_t i = 1; i < out.size(); ++i) {
    EXPECT_LE(out[i - 1].event_time, out[i].event_time);
  }
  // Property 2: conservation — emitted + dropped == pushed.
  EXPECT_EQ(out.size() + buffer.stats().dropped_late,
            static_cast<size_t>(n));
  // Property 3: when the delay bound covers the jitter, nothing is dropped.
  if (max_delay_ms > jitter_ms) {
    EXPECT_EQ(buffer.stats().dropped_late, 0u);
  }
}

INSTANTIATE_TEST_SUITE_P(
    DelayJitterMatrix, ReorderPropertyTest,
    ::testing::Values(std::make_tuple(100, 0), std::make_tuple(100, 50),
                      std::make_tuple(100, 99), std::make_tuple(100, 500),
                      std::make_tuple(1000, 500),
                      std::make_tuple(5000, 4999)));

// --- Synopsis property sweep -------------------------------------------

class SynopsisPropertyTest : public ::testing::TestWithParam<int> {};

TEST_P(SynopsisPropertyTest, CompressionMonotoneAndLossBounded) {
  // Property: larger deviation bounds never *increase* the synopsis size,
  // and the first/last points always survive.
  const int bound_m = GetParam();
  Rng rng(1313);
  Trajectory traj;
  traj.mmsi = 9;
  GeoPoint pos(40.0, 4.0);
  double course = 45.0;
  for (int i = 0; i < 400; ++i) {
    TrajectoryPoint p;
    p.t = 1700000000000 + static_cast<Timestamp>(i) * 10000;
    p.position = pos;
    p.sog_mps = 7.0f;
    p.cog_deg = static_cast<float>(NormalizeDegrees(course));
    traj.points.push_back(p);
    course += rng.Uniform(-2.0, 2.0);
    pos = Destination(pos, course, 70.0);
  }
  SynopsisEngine::Options tight_opts;
  tight_opts.deviation_threshold_m = bound_m;
  SynopsisEngine tight(tight_opts);
  const auto tight_synopsis = tight.CompressTrajectory(traj);

  SynopsisEngine::Options loose_opts;
  loose_opts.deviation_threshold_m = bound_m * 2.0;
  SynopsisEngine loose(loose_opts);
  const auto loose_synopsis = loose.CompressTrajectory(traj);

  EXPECT_LE(loose_synopsis.size(), tight_synopsis.size());
  ASSERT_GE(tight_synopsis.size(), 2u);
  EXPECT_EQ(tight_synopsis.front().point.t, traj.points.front().t);
  EXPECT_EQ(tight_synopsis.back().point.t, traj.points.back().t);
  // Reconstruction error scales with the bound but stays finite and sane.
  const TrajectoryError err =
      ComputeSedError(traj, ReconstructFromSynopsis(9, tight_synopsis));
  EXPECT_LT(err.mean_m, bound_m * 2.0);
}

INSTANTIATE_TEST_SUITE_P(Bounds, SynopsisPropertyTest,
                         ::testing::Values(20, 40, 80, 160, 320));

// --- Reconstruction conservation property -----------------------------------

class ReconstructionPropertyTest : public ::testing::TestWithParam<double> {};

TEST_P(ReconstructionPropertyTest, EveryReportAccountedFor) {
  // Property: reports_in == points_out + duplicates + stale + outliers +
  // invalid + late_dropped + still-buffered (0 after flush).
  const double shuffle_prob = GetParam();
  TrajectoryReconstructor recon;
  Rng rng(777);
  std::vector<ReconstructedPoint> points;
  std::vector<RejectedReport> rejected;
  const Timestamp t0 = 1700000000000;
  std::vector<PositionReport> reports;
  for (int i = 0; i < 500; ++i) {
    PositionReport pr;
    pr.message_type = 1;
    pr.mmsi = 228000000 + static_cast<Mmsi>(i % 7);
    pr.position = Destination(GeoPoint(40, 5), 30.0 * (i % 7), 40.0 * i);
    pr.sog_knots = 8.0;
    pr.cog_deg = 30.0 * (i % 7);
    const Timestamp t = t0 + i * 10000;
    pr.utc_second = static_cast<int>((t / 1000) % 60);
    pr.received_at = t + 500;
    reports.push_back(pr);
    if (rng.Bernoulli(0.1)) reports.push_back(pr);  // duplicates
  }
  // Local shuffles simulate out-of-order arrival.
  for (size_t i = 1; i < reports.size(); ++i) {
    if (rng.Bernoulli(shuffle_prob)) std::swap(reports[i - 1], reports[i]);
  }
  for (const auto& pr : reports) recon.Ingest(pr, &points, &rejected);
  recon.Flush(&points, &rejected);

  const auto& s = recon.stats();
  EXPECT_EQ(s.reports_in, reports.size());
  EXPECT_EQ(s.points_out + s.duplicates + s.stale + s.outliers + s.invalid +
                s.late_dropped,
            s.reports_in);
  EXPECT_EQ(points.size(), s.points_out);
  // Per-vessel output strictly increasing in time.
  std::map<Mmsi, Timestamp> last;
  for (const auto& rp : points) {
    auto it = last.find(rp.mmsi);
    if (it != last.end()) {
      EXPECT_GT(rp.point.t, it->second);
    }
    last[rp.mmsi] = rp.point.t;
  }
}

INSTANTIATE_TEST_SUITE_P(ShuffleLevels, ReconstructionPropertyTest,
                         ::testing::Values(0.0, 0.2, 0.5, 0.9));

// --- Geodesy invariants (parameterized) -----------------------------------

class GeodesyInvariantTest : public ::testing::TestWithParam<int> {};

TEST_P(GeodesyInvariantTest, TriangleInequalityAndSymmetry) {
  Rng rng(2024 + GetParam());
  for (int i = 0; i < 200; ++i) {
    const GeoPoint a(rng.Uniform(-70, 70), rng.Uniform(-179, 179));
    const GeoPoint b(rng.Uniform(-70, 70), rng.Uniform(-179, 179));
    const GeoPoint c(rng.Uniform(-70, 70), rng.Uniform(-179, 179));
    const double ab = HaversineDistance(a, b);
    const double bc = HaversineDistance(b, c);
    const double ac = HaversineDistance(a, c);
    EXPECT_LE(ac, ab + bc + 1e-6);
    EXPECT_DOUBLE_EQ(ab, HaversineDistance(b, a));
    EXPECT_GE(ab, 0.0);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, GeodesyInvariantTest, ::testing::Values(1, 2, 3));

}  // namespace
}  // namespace marlin
