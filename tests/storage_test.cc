// Unit tests for marlin_storage: codecs, bloom, skiplist, LSM store (incl.
// persistence & recovery), R-tree, grid index, interval index, trajectories.

#include <gtest/gtest.h>

#include <algorithm>
#include <filesystem>
#include <map>
#include <set>

#include "common/fault.h"
#include "common/rng.h"
#include "geo/geodesy.h"
#include "storage/bloom.h"
#include "storage/coding.h"
#include "storage/grid_index.h"
#include "storage/interval_index.h"
#include "storage/lsm_store.h"
#include "storage/rtree.h"
#include "storage/skiplist.h"
#include "storage/trajectory.h"
#include "storage/trajectory_store.h"

namespace marlin {
namespace {

// --- Coding ------------------------------------------------------------------

TEST(CodingTest, Fixed64RoundTrip) {
  std::string buf;
  PutFixed64BE(&buf, 0x0102030405060708ull);
  EXPECT_EQ(GetFixed64BE(buf, 0), 0x0102030405060708ull);
  EXPECT_EQ(buf[0], 0x01);  // big endian: most significant first
}

TEST(CodingTest, BigEndianPreservesOrder) {
  Rng rng(81);
  for (int i = 0; i < 500; ++i) {
    const uint64_t a = rng.NextU64() >> (rng.NextBounded(40));
    const uint64_t b = rng.NextU64() >> (rng.NextBounded(40));
    std::string ka, kb;
    PutFixed64BE(&ka, a);
    PutFixed64BE(&kb, b);
    EXPECT_EQ(a < b, ka < kb);
  }
}

TEST(CodingTest, OrderedInt64HandlesNegatives) {
  const std::vector<int64_t> values = {INT64_MIN, -1000, -1, 0, 1, 1000,
                                       INT64_MAX};
  std::vector<std::string> keys;
  for (int64_t v : values) {
    std::string k;
    PutOrderedInt64(&k, v);
    EXPECT_EQ(GetOrderedInt64(k, 0), v);
    keys.push_back(k);
  }
  EXPECT_TRUE(std::is_sorted(keys.begin(), keys.end()));
}

TEST(CodingTest, VarintRoundTrip) {
  for (uint32_t v : {0u, 1u, 127u, 128u, 300u, 16383u, 16384u, 0xFFFFFFFFu}) {
    std::string buf;
    PutVarint32(&buf, v);
    uint32_t out = 0;
    EXPECT_EQ(GetVarint32(buf, 0, &out), buf.size());
    EXPECT_EQ(out, v);
  }
}

TEST(CodingTest, VarintTruncationDetected) {
  std::string buf;
  PutVarint32(&buf, 1u << 30);
  buf.resize(buf.size() - 1);
  uint32_t out = 0;
  EXPECT_EQ(GetVarint32(buf, 0, &out), 0u);
}

TEST(CodingTest, DoubleRoundTrip) {
  for (double v : {0.0, -1.5, 3.14159265358979, 1e300, -1e-300}) {
    std::string buf;
    PutDoubleLE(&buf, v);
    EXPECT_EQ(GetDoubleLE(buf, 0), v);
  }
}

TEST(CodingTest, Crc32cKnownVector) {
  // RFC 3720 test vector: CRC-32C of 32 zero bytes = 0x8A9136AA.
  unsigned char zeros[32] = {0};
  EXPECT_EQ(Crc32c(zeros, sizeof(zeros)), 0x8A9136AAu);
}

TEST(CodingTest, Crc32cDetectsCorruption) {
  std::string data = "maritime data integration";
  const uint32_t crc = Crc32c(data.data(), data.size());
  data[3] ^= 1;
  EXPECT_NE(Crc32c(data.data(), data.size()), crc);
}

// --- Bloom ------------------------------------------------------------------

TEST(BloomTest, NoFalseNegatives) {
  BloomFilter filter(1000, 10);
  std::vector<std::string> keys;
  for (int i = 0; i < 1000; ++i) {
    keys.push_back("key-" + std::to_string(i));
    filter.Add(keys.back());
  }
  for (const auto& k : keys) EXPECT_TRUE(filter.MayContain(k));
}

TEST(BloomTest, FalsePositiveRateReasonable) {
  BloomFilter filter(10000, 10);
  for (int i = 0; i < 10000; ++i) filter.Add("present-" + std::to_string(i));
  int fp = 0;
  const int probes = 20000;
  for (int i = 0; i < probes; ++i) {
    if (filter.MayContain("absent-" + std::to_string(i))) ++fp;
  }
  // 10 bits/key ≈ 1 % theoretical; allow generous margin.
  EXPECT_LT(static_cast<double>(fp) / probes, 0.03);
}

TEST(BloomTest, SerializeDeserialize) {
  BloomFilter filter(100, 10);
  filter.Add("alpha");
  filter.Add("beta");
  const BloomFilter restored = BloomFilter::Deserialize(filter.Serialize());
  EXPECT_TRUE(restored.MayContain("alpha"));
  EXPECT_TRUE(restored.MayContain("beta"));
}

// --- SkipList ---------------------------------------------------------------

TEST(SkipListTest, MatchesReferenceMap) {
  SkipList list;
  std::map<std::string, std::string> reference;
  Rng rng(83);
  for (int i = 0; i < 2000; ++i) {
    const std::string key = "k" + std::to_string(rng.NextBounded(500));
    const std::string value = "v" + std::to_string(i);
    list.Insert(key, value);
    reference[key] = value;
  }
  EXPECT_EQ(list.size(), reference.size());
  for (const auto& [k, v] : reference) {
    const std::string* found = list.Find(k);
    ASSERT_NE(found, nullptr) << k;
    EXPECT_EQ(*found, v);
  }
  EXPECT_EQ(list.Find("nonexistent"), nullptr);
  // Iteration yields sorted order identical to the map.
  SkipList::Iterator it(&list);
  auto ref_it = reference.begin();
  for (it.SeekToFirst(); it.Valid(); it.Next(), ++ref_it) {
    ASSERT_NE(ref_it, reference.end());
    EXPECT_EQ(it.key(), ref_it->first);
    EXPECT_EQ(it.value(), ref_it->second);
  }
  EXPECT_EQ(ref_it, reference.end());
}

TEST(SkipListTest, SeekSemantics) {
  SkipList list;
  list.Insert("b", "1");
  list.Insert("d", "2");
  list.Insert("f", "3");
  SkipList::Iterator it(&list);
  it.Seek("c");
  ASSERT_TRUE(it.Valid());
  EXPECT_EQ(it.key(), "d");
  it.Seek("f");
  ASSERT_TRUE(it.Valid());
  EXPECT_EQ(it.key(), "f");
  it.Seek("g");
  EXPECT_FALSE(it.Valid());
}

TEST(SkipListTest, OverwriteKeepsSingleEntry) {
  SkipList list;
  list.Insert("k", "old");
  list.Insert("k", "new");
  EXPECT_EQ(list.size(), 1u);
  EXPECT_EQ(*list.Find("k"), "new");
}

// --- LsmStore (in-memory) ----------------------------------------------------

TEST(LsmTest, PutGetDelete) {
  auto store = LsmStore::Open(LsmStore::Options{});
  ASSERT_TRUE(store.ok());
  LsmStore& db = **store;
  ASSERT_TRUE(db.Put("a", "1").ok());
  ASSERT_TRUE(db.Put("b", "2").ok());
  EXPECT_EQ(*db.Get("a"), "1");
  EXPECT_EQ(*db.Get("b"), "2");
  EXPECT_TRUE(db.Get("c").status().IsNotFound());
  ASSERT_TRUE(db.Delete("a").ok());
  EXPECT_TRUE(db.Get("a").status().IsNotFound());
}

TEST(LsmTest, OverwriteAcrossFlush) {
  auto store = LsmStore::Open(LsmStore::Options{});
  LsmStore& db = **store;
  ASSERT_TRUE(db.Put("k", "v1").ok());
  ASSERT_TRUE(db.Flush().ok());
  ASSERT_TRUE(db.Put("k", "v2").ok());
  EXPECT_EQ(*db.Get("k"), "v2");  // memtable shadows the run
  ASSERT_TRUE(db.Flush().ok());
  EXPECT_EQ(*db.Get("k"), "v2");  // newer run shadows older
  ASSERT_TRUE(db.CompactAll().ok());
  EXPECT_EQ(*db.Get("k"), "v2");
  EXPECT_EQ(db.NumRuns(), 1u);
}

TEST(LsmTest, DeleteShadowsOlderRunAndCompactsAway) {
  auto store = LsmStore::Open(LsmStore::Options{});
  LsmStore& db = **store;
  ASSERT_TRUE(db.Put("k", "v").ok());
  ASSERT_TRUE(db.Flush().ok());
  ASSERT_TRUE(db.Delete("k").ok());
  EXPECT_TRUE(db.Get("k").status().IsNotFound());
  ASSERT_TRUE(db.CompactAll().ok());
  EXPECT_TRUE(db.Get("k").status().IsNotFound());
  // After full compaction the tombstone itself is gone.
  auto it = db.NewIterator();
  it->SeekToFirst();
  EXPECT_FALSE(it->Valid());
}

TEST(LsmTest, AutomaticFlushOnMemtableLimit) {
  LsmStore::Options opts;
  opts.memtable_bytes_limit = 4096;
  auto store = LsmStore::Open(opts);
  LsmStore& db = **store;
  for (int i = 0; i < 200; ++i) {
    ASSERT_TRUE(
        db.Put("key-" + std::to_string(i), std::string(64, 'x')).ok());
  }
  EXPECT_GT(db.stats().flushes, 0u);
  for (int i = 0; i < 200; ++i) {
    EXPECT_TRUE(db.Get("key-" + std::to_string(i)).ok());
  }
}

TEST(LsmTest, IteratorMergesAllSources) {
  auto store = LsmStore::Open(LsmStore::Options{});
  LsmStore& db = **store;
  ASSERT_TRUE(db.Put("a", "1").ok());
  ASSERT_TRUE(db.Put("c", "3").ok());
  ASSERT_TRUE(db.Flush().ok());
  ASSERT_TRUE(db.Put("b", "2").ok());
  ASSERT_TRUE(db.Delete("c").ok());
  auto it = db.NewIterator();
  std::vector<std::string> keys;
  for (it->SeekToFirst(); it->Valid(); it->Next()) {
    keys.emplace_back(it->key());
  }
  EXPECT_EQ(keys, (std::vector<std::string>{"a", "b"}));
}

TEST(LsmTest, ScanRange) {
  auto store = LsmStore::Open(LsmStore::Options{});
  LsmStore& db = **store;
  for (int i = 0; i < 100; ++i) {
    char key[16];
    std::snprintf(key, sizeof(key), "k%03d", i);
    ASSERT_TRUE(db.Put(key, std::to_string(i)).ok());
  }
  ASSERT_TRUE(db.Flush().ok());
  const auto hits = db.Scan("k010", "k020");
  ASSERT_EQ(hits.size(), 10u);
  EXPECT_EQ(hits.front().first, "k010");
  EXPECT_EQ(hits.back().first, "k019");
  // Limit applies.
  EXPECT_EQ(db.Scan("k000", "k999", 5).size(), 5u);
}

TEST(LsmTest, RandomizedAgainstReferenceMap) {
  LsmStore::Options opts;
  opts.memtable_bytes_limit = 8192;  // force frequent flushes
  opts.max_runs = 3;                 // force compactions
  auto store = LsmStore::Open(opts);
  LsmStore& db = **store;
  std::map<std::string, std::string> reference;
  Rng rng(87);
  for (int i = 0; i < 5000; ++i) {
    const std::string key = "k" + std::to_string(rng.NextBounded(400));
    if (rng.Bernoulli(0.25)) {
      ASSERT_TRUE(db.Delete(key).ok());
      reference.erase(key);
    } else {
      const std::string value = "v" + std::to_string(i);
      ASSERT_TRUE(db.Put(key, value).ok());
      reference[key] = value;
    }
  }
  for (const auto& [k, v] : reference) {
    auto got = db.Get(k);
    ASSERT_TRUE(got.ok()) << k;
    EXPECT_EQ(*got, v);
  }
  // Iterator sees exactly the reference contents.
  auto it = db.NewIterator();
  size_t n = 0;
  for (it->SeekToFirst(); it->Valid(); it->Next(), ++n) {
    auto ref = reference.find(std::string(it->key()));
    ASSERT_NE(ref, reference.end());
    EXPECT_EQ(it->value(), ref->second);
  }
  EXPECT_EQ(n, reference.size());
  EXPECT_GT(db.stats().compactions, 0u);
}

// --- LsmStore persistence -------------------------------------------------

class LsmPersistenceTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = ::testing::TempDir() + "/marlin_lsm_" +
           std::to_string(reinterpret_cast<uintptr_t>(this));
    std::filesystem::remove_all(dir_);
  }
  void TearDown() override { std::filesystem::remove_all(dir_); }
  std::string dir_;
};

TEST_F(LsmPersistenceTest, RecoverFromWalAndRuns) {
  LsmStore::Options opts;
  opts.directory = dir_;
  {
    auto store = LsmStore::Open(opts);
    ASSERT_TRUE(store.ok());
    ASSERT_TRUE((*store)->Put("flushed", "on-disk").ok());
    ASSERT_TRUE((*store)->Flush().ok());
    ASSERT_TRUE((*store)->Put("wal-only", "replayed").ok());
    // No flush: "wal-only" lives only in the WAL.
  }
  auto reopened = LsmStore::Open(opts);
  ASSERT_TRUE(reopened.ok());
  EXPECT_EQ(*(*reopened)->Get("flushed"), "on-disk");
  EXPECT_EQ(*(*reopened)->Get("wal-only"), "replayed");
  EXPECT_GT((*reopened)->stats().wal_records_replayed, 0u);
}

TEST_F(LsmPersistenceTest, TornWalTailIgnored) {
  LsmStore::Options opts;
  opts.directory = dir_;
  {
    auto store = LsmStore::Open(opts);
    ASSERT_TRUE((*store)->Put("good", "1").ok());
    ASSERT_TRUE((*store)->Put("tail", "2").ok());
  }
  // Corrupt the last byte of the WAL (simulated torn write).
  const std::string wal = dir_ + "/wal.log";
  const auto size = std::filesystem::file_size(wal);
  std::filesystem::resize_file(wal, size - 1);
  auto reopened = LsmStore::Open(opts);
  ASSERT_TRUE(reopened.ok());
  EXPECT_EQ(*(*reopened)->Get("good"), "1");
  EXPECT_TRUE((*reopened)->Get("tail").status().IsNotFound());
}

TEST_F(LsmPersistenceTest, CompactionReducesRunFiles) {
  LsmStore::Options opts;
  opts.directory = dir_;
  auto store = LsmStore::Open(opts);
  LsmStore& db = **store;
  for (int r = 0; r < 4; ++r) {
    for (int i = 0; i < 10; ++i) {
      ASSERT_TRUE(
          db.Put("r" + std::to_string(r) + "k" + std::to_string(i), "v").ok());
    }
    ASSERT_TRUE(db.Flush().ok());
  }
  EXPECT_EQ(db.NumRuns(), 4u);
  ASSERT_TRUE(db.CompactAll().ok());
  EXPECT_EQ(db.NumRuns(), 1u);
  size_t sst_files = 0;
  for (const auto& e : std::filesystem::directory_iterator(dir_)) {
    if (e.path().extension() == ".sst") ++sst_files;
  }
  EXPECT_EQ(sst_files, 1u);
  for (int r = 0; r < 4; ++r) {
    for (int i = 0; i < 10; ++i) {
      EXPECT_TRUE(
          db.Get("r" + std::to_string(r) + "k" + std::to_string(i)).ok());
    }
  }
}

TEST_F(LsmPersistenceTest, CompactionKilledBeforeRenameLeavesInputsIntact) {
  // Kill the compaction in the crash window between the durable temp file
  // and its rename: no input run may be deleted, no key may vanish, and the
  // orphaned temp must be reaped (counted) on the next open.
  LsmStore::Options opts;
  opts.directory = dir_;
  {
    auto store = LsmStore::Open(opts);
    LsmStore& db = **store;
    for (int r = 0; r < 4; ++r) {
      for (int i = 0; i < 10; ++i) {
        ASSERT_TRUE(
            db.Put("r" + std::to_string(r) + "k" + std::to_string(i), "v")
                .ok());
      }
      ASSERT_TRUE(db.Flush().ok());
    }
    ASSERT_EQ(db.NumRuns(), 4u);
    {
      ScopedFaultPlan plan(
          FaultPlan().Fail("lsm.run.rename", 1, FaultAction::kIoError));
      EXPECT_FALSE(db.CompactAll().ok());
    }
    // Inputs untouched, nothing merged away, every key still readable.
    EXPECT_EQ(db.NumRuns(), 4u);
    EXPECT_EQ(db.stats().compactions, 0u);
    for (int r = 0; r < 4; ++r) {
      for (int i = 0; i < 10; ++i) {
        EXPECT_TRUE(
            db.Get("r" + std::to_string(r) + "k" + std::to_string(i)).ok());
      }
    }
    // The durable-but-unpublished temp is really on disk.
    size_t temps = 0;
    for (const auto& e : std::filesystem::directory_iterator(dir_)) {
      if (e.path().extension() == ".tmp") ++temps;
    }
    EXPECT_EQ(temps, 1u);
  }
  auto reopened = LsmStore::Open(opts);
  ASSERT_TRUE(reopened.ok());
  LsmStore& db = **reopened;
  EXPECT_GE(db.stats().temps_removed, 1u);
  // No double-counted runs: exactly the 4 inputs, each key served once.
  EXPECT_EQ(db.NumRuns(), 4u);
  const auto all = db.Scan("", "~");
  EXPECT_EQ(all.size(), 40u);
  ASSERT_TRUE(db.CompactAll().ok());
  EXPECT_EQ(db.NumRuns(), 1u);
  EXPECT_EQ(db.Scan("", "~").size(), 40u);
}

TEST_F(LsmPersistenceTest, BackgroundCompactorSurvivesInjectedCrash) {
  // A compaction that *throws* on the background worker must not take the
  // process (or the worker) down: the failure surfaces on the next Flush as
  // a Status, and once disarmed the store compacts normally.
  LsmStore::Options opts;
  opts.directory = dir_;
  opts.background_compaction = true;
  opts.max_runs = 1;
  auto store = LsmStore::Open(opts);
  ASSERT_TRUE(store.ok());
  LsmStore& db = **store;
  {
    ScopedFaultPlan plan(
        FaultPlan().Fail("lsm.compact", 1, FaultAction::kThrow));
    for (int r = 0; r < 3; ++r) {
      for (int i = 0; i < 10; ++i) {
        ASSERT_TRUE(
            db.Put("r" + std::to_string(r) + "k" + std::to_string(i), "v")
                .ok());
      }
      (void)db.Flush();  // the crashed merge's Status surfaces on some Flush
    }
    db.WaitForCompaction();
    // The worker caught the injected crash and kept running; nothing merged
    // away wrongly — every key is still readable.
    EXPECT_EQ(db.Scan("", "~").size(), 30u);
  }
  ASSERT_TRUE(db.CompactAll().ok());
  EXPECT_EQ(db.NumRuns(), 1u);
  EXPECT_EQ(db.Scan("", "~").size(), 30u);
}

TEST(SortedRunTest, CorruptFileRejected) {
  SortedRun run = SortedRun::Build({{"a", std::string(1, '\0') + "1"}}, 10);
  std::string data = run.Serialize();
  data[10] ^= 0x40;
  EXPECT_TRUE(SortedRun::Deserialize(data).status().IsCorruption());
  EXPECT_TRUE(SortedRun::Deserialize("short").status().IsCorruption());
}

TEST(SortedRunTest, PrefixBloomRoundTrip) {
  // Archival-schema-like keys: 4-byte prefix + suffix.
  std::vector<std::pair<std::string, std::string>> entries;
  for (int v = 0; v < 8; ++v) {
    std::string key(4, static_cast<char>('A' + v));
    key += "suffix";
    entries.emplace_back(std::move(key), std::string(1, '\0') + "val");
  }
  const SortedRun run = SortedRun::Build(std::move(entries), 10);
  EXPECT_TRUE(run.MayContainPrefix("AAAA"));
  EXPECT_TRUE(run.MayContainPrefix("HHHH"));
  // Outside the [min, max] prefix range: definitively excluded.
  EXPECT_FALSE(run.MayContainPrefix("ZZZZ"));
  // Short prefixes are conservatively admitted.
  EXPECT_TRUE(run.MayContainPrefix("AA"));

  // The filter survives MRLNSST2 serialization.
  auto restored = SortedRun::Deserialize(run.Serialize());
  ASSERT_TRUE(restored.ok());
  EXPECT_TRUE(restored->MayContainPrefix("AAAA"));
  EXPECT_FALSE(restored->MayContainPrefix("ZZZZ"));
}

TEST(LsmTest, SingleVesselScanSkipsRunsViaPrefixBloom) {
  auto store = LsmStore::Open(LsmStore::Options{});
  LsmStore& db = **store;
  // One run per 4-byte "MMSI" prefix.
  for (int v = 0; v < 4; ++v) {
    const std::string prefix(4, static_cast<char>('a' + v));
    for (int i = 0; i < 5; ++i) {
      ASSERT_TRUE(db.Put(prefix + std::to_string(i), "v").ok());
    }
    ASSERT_TRUE(db.Flush().ok());
  }
  ASSERT_EQ(db.NumRuns(), 4u);
  // Same-prefix scan touches one run; the other three are skipped by the
  // prefix filter without a binary search.
  const auto hits = db.Scan("bbbb0", "bbbb9");
  EXPECT_EQ(hits.size(), 5u);
  EXPECT_EQ(db.stats().prefix_bloom_skipped, 3u);
  // A cross-prefix scan cannot use the filter (no skips added).
  const uint64_t skipped = db.stats().prefix_bloom_skipped;
  EXPECT_EQ(db.Scan("aaaa0", "dddd9").size(), 20u);
  EXPECT_EQ(db.stats().prefix_bloom_skipped, skipped);
}

TEST(LsmTest, BackgroundCompactionCollapsesRuns) {
  LsmStore::Options opts;
  opts.background_compaction = true;
  opts.max_runs = 2;
  auto store = LsmStore::Open(opts);
  LsmStore& db = **store;
  for (int r = 0; r < 6; ++r) {
    for (int i = 0; i < 20; ++i) {
      ASSERT_TRUE(
          db.Put("r" + std::to_string(r) + "k" + std::to_string(i),
                 "v" + std::to_string(r))
              .ok());
    }
    ASSERT_TRUE(db.Flush().ok());
  }
  db.WaitForCompaction();
  EXPECT_GT(db.stats().compactions, 0u);
  EXPECT_LE(db.NumRuns(), static_cast<size_t>(opts.max_runs) + 1);
  // Newest-wins semantics survive the background merges.
  for (int r = 0; r < 6; ++r) {
    for (int i = 0; i < 20; ++i) {
      auto got = db.Get("r" + std::to_string(r) + "k" + std::to_string(i));
      ASSERT_TRUE(got.ok());
      EXPECT_EQ(*got, "v" + std::to_string(r));
    }
  }
}

TEST(LsmPersistenceTest2, BackgroundCompactionDeletesOnlyMergedFiles) {
  const std::string dir = ::testing::TempDir() + "/marlin_lsm_bg";
  std::filesystem::remove_all(dir);
  LsmStore::Options opts;
  opts.directory = dir;
  opts.background_compaction = true;
  opts.max_runs = 2;
  {
    auto store = LsmStore::Open(opts);
    LsmStore& db = **store;
    for (int r = 0; r < 5; ++r) {
      for (int i = 0; i < 10; ++i) {
        ASSERT_TRUE(
            db.Put("r" + std::to_string(r) + "k" + std::to_string(i), "v").ok());
      }
      ASSERT_TRUE(db.Flush().ok());
    }
    db.WaitForCompaction();
  }
  // Reopen: every key must still be there — a compaction that deleted a
  // file it did not merge would lose data here.
  auto reopened = LsmStore::Open(opts);
  ASSERT_TRUE(reopened.ok());
  for (int r = 0; r < 5; ++r) {
    for (int i = 0; i < 10; ++i) {
      EXPECT_TRUE(
          (*reopened)->Get("r" + std::to_string(r) + "k" + std::to_string(i))
              .ok())
          << "r" << r << "k" << i;
    }
  }
  std::filesystem::remove_all(dir);
}

// --- RTree ----------------------------------------------------------------

class RTreeQueryTest : public ::testing::TestWithParam<int> {};

TEST_P(RTreeQueryTest, MatchesBruteForce) {
  const int n = GetParam();
  Rng rng(91 + n);
  std::vector<RTreeEntry> entries;
  for (int i = 0; i < n; ++i) {
    const GeoPoint p(rng.Uniform(35, 45), rng.Uniform(-6, 9));
    BoundingBox box;
    box.Extend(p);
    entries.push_back(RTreeEntry{box, static_cast<uint64_t>(i)});
  }
  const RTree tree(entries);
  EXPECT_EQ(tree.size(), static_cast<size_t>(n));
  for (int q = 0; q < 20; ++q) {
    const double lat = rng.Uniform(35, 44);
    const double lon = rng.Uniform(-6, 8);
    const BoundingBox query(lat, lon, lat + rng.Uniform(0.1, 2.0),
                            lon + rng.Uniform(0.1, 2.0));
    std::set<uint64_t> expected;
    for (const auto& e : entries) {
      if (e.box.Intersects(query)) expected.insert(e.id);
    }
    const auto got = tree.Query(query);
    EXPECT_EQ(std::set<uint64_t>(got.begin(), got.end()), expected);
  }
}

INSTANTIATE_TEST_SUITE_P(Sizes, RTreeQueryTest,
                         ::testing::Values(0, 1, 15, 16, 17, 100, 1000, 5000));

TEST(RTreeTest, NearestMatchesBruteForce) {
  Rng rng(97);
  std::vector<RTreeEntry> entries;
  std::vector<GeoPoint> points;
  for (int i = 0; i < 500; ++i) {
    const GeoPoint p(rng.Uniform(35, 45), rng.Uniform(-6, 9));
    points.push_back(p);
    BoundingBox box;
    box.Extend(p);
    entries.push_back(RTreeEntry{box, static_cast<uint64_t>(i)});
  }
  const RTree tree(entries);
  for (int q = 0; q < 10; ++q) {
    const GeoPoint query(rng.Uniform(35, 45), rng.Uniform(-6, 9));
    const auto got = tree.Nearest(query, 5);
    ASSERT_EQ(got.size(), 5u);
    // Brute force by haversine ranks the same id first (approx metric can
    // permute near-ties, so compare distance of the top hit instead).
    double best = 1e18;
    for (const auto& p : points) {
      best = std::min(best, HaversineDistance(query, p));
    }
    EXPECT_NEAR(got[0].second, best, best * 0.01 + 1.0);
    // Returned distances are non-decreasing.
    for (size_t i = 1; i < got.size(); ++i) {
      EXPECT_GE(got[i].second, got[i - 1].second);
    }
  }
}

TEST(RTreeTest, VisitEarlyStop) {
  std::vector<RTreeEntry> entries;
  for (int i = 0; i < 100; ++i) {
    BoundingBox box;
    box.Extend(GeoPoint(40.0 + i * 0.001, 5.0));
    entries.push_back(RTreeEntry{box, static_cast<uint64_t>(i)});
  }
  const RTree tree(entries);
  int visited = 0;
  tree.Visit(BoundingBox(39, 4, 41, 6), [&](const RTreeEntry&) {
    ++visited;
    return visited < 10;
  });
  EXPECT_EQ(visited, 10);
}

// --- GridIndex ----------------------------------------------------------

TEST(GridIndexTest, UpsertMoveRemove) {
  GridIndex grid(0.1);
  grid.Upsert(1, GeoPoint(40.0, 5.0));
  EXPECT_EQ(grid.size(), 1u);
  EXPECT_TRUE(grid.Get(1).has_value());
  grid.Upsert(1, GeoPoint(41.0, 6.0));  // move across cells
  EXPECT_EQ(grid.size(), 1u);
  const auto hits = grid.Query(BoundingBox(40.9, 5.9, 41.1, 6.1));
  ASSERT_EQ(hits.size(), 1u);
  EXPECT_TRUE(grid.Query(BoundingBox(39.9, 4.9, 40.1, 5.1)).empty());
  grid.Remove(1);
  EXPECT_EQ(grid.size(), 0u);
  grid.Remove(1);  // idempotent
}

TEST(GridIndexTest, QueryMatchesBruteForce) {
  Rng rng(101);
  GridIndex grid(0.25);
  std::vector<GeoPoint> points;
  for (uint64_t i = 0; i < 2000; ++i) {
    const GeoPoint p(rng.Uniform(35, 45), rng.Uniform(-6, 9));
    points.push_back(p);
    grid.Upsert(i, p);
  }
  for (int q = 0; q < 20; ++q) {
    const double lat = rng.Uniform(35, 44);
    const double lon = rng.Uniform(-6, 8);
    const BoundingBox box(lat, lon, lat + 1.0, lon + 1.5);
    std::set<uint64_t> expected;
    for (uint64_t i = 0; i < points.size(); ++i) {
      if (box.Contains(points[i])) expected.insert(i);
    }
    const auto got = grid.Query(box);
    EXPECT_EQ(std::set<uint64_t>(got.begin(), got.end()), expected);
  }
}

TEST(GridIndexTest, RadiusQuery) {
  GridIndex grid(0.1);
  const GeoPoint centre(40.0, 5.0);
  grid.Upsert(1, Destination(centre, 45.0, 500.0));
  grid.Upsert(2, Destination(centre, 180.0, 1500.0));
  grid.Upsert(3, Destination(centre, 270.0, 5000.0));
  const auto hits = grid.QueryRadius(centre, 2000.0);
  std::set<uint64_t> ids;
  for (const auto& [id, d] : hits) ids.insert(id);
  EXPECT_EQ(ids, (std::set<uint64_t>{1, 2}));
}

TEST(GridIndexTest, NearestExpandingRing) {
  GridIndex grid(0.1);
  const GeoPoint centre(40.0, 5.0);
  for (uint64_t i = 1; i <= 20; ++i) {
    grid.Upsert(i, Destination(centre, 30.0 * i, 1000.0 * i));
  }
  const auto nearest = grid.Nearest(centre, 3);
  ASSERT_EQ(nearest.size(), 3u);
  EXPECT_EQ(nearest[0].first, 1u);
  EXPECT_EQ(nearest[1].first, 2u);
  EXPECT_EQ(nearest[2].first, 3u);
}

// --- IntervalIndex ----------------------------------------------------------

TEST(IntervalIndexTest, StabAndOverlapMatchBruteForce) {
  Rng rng(103);
  std::vector<IntervalEntry> entries;
  for (uint64_t i = 0; i < 1000; ++i) {
    const Timestamp start = static_cast<Timestamp>(rng.NextBounded(100000));
    entries.push_back(
        IntervalEntry{start,
                      start + static_cast<Timestamp>(rng.NextBounded(5000)),
                      i});
  }
  const IntervalIndex index(entries);
  EXPECT_EQ(index.size(), entries.size());
  for (int q = 0; q < 50; ++q) {
    const Timestamp t = static_cast<Timestamp>(rng.NextBounded(105000));
    std::set<uint64_t> expected;
    for (const auto& e : entries) {
      if (e.start <= t && t <= e.end) expected.insert(e.id);
    }
    const auto got = index.Stab(t);
    EXPECT_EQ(std::set<uint64_t>(got.begin(), got.end()), expected);
  }
  for (int q = 0; q < 50; ++q) {
    const Timestamp t0 = static_cast<Timestamp>(rng.NextBounded(100000));
    const Timestamp t1 = t0 + static_cast<Timestamp>(rng.NextBounded(8000));
    std::set<uint64_t> expected;
    for (const auto& e : entries) {
      if (e.start <= t1 && t0 <= e.end) expected.insert(e.id);
    }
    const auto got = index.Overlapping(t0, t1);
    EXPECT_EQ(std::set<uint64_t>(got.begin(), got.end()), expected);
  }
}

TEST(IntervalIndexTest, EmptyIndex) {
  IntervalIndex index;
  EXPECT_TRUE(index.Stab(0).empty());
  EXPECT_TRUE(index.Overlapping(0, 100).empty());
}

// --- Trajectory ------------------------------------------------------------

Trajectory MakeLineTrajectory(uint32_t mmsi, int n, Timestamp step_ms) {
  Trajectory traj;
  traj.mmsi = mmsi;
  for (int i = 0; i < n; ++i) {
    TrajectoryPoint p;
    p.t = 1000000 + i * step_ms;
    p.position = GeoPoint(40.0 + i * 0.01, 5.0);
    p.sog_mps = 10.0f;
    p.cog_deg = 0.0f;
    traj.points.push_back(p);
  }
  return traj;
}

TEST(TrajectoryTest, InterpolationAtSamplesAndBetween) {
  const Trajectory traj = MakeLineTrajectory(1, 10, 60000);
  const TrajectoryPoint exact = traj.At(1000000 + 3 * 60000);
  EXPECT_NEAR(exact.position.lat, 40.03, 1e-9);
  const TrajectoryPoint mid = traj.At(1000000 + 3 * 60000 + 30000);
  EXPECT_NEAR(mid.position.lat, 40.035, 1e-6);
  // Clamping outside the span.
  EXPECT_NEAR(traj.At(0).position.lat, 40.0, 1e-9);
  EXPECT_NEAR(traj.At(1e15).position.lat, 40.09, 1e-9);
}

TEST(TrajectoryTest, SliceAndBounds) {
  const Trajectory traj = MakeLineTrajectory(1, 10, 60000);
  const Trajectory slice = traj.Slice(1000000 + 120000, 1000000 + 300000);
  EXPECT_EQ(slice.points.size(), 4u);  // minutes 2,3,4,5
  const BoundingBox box = traj.Bounds();
  EXPECT_NEAR(box.min_lat, 40.0, 1e-9);
  EXPECT_NEAR(box.max_lat, 40.09, 1e-9);
}

TEST(TrajectoryTest, LengthAccumulates) {
  const Trajectory traj = MakeLineTrajectory(1, 11, 60000);
  // 10 segments of 0.01 degree latitude each ≈ 11.1 km.
  EXPECT_NEAR(traj.LengthMetres(), 11120.0, 30.0);
}

TEST(TrajectoryTest, SedErrorZeroForIdenticalTrajectories) {
  const Trajectory traj = MakeLineTrajectory(1, 20, 30000);
  const TrajectoryError err = ComputeSedError(traj, traj);
  EXPECT_NEAR(err.mean_m, 0.0, 1e-6);
  EXPECT_NEAR(err.max_m, 0.0, 1e-6);
}

TEST(TrajectoryTest, SedErrorDetectsDrop) {
  const Trajectory traj = MakeLineTrajectory(1, 21, 30000);
  Trajectory endpoints;
  endpoints.mmsi = 1;
  endpoints.points = {traj.points.front(), traj.points.back()};
  // A straight constant-speed trajectory is perfectly reconstructible from
  // its endpoints (within spherical interpolation error).
  const TrajectoryError err = ComputeSedError(traj, endpoints);
  EXPECT_LT(err.max_m, 5.0);
}

TEST(TrajectoryKeyTest, EncodingRoundTripAndOrder) {
  const std::string k1 = EncodeTrajectoryKey(228000001, 1000);
  const std::string k2 = EncodeTrajectoryKey(228000001, 2000);
  const std::string k3 = EncodeTrajectoryKey(228000002, 0);
  EXPECT_LT(k1, k2);  // time order within vessel
  EXPECT_LT(k2, k3);  // vessel-major order
  uint32_t mmsi = 0;
  Timestamp t = 0;
  ASSERT_TRUE(DecodeTrajectoryKey(k1, &mmsi, &t));
  EXPECT_EQ(mmsi, 228000001u);
  EXPECT_EQ(t, 1000);
  EXPECT_FALSE(DecodeTrajectoryKey("short", &mmsi, &t));
}

TEST(TrajectoryValueTest, RoundTrip) {
  TrajectoryPoint p;
  p.t = 123456;
  p.position = GeoPoint(43.123456, -5.654321);
  p.sog_mps = 7.7f;
  p.cog_deg = 123.4f;
  TrajectoryPoint out;
  ASSERT_TRUE(DecodeTrajectoryValue(EncodeTrajectoryValue(p), &out));
  EXPECT_DOUBLE_EQ(out.position.lat, p.position.lat);
  EXPECT_DOUBLE_EQ(out.position.lon, p.position.lon);
  EXPECT_FLOAT_EQ(out.sog_mps, p.sog_mps);
  EXPECT_FLOAT_EQ(out.cog_deg, p.cog_deg);
}

// --- TrajectoryStore -------------------------------------------------------

TEST(TrajectoryStoreTest, AppendAndRetrieve) {
  TrajectoryStore store;
  const Trajectory traj = MakeLineTrajectory(228000001, 10, 60000);
  for (const auto& p : traj.points) {
    ASSERT_TRUE(store.Append(228000001, p).ok());
  }
  EXPECT_EQ(store.VesselCount(), 1u);
  EXPECT_EQ(store.PointCount(), 10u);
  auto got = store.GetTrajectory(228000001);
  ASSERT_TRUE(got.ok());
  EXPECT_EQ((*got)->points.size(), 10u);
  EXPECT_TRUE(store.GetTrajectory(999).status().IsNotFound());
}

TEST(TrajectoryStoreTest, RejectsOutOfOrderAppends) {
  TrajectoryStore store;
  TrajectoryPoint p;
  p.t = 2000;
  p.position = GeoPoint(40, 5);
  ASSERT_TRUE(store.Append(1, p).ok());
  p.t = 1000;
  EXPECT_TRUE(store.Append(1, p).IsInvalid());
}

TEST(TrajectoryStoreTest, LiveQueriesTrackLatestPosition) {
  TrajectoryStore store;
  TrajectoryPoint p;
  p.t = 1000;
  p.position = GeoPoint(40.0, 5.0);
  ASSERT_TRUE(store.Append(1, p).ok());
  p.t = 2000;
  p.position = GeoPoint(42.0, 7.0);
  ASSERT_TRUE(store.Append(1, p).ok());
  EXPECT_TRUE(store.QueryLive(BoundingBox(39.9, 4.9, 40.1, 5.1)).empty());
  const auto hits = store.QueryLive(BoundingBox(41.9, 6.9, 42.1, 7.1));
  ASSERT_EQ(hits.size(), 1u);
  EXPECT_EQ(hits[0], 1u);
}

TEST(TrajectoryStoreTest, WindowQueryMatchesBruteForce) {
  TrajectoryStore store;
  Rng rng(107);
  std::map<uint32_t, Trajectory> reference;
  for (uint32_t v = 1; v <= 30; ++v) {
    Trajectory traj;
    traj.mmsi = v;
    double lat = rng.Uniform(36, 44);
    double lon = rng.Uniform(-5, 8);
    for (int i = 0; i < 100; ++i) {
      TrajectoryPoint p;
      p.t = 1000000 + i * 10000;
      lat += rng.Uniform(-0.01, 0.01);
      lon += rng.Uniform(-0.01, 0.01);
      p.position = GeoPoint(lat, lon);
      traj.points.push_back(p);
      ASSERT_TRUE(store.Append(v, p).ok());
    }
    reference[v] = traj;
  }
  const BoundingBox box(38, -2, 42, 4);
  const Timestamp t0 = 1000000 + 20 * 10000;
  const Timestamp t1 = 1000000 + 60 * 10000;
  const auto got = store.QueryWindow(box, t0, t1);
  // Brute force.
  std::map<uint32_t, size_t> expected;
  for (const auto& [v, traj] : reference) {
    size_t count = 0;
    for (const auto& p : traj.points) {
      if (p.t >= t0 && p.t <= t1 && box.Contains(p.position)) ++count;
    }
    if (count > 0) expected[v] = count;
  }
  ASSERT_EQ(got.size(), expected.size());
  for (const auto& traj : got) {
    ASSERT_TRUE(expected.count(traj.mmsi));
    EXPECT_EQ(traj.points.size(), expected[traj.mmsi]);
  }
}

TEST(TrajectoryStoreTest, TimeSliceInterpolates) {
  TrajectoryStore store;
  const Trajectory traj = MakeLineTrajectory(5, 10, 60000);
  for (const auto& p : traj.points) ASSERT_TRUE(store.Append(5, p).ok());
  const auto slice = store.TimeSlice(1000000 + 90000);  // between samples
  ASSERT_EQ(slice.size(), 1u);
  EXPECT_EQ(slice[0].first, 5u);
  EXPECT_NEAR(slice[0].second.position.lat, 40.015, 1e-6);
  // Outside the observed span: no entry.
  EXPECT_TRUE(store.TimeSlice(1).empty());
}

TEST(TrajectoryStoreTest, ArchiveRoundTrip) {
  auto archive = LsmStore::Open(LsmStore::Options{});
  ASSERT_TRUE(archive.ok());
  TrajectoryStore::Options opts;
  opts.archive = archive->get();
  TrajectoryStore store(opts);
  const Trajectory traj = MakeLineTrajectory(228000009, 50, 30000);
  for (const auto& p : traj.points) {
    ASSERT_TRUE(store.Append(228000009, p).ok());
  }
  const auto loaded =
      store.LoadFromArchive(228000009, traj.StartTime(), traj.EndTime());
  ASSERT_TRUE(loaded.ok());
  ASSERT_EQ(loaded->points.size(), 50u);
  for (size_t i = 0; i < 50; ++i) {
    EXPECT_EQ(loaded->points[i].t, traj.points[i].t);
    EXPECT_DOUBLE_EQ(loaded->points[i].position.lat,
                     traj.points[i].position.lat);
  }
  // Partial range.
  const auto partial = store.LoadFromArchive(
      228000009, traj.points[10].t, traj.points[19].t);
  ASSERT_TRUE(partial.ok());
  EXPECT_EQ(partial->points.size(), 10u);
}

}  // namespace
}  // namespace marlin
