// Packed-bits battery (CTest labels: equivalence, tsan-critical).
//
// PR 5 replaced the byte-per-bit payload representation with 64-bit packed
// words (`PackedBits` + `PackedBitReader`/`PackedBitWriter`,
// common/packed_bits.h) and moved the decode hot path onto it. The
// byte-per-bit `BitWriter`/`BitReader`/`UnarmorPayload` layer is kept
// verbatim as the frozen reference, and this suite proves the two
// representations equivalent three ways:
//
//  1. randomized round-trip *property* tests on the packed reader/writer
//     (random field scripts of widths 1..57 and beyond, sign extension,
//     word-boundary straddles, fill-bit truncation, 6-bit strings);
//  2. bit-for-bit *differential* tests of every primitive against the
//     frozen byte implementation (writer output, armor/de-armor, statuses);
//  3. a payload *corpus differential*: valid / truncated / bad-fill /
//     corrupted / multi-fragment payloads of every supported message type
//     decode byte-identically (re-encoded bit streams and exact `Status`
//     values) through the packed and the frozen byte path.
//
// The untouched-or-complete `UnarmorPayloadInto` contract and the
// shard-concurrency independence of pooled decoder scratch are pinned here
// too (the latter is why this binary carries the tsan-critical label).

#include <cstdint>
#include <optional>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include <gtest/gtest.h>

#include "ais/codec.h"
#include "ais/messages.h"
#include "ais/nmea.h"
#include "ais/sixbit.h"
#include "common/packed_bits.h"
#include "common/rng.h"

namespace marlin {
namespace {

uint64_t MaskOf(int width) {
  return width == 64 ? ~uint64_t{0} : (uint64_t{1} << width) - 1;
}

/// Asserts the packed stream is the bit-for-bit image of the byte-per-bit
/// stream.
void ExpectBitsEqual(const std::vector<uint8_t>& byte_bits,
                     const PackedBits& packed) {
  ASSERT_EQ(static_cast<int>(byte_bits.size()), packed.size_bits());
  for (int i = 0; i < packed.size_bits(); ++i) {
    ASSERT_EQ(byte_bits[i] != 0, packed.GetBit(i)) << "bit " << i;
  }
}

/// Writes the same `width`-bit value to the frozen byte writer, splitting
/// fields wider than its 32-bit limit (MSB-first, so the high chunk goes
/// first).
void ByteWriteWide(BitWriter* w, uint64_t value, int width) {
  if (width > 32) {
    w->WriteUnsigned(static_cast<uint32_t>(value >> 32), width - 32);
    w->WriteUnsigned(static_cast<uint32_t>(value), 32);
  } else {
    w->WriteUnsigned(static_cast<uint32_t>(value), width);
  }
}

/// Reads a `width`-bit value from the frozen byte reader, splitting wide
/// fields the same way.
uint64_t ByteReadWide(BitReader* r, int width) {
  if (width > 32) {
    const uint64_t hi = *r->ReadUnsigned(width - 32);
    const uint64_t lo = *r->ReadUnsigned(32);
    return (hi << 32) | lo;
  }
  return *r->ReadUnsigned(width);
}

// --- PackedBits primitives -------------------------------------------------

TEST(PackedBitsTest, AppendAndGetBit) {
  PackedBits b;
  b.AppendBits(0b1011, 4);
  b.AppendBits(0, 3);
  b.AppendBits(1, 1);
  ASSERT_EQ(b.size_bits(), 8);
  const bool expected[8] = {true, false, true, true, false, false, false, true};
  for (int i = 0; i < 8; ++i) EXPECT_EQ(b.GetBit(i), expected[i]) << i;
  // First byte sits in the top byte of word 0.
  EXPECT_EQ(b.word(0) >> 56, 0b10110001u);
}

TEST(PackedBitsTest, AppendCrossesWordBoundary) {
  PackedBits b;
  b.AppendBits(~uint64_t{0}, 60);
  b.AppendBits(0b101, 3);  // straddles nothing yet (63 bits)
  b.AppendBits(0b11, 2);   // 64th bit + 1 bit into word 1
  ASSERT_EQ(b.size_bits(), 65);
  ASSERT_EQ(b.word_count(), 2u);
  EXPECT_TRUE(b.GetBit(63));
  EXPECT_TRUE(b.GetBit(64));
  // Tail of word 1 beyond bit 65 must be zero (tail-zero invariant).
  EXPECT_EQ(b.word(1) & (~uint64_t{0} >> 1), 0u);
}

TEST(PackedBitsTest, TruncateZeroesFreedTail) {
  PackedBits a;
  a.AppendBits(~uint64_t{0}, 64);
  a.AppendBits(~uint64_t{0}, 10);
  a.Truncate(67);
  PackedBits b;
  b.AppendBits(~uint64_t{0}, 64);
  b.AppendBits(0b111, 3);
  EXPECT_EQ(a, b);  // equality is word-exact, so freed bits must be zero
  a.Truncate(64);
  ASSERT_EQ(a.word_count(), 1u);
  a.Truncate(0);
  EXPECT_TRUE(a.empty());
}

TEST(PackedBitsTest, ClearRetainsNothingObservable) {
  PackedBits a;
  a.AppendBits(0xDEADBEEF, 32);
  a.Clear();
  a.AppendBits(0b01, 2);
  PackedBits b;
  b.AppendBits(0b01, 2);
  EXPECT_EQ(a, b);
}

// --- Randomized round-trip properties --------------------------------------

TEST(PackedBitPropertyTest, RandomFieldScriptsRoundTripAndMatchByteWriter) {
  Rng rng(1701);
  for (int trial = 0; trial < 200; ++trial) {
    const int nfields = 1 + static_cast<int>(rng.NextBounded(40));
    std::vector<int> widths(nfields);
    std::vector<uint64_t> values(nfields);
    PackedBitWriter pw;
    BitWriter bw;
    for (int i = 0; i < nfields; ++i) {
      widths[i] = 1 + static_cast<int>(rng.NextBounded(57));
      values[i] = rng.NextU64() & MaskOf(widths[i]);
      pw.WriteUnsigned(values[i], widths[i]);
      ByteWriteWide(&bw, values[i], widths[i]);
    }
    ExpectBitsEqual(bw.bits(), pw.bits());

    PackedBitReader pr(pw.bits());
    BitReader br(bw.bits());
    for (int i = 0; i < nfields; ++i) {
      ASSERT_EQ(*pr.ReadUnsigned(widths[i]), values[i])
          << "trial " << trial << " field " << i << " width " << widths[i];
      ASSERT_EQ(ByteReadWide(&br, widths[i]), values[i]);
    }
    EXPECT_EQ(pr.remaining(), 0);
    EXPECT_TRUE(pr.ReadUnsigned(1).status().IsOutOfRange());
  }
}

TEST(PackedBitPropertyTest, SignedFieldsSignExtend) {
  Rng rng(1702);
  for (int trial = 0; trial < 200; ++trial) {
    const int width = 2 + static_cast<int>(rng.NextBounded(56));  // 2..57
    const int64_t lo = -(int64_t{1} << (width - 1));
    const int64_t hi = (int64_t{1} << (width - 1)) - 1;
    const int64_t mid = lo + static_cast<int64_t>(
                                 rng.NextBounded(static_cast<uint64_t>(hi - lo) + 1));
    PackedBitWriter w;
    for (int64_t v : {lo, hi, int64_t{-1}, int64_t{0}, mid}) {
      w.WriteSigned(v, width);
    }
    PackedBitReader r(w.bits());
    for (int64_t v : {lo, hi, int64_t{-1}, int64_t{0}, mid}) {
      ASSERT_EQ(*r.ReadSigned(width), v) << "width " << width;
    }
    // Differential vs the frozen 32-bit-capped signed reader.
    if (width <= 32) {
      BitWriter bw;
      for (int64_t v : {lo, hi, int64_t{-1}, int64_t{0}, mid}) {
        bw.WriteSigned(static_cast<int32_t>(v), width);
      }
      ExpectBitsEqual(bw.bits(), w.bits());
      BitReader br(bw.bits());
      PackedBitReader pr(w.bits());
      for (int i = 0; i < 5; ++i) {
        ASSERT_EQ(static_cast<int64_t>(*br.ReadSigned(width)),
                  *pr.ReadSigned(width));
      }
    }
  }
}

TEST(PackedBitPropertyTest, FieldsStraddleWordBoundariesAtEveryOffset) {
  // A 57-bit marker field preceded by `pad` single bits, for every pad
  // offset across two word boundaries — straddles at every alignment.
  for (int pad = 0; pad <= 130; ++pad) {
    const uint64_t marker = 0x155AA55AA55AA55ull & MaskOf(57);
    PackedBitWriter w;
    for (int i = 0; i < pad; ++i) w.WriteUnsigned(i & 1u, 1);
    w.WriteUnsigned(marker, 57);
    w.WriteUnsigned(0x3FF, 10);
    PackedBitReader r(w.bits());
    ASSERT_TRUE(r.Skip(pad).ok());
    ASSERT_EQ(*r.ReadUnsigned(57), marker) << "pad " << pad;
    ASSERT_EQ(*r.ReadUnsigned(10), 0x3FFu) << "pad " << pad;
  }
  // Full-width 64-bit fields, aligned and straddling.
  for (int pad : {0, 1, 31, 63}) {
    PackedBitWriter w;
    for (int i = 0; i < pad; ++i) w.WriteUnsigned(1, 1);
    w.WriteUnsigned(0xFEEDFACECAFEBEEFull, 64);
    PackedBitReader r(w.bits());
    ASSERT_TRUE(r.Skip(pad).ok());
    ASSERT_EQ(*r.ReadUnsigned(64), 0xFEEDFACECAFEBEEFull) << "pad " << pad;
  }
}

TEST(PackedBitPropertyTest, SixBitStringsMatchByteWriterAndReader) {
  Rng rng(1703);
  const std::string alphabet =
      "@ABCDEFGHIJKLMNOPQRSTUVWXYZ !\"#$%&'()*+,-./0123456789:;<=>?";
  for (int trial = 0; trial < 100; ++trial) {
    const int chars = 1 + static_cast<int>(rng.NextBounded(24));
    const int text_len = static_cast<int>(rng.NextBounded(chars + 5));
    std::string text;
    for (int i = 0; i < text_len; ++i) {
      text.push_back(alphabet[rng.NextBounded(alphabet.size())]);
    }
    PackedBitWriter pw;
    BitWriter bw;
    // A leading 3-bit pad so the string itself straddles word boundaries.
    pw.WriteUnsigned(0b101, 3);
    bw.WriteUnsigned(0b101, 3);
    pw.WriteString(text, chars);
    bw.WriteString(text, chars);
    ExpectBitsEqual(bw.bits(), pw.bits());
    PackedBitReader pr(pw.bits());
    BitReader br(bw.bits());
    ASSERT_TRUE(pr.Skip(3).ok());
    ASSERT_TRUE(br.Skip(3).ok());
    ASSERT_EQ(*pr.ReadString(chars), *br.ReadString(chars))
        << "text \"" << text << "\" chars " << chars;
  }
}

// --- Armor / de-armor differential -----------------------------------------

TEST(PackedArmorTest, ArmorAndUnarmorMatchBytePathBitForBit) {
  Rng rng(1704);
  for (int trial = 0; trial < 200; ++trial) {
    const int nbits = 1 + static_cast<int>(rng.NextBounded(430));
    BitWriter bw;
    PackedBitWriter pw;
    for (int i = 0; i < nbits; ++i) {
      const uint32_t bit = static_cast<uint32_t>(rng.NextBounded(2));
      bw.WriteUnsigned(bit, 1);
      pw.WriteUnsigned(bit, 1);
    }
    int byte_fill = 0;
    int packed_fill = 0;
    const std::string byte_payload = ArmorBits(bw.bits(), &byte_fill);
    const std::string packed_payload = ArmorBits(pw.bits(), &packed_fill);
    ASSERT_EQ(byte_payload, packed_payload);
    ASSERT_EQ(byte_fill, packed_fill);

    std::vector<uint8_t> byte_bits;
    PackedBits packed_bits;
    ASSERT_TRUE(UnarmorPayloadInto(byte_payload, byte_fill, &byte_bits).ok());
    ASSERT_TRUE(
        UnarmorPayloadInto(packed_payload, packed_fill, &packed_bits).ok());
    ExpectBitsEqual(byte_bits, packed_bits);
    ASSERT_EQ(packed_bits, pw.bits());  // exact round trip
  }
}

TEST(PackedArmorTest, FillBitTruncationSweep) {
  // Every payload length x fill combination de-armors identically on both
  // paths (the armor characters are all valid here).
  const std::string payload = "15M67wwP00qNqTpCj@Rq`vB>0000";
  for (size_t len = 0; len <= payload.size(); ++len) {
    for (int fill = 0; fill <= 5; ++fill) {
      const std::string_view p(payload.data(), len);
      std::vector<uint8_t> byte_bits;
      PackedBits packed_bits;
      const Status bs = UnarmorPayloadInto(p, fill, &byte_bits);
      const Status ps = UnarmorPayloadInto(p, fill, &packed_bits);
      ASSERT_EQ(bs, ps) << "len " << len << " fill " << fill;
      if (bs.ok()) ExpectBitsEqual(byte_bits, packed_bits);
    }
  }
}

TEST(PackedArmorTest, ErrorStatusesIdenticalAcrossPaths) {
  const std::pair<std::string, int> cases[] = {
      {"ab\x19z", 0},   // illegal armor character
      {"15M\x7F", 3},   // illegal armor character, high end
      {"15M", 6},       // fill out of range
      {"15M", -1},      // fill out of range (negative)
      {"", 3},          // payload shorter than fill bits
  };
  for (const auto& [payload, fill] : cases) {
    std::vector<uint8_t> byte_bits;
    PackedBits packed_bits;
    const Status bs = UnarmorPayloadInto(payload, fill, &byte_bits);
    const Status ps = UnarmorPayloadInto(payload, fill, &packed_bits);
    EXPECT_FALSE(bs.ok()) << payload;
    EXPECT_EQ(bs, ps) << payload;  // identical code *and* message
  }
}

// --- Untouched-or-complete contract ----------------------------------------

TEST(UnarmorContractTest, ByteBufferUntouchedOnEveryErrorPath) {
  const std::vector<uint8_t> sentinel = {1, 0, 1, 1, 0, 0, 1};
  for (const auto& [payload, fill] :
       std::vector<std::pair<std::string, int>>{
           {"ab\x19z", 0}, {"15M", 6}, {"15M", -1}, {"", 4}}) {
    std::vector<uint8_t> bits = sentinel;
    EXPECT_FALSE(UnarmorPayloadInto(payload, fill, &bits).ok());
    EXPECT_EQ(bits, sentinel) << "payload \"" << payload << "\" fill " << fill;
  }
  // And complete on success: prior contents fully replaced.
  std::vector<uint8_t> bits = sentinel;
  ASSERT_TRUE(UnarmorPayloadInto("w", 0, &bits).ok());
  const std::vector<uint8_t> expected = {1, 1, 1, 1, 1, 1};  // 'w' -> 63
  EXPECT_EQ(bits, expected);
}

TEST(UnarmorContractTest, PackedBufferUntouchedOnEveryErrorPath) {
  PackedBits sentinel;
  sentinel.AppendBits(0b1011001, 7);
  for (const auto& [payload, fill] :
       std::vector<std::pair<std::string, int>>{
           {"ab\x19z", 0}, {"15M", 6}, {"15M", -1}, {"", 4}}) {
    PackedBits bits = sentinel;
    EXPECT_FALSE(UnarmorPayloadInto(payload, fill, &bits).ok());
    EXPECT_EQ(bits, sentinel) << "payload \"" << payload << "\" fill " << fill;
  }
  PackedBits bits = sentinel;
  ASSERT_TRUE(UnarmorPayloadInto("w", 0, &bits).ok());
  PackedBits expected;
  expected.AppendBits(0b111111, 6);  // 'w' -> 63
  EXPECT_EQ(bits, expected);
}

// --- Corpus differential decode --------------------------------------------

PositionReport CorpusPosition(int i) {
  PositionReport m;
  m.message_type = 1 + (i % 3);
  m.mmsi = 230000000u + static_cast<uint32_t>(i % 400);
  m.sog_knots = (i % 40) * 0.6;
  m.position = GeoPoint(41.0 + (i % 90) * 0.013, 4.0 + (i % 71) * 0.017);
  m.cog_deg = (i * 11) % 360;
  m.true_heading = (i * 11) % 360;
  m.utc_second = i % 60;
  m.rate_of_turn = (i % 17) - 8;
  m.radio_status = static_cast<uint32_t>(i * 2654435761u) & 0x7FFFF;
  return m;
}

/// Every supported message shape plus one unsupported type, as armored
/// (payload, fill) pairs.
std::vector<std::pair<std::string, int>> SupportedTypeCorpus() {
  std::vector<AisMessage> messages;
  for (int i = 0; i < 40; ++i) messages.emplace_back(CorpusPosition(i));
  for (int i = 0; i < 10; ++i) {
    PositionReport b = CorpusPosition(100 + i);
    b.message_type = 18;
    messages.emplace_back(b);
  }
  {
    BaseStationReport bs;
    bs.mmsi = 2288888;
    bs.year = 2017;
    bs.month = 3;
    bs.day = 21;
    bs.hour = 14;
    bs.minute = 55;
    bs.second = 30;
    bs.position = GeoPoint(43.0, 5.0);
    messages.emplace_back(bs);
  }
  {
    StaticVoyageData sv;
    sv.mmsi = 228123456;
    sv.call_sign = "3FOF8";
    sv.name = "DIFFERENTIAL TEST";
    sv.destination = "VALLETTA";
    sv.ship_type = 71;
    messages.emplace_back(sv);
  }
  {
    ExtendedClassBReport eb;
    eb.position_report = CorpusPosition(7);
    eb.position_report.message_type = 19;
    eb.name = "FISHER KING";
    eb.ship_type = 30;
    messages.emplace_back(eb);
  }
  {
    StaticDataReport a;
    a.mmsi = 228000111;
    a.part_number = 0;
    a.name = "ALBATROSS";
    messages.emplace_back(a);
    StaticDataReport b = a;
    b.part_number = 1;
    b.ship_type = 36;
    b.vendor_id = "ACM";
    b.call_sign = "FQ1234";
    messages.emplace_back(b);
  }
  std::vector<std::pair<std::string, int>> corpus;
  for (const AisMessage& msg : messages) {
    const auto bits = EncodeMessageBits(msg);
    EXPECT_TRUE(bits.ok());
    int fill = 0;
    std::string payload = ArmorBits(*bits, &fill);
    corpus.emplace_back(std::move(payload), fill);
  }
  // An unsupported type (9, SAR aircraft) and a bad type-24 part number.
  {
    BitWriter w;
    w.WriteUnsigned(9, 6);
    w.WriteUnsigned(0, 2);
    w.WriteUnsigned(111222333, 30);
    for (int i = 0; i < 130; ++i) w.WriteUnsigned(0, 1);
    int fill = 0;
    std::string payload = ArmorBits(w.bits(), &fill);
    corpus.emplace_back(std::move(payload), fill);
  }
  {
    BitWriter w;
    w.WriteUnsigned(24, 6);
    w.WriteUnsigned(0, 2);
    w.WriteUnsigned(228000111, 30);
    w.WriteUnsigned(2, 2);  // invalid part number
    for (int i = 0; i < 120; ++i) w.WriteUnsigned(0, 1);
    int fill = 0;
    std::string payload = ArmorBits(w.bits(), &fill);
    corpus.emplace_back(std::move(payload), fill);
  }
  return corpus;
}

/// Decodes one (payload, fill) pair through the frozen byte path and the
/// packed path and requires exactly equal outcomes: unarmor status, decode
/// status (code and message), and — when decoding succeeds — byte-identical
/// re-encodings in both representations.
void ExpectPayloadDecodeEquivalent(std::string_view payload, int fill) {
  std::vector<uint8_t> byte_bits;
  PackedBits packed_bits;
  const Status bs = UnarmorPayloadInto(payload, fill, &byte_bits);
  const Status ps = UnarmorPayloadInto(payload, fill, &packed_bits);
  ASSERT_EQ(bs, ps) << "payload \"" << payload << "\" fill " << fill;
  if (!bs.ok()) return;
  ExpectBitsEqual(byte_bits, packed_bits);

  const Result<AisMessage> byte_msg = DecodeMessageBits(byte_bits);
  const Result<AisMessage> packed_msg = DecodeMessageBits(packed_bits);
  ASSERT_EQ(byte_msg.status(), packed_msg.status())
      << "payload \"" << payload << "\" fill " << fill;
  if (!byte_msg.ok()) return;
  ASSERT_EQ(byte_msg->index(), packed_msg->index());
  const auto byte_re = EncodeMessageBits(*byte_msg);
  const auto packed_re = EncodeMessageBits(*packed_msg);
  ASSERT_TRUE(byte_re.ok() && packed_re.ok());
  ASSERT_EQ(*byte_re, *packed_re);
  // And through the packed encoder as well: the four path combinations
  // (byte/packed decode x byte/packed encode) all agree.
  const auto byte_pe = EncodeMessagePacked(*byte_msg);
  const auto packed_pe = EncodeMessagePacked(*packed_msg);
  ASSERT_TRUE(byte_pe.ok() && packed_pe.ok());
  ASSERT_EQ(*byte_pe, *packed_pe);
  ExpectBitsEqual(*byte_re, *packed_pe);
}

TEST(PackedDecodeDifferentialTest, ValidCorpusDecodesByteIdentically) {
  for (const auto& [payload, fill] : SupportedTypeCorpus()) {
    ExpectPayloadDecodeEquivalent(payload, fill);
  }
}

TEST(PackedDecodeDifferentialTest, TruncatedPayloadsDecodeByteIdentically) {
  // Chop every corpus payload at every character boundary: exercises the
  // bit-stream-exhausted path at every field of every message type.
  for (const auto& [payload, fill] : SupportedTypeCorpus()) {
    for (size_t len = 0; len <= payload.size(); ++len) {
      ExpectPayloadDecodeEquivalent(std::string_view(payload.data(), len),
                                    len == payload.size() ? fill : 0);
    }
  }
}

TEST(PackedDecodeDifferentialTest, BadFillAndCorruptionDecodeByteIdentically) {
  for (const auto& [payload, fill] : SupportedTypeCorpus()) {
    // Over-truncation via extra fill bits shifts the message end.
    for (int extra_fill = 0; extra_fill <= 5; ++extra_fill) {
      ExpectPayloadDecodeEquivalent(payload, extra_fill);
    }
    // Corrupt one character per position stride with an illegal byte.
    std::string corrupt = payload;
    for (size_t pos = 0; pos < corrupt.size(); pos += 5) {
      const char saved = corrupt[pos];
      corrupt[pos] = '\x19';
      ExpectPayloadDecodeEquivalent(corrupt, fill);
      corrupt[pos] = saved;
    }
  }
}

TEST(PackedDecodeDifferentialTest, MultiFragmentPayloadsDecodeByteIdentically) {
  // Fragmented type-5 payloads reassembled by the production assembler,
  // then decoded through both bit paths.
  AisEncoder::Options frag_opts;
  frag_opts.max_payload_chars = 24;
  AisEncoder encoder(frag_opts);
  AivdmAssembler assembler;
  int assembled = 0;
  for (int i = 0; i < 20; ++i) {
    StaticVoyageData sv;
    sv.mmsi = 230000000u + static_cast<uint32_t>(i);
    sv.name = "FRAGMENTED VESSEL " + std::to_string(i);
    sv.call_sign = "FR" + std::to_string(i);
    sv.destination = "ROTTERDAM";
    const auto lines = encoder.Encode(AisMessage(sv));
    ASSERT_TRUE(lines.ok());
    ASSERT_GT(lines->size(), 1u);
    for (const std::string& line : *lines) {
      const ParsedLine parsed = AisDecoder::Parse(line, 0);
      ASSERT_TRUE(parsed.ok);
      const auto result = assembler.Add(parsed.sentence, 0);
      ASSERT_TRUE(result.ok());
      if (result->has_value()) {
        ExpectPayloadDecodeEquivalent((*result)->payload, (*result)->fill_bits);
        ++assembled;
      }
    }
  }
  EXPECT_EQ(assembled, 20);
}

// --- Shard-concurrent decoder independence (tsan-critical) ------------------

TEST(PackedConcurrencyTest, ParallelDecodersMatchSequentialByteForByte) {
  // Each shard worker owns an AisDecoder whose pooled PackedBits scratch
  // must be fully private: N threads replaying the same shared corpus must
  // each reproduce the sequential result exactly.
  std::vector<std::string> corpus;
  AisEncoder encoder;
  for (int i = 0; i < 300; ++i) {
    const auto enc = encoder.Encode(AisMessage(CorpusPosition(i)));
    ASSERT_TRUE(enc.ok());
    for (const auto& line : *enc) corpus.push_back(line);
  }
  corpus.push_back("garbage line");
  corpus.push_back("!AIVDM,1,1,,B,xx*00");

  auto replay = [&corpus]() {
    AisDecoder decoder;
    std::vector<std::vector<uint8_t>> out;
    for (const std::string& line : corpus) {
      const auto msg = decoder.Decode(line, 1700000000000ll);
      if (msg.has_value()) out.push_back(*EncodeMessageBits(*msg));
    }
    return out;
  };
  const auto expected = replay();
  ASSERT_EQ(expected.size(), 300u);

  constexpr int kThreads = 4;
  std::vector<std::vector<std::vector<uint8_t>>> results(kThreads);
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&results, &replay, t]() { results[t] = replay(); });
  }
  for (auto& th : threads) th.join();
  for (int t = 0; t < kThreads; ++t) {
    EXPECT_EQ(results[t], expected) << "thread " << t;
  }
}

}  // namespace
}  // namespace marlin
