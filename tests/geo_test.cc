// Unit tests for marlin_geo: geodesy, geometry, kinematics.

#include <gtest/gtest.h>

#include <cmath>

#include "common/rng.h"
#include "common/units.h"
#include "geo/geodesy.h"
#include "geo/geometry.h"
#include "geo/kinematics.h"

namespace marlin {
namespace {

// --- GeoPoint ---------------------------------------------------------------

TEST(GeoPointTest, ValidityRules) {
  EXPECT_TRUE(GeoPoint(0, 0).IsValid());
  EXPECT_TRUE(GeoPoint(-90, -180).IsValid());
  EXPECT_TRUE(GeoPoint(90, 180).IsValid());
  EXPECT_FALSE(GeoPoint().IsValid());  // AIS "not available" default
  EXPECT_FALSE(GeoPoint(91, 0).IsValid());
  EXPECT_FALSE(GeoPoint(0, 181).IsValid());
  EXPECT_FALSE(GeoPoint(NAN, 0).IsValid());
}

// --- Haversine --------------------------------------------------------------

TEST(GeodesyTest, HaversineZeroDistance) {
  const GeoPoint p(43.0, 5.0);
  EXPECT_DOUBLE_EQ(HaversineDistance(p, p), 0.0);
}

TEST(GeodesyTest, HaversineOneDegreeLatitude) {
  // 1 degree of latitude ≈ 111.2 km on the mean sphere.
  const double d =
      HaversineDistance(GeoPoint(40.0, 5.0), GeoPoint(41.0, 5.0));
  EXPECT_NEAR(d, 111195.0, 100.0);
}

TEST(GeodesyTest, HaversineEquatorLongitude) {
  const double d = HaversineDistance(GeoPoint(0.0, 0.0), GeoPoint(0.0, 1.0));
  EXPECT_NEAR(d, 111195.0, 100.0);
}

TEST(GeodesyTest, HaversineSymmetric) {
  const GeoPoint a(36.9, -5.2), b(43.2, 8.1);
  EXPECT_DOUBLE_EQ(HaversineDistance(a, b), HaversineDistance(b, a));
}

TEST(GeodesyTest, HaversineAntipodal) {
  const double d =
      HaversineDistance(GeoPoint(0.0, 0.0), GeoPoint(0.0, 180.0));
  EXPECT_NEAR(d, kPi * kEarthRadiusMetres, 1.0);
}

// --- Bearing / destination ----------------------------------------------

TEST(GeodesyTest, BearingCardinalDirections) {
  const GeoPoint origin(40.0, 5.0);
  EXPECT_NEAR(InitialBearing(origin, GeoPoint(41.0, 5.0)), 0.0, 1e-9);
  EXPECT_NEAR(InitialBearing(origin, GeoPoint(39.0, 5.0)), 180.0, 1e-9);
  EXPECT_NEAR(InitialBearing(origin, GeoPoint(40.0, 6.0)), 90.0, 0.5);
  EXPECT_NEAR(InitialBearing(origin, GeoPoint(40.0, 4.0)), 270.0, 0.5);
}

TEST(GeodesyTest, DestinationRoundTrip) {
  Rng rng(31);
  for (int i = 0; i < 200; ++i) {
    const GeoPoint origin(rng.Uniform(-60, 60), rng.Uniform(-170, 170));
    const double bearing = rng.Uniform(0, 360);
    const double dist = rng.Uniform(10.0, 200000.0);
    const GeoPoint dest = Destination(origin, bearing, dist);
    EXPECT_NEAR(HaversineDistance(origin, dest), dist, dist * 1e-9 + 1e-6);
    EXPECT_NEAR(AngleDifference(InitialBearing(origin, dest), bearing), 0.0,
                0.01);
  }
}

TEST(GeodesyTest, InterpolateEndpoints) {
  const GeoPoint a(36.0, -5.0), b(43.0, 8.0);
  EXPECT_EQ(Interpolate(a, b, 0.0), a);
  EXPECT_EQ(Interpolate(a, b, 1.0), b);
}

TEST(GeodesyTest, InterpolateMidpointOnPath) {
  const GeoPoint a(40.0, 0.0), b(40.0, 10.0);
  const GeoPoint mid = Interpolate(a, b, 0.5);
  const double d_am = HaversineDistance(a, mid);
  const double d_mb = HaversineDistance(mid, b);
  EXPECT_NEAR(d_am, d_mb, 1.0);
  // A great circle between equal latitudes passes poleward of them.
  EXPECT_GT(mid.lat, 40.0);
}

TEST(GeodesyTest, InterpolateFractionProportional) {
  const GeoPoint a(10.0, 10.0), b(12.0, 14.0);
  const double total = HaversineDistance(a, b);
  for (double f : {0.1, 0.25, 0.5, 0.75, 0.9}) {
    const GeoPoint p = Interpolate(a, b, f);
    EXPECT_NEAR(HaversineDistance(a, p), f * total, total * 1e-6);
  }
}

// --- Cross-track / along-track -------------------------------------------

TEST(GeodesyTest, CrossTrackSignConvention) {
  const GeoPoint start(40.0, 0.0), end(40.0, 2.0);
  // North of an eastbound path = left = negative.
  EXPECT_LT(CrossTrackDistance(GeoPoint(40.2, 1.0), start, end), 0.0);
  EXPECT_GT(CrossTrackDistance(GeoPoint(39.8, 1.0), start, end), 0.0);
}

TEST(GeodesyTest, CrossTrackMagnitude) {
  const GeoPoint start(0.0, 0.0), end(0.0, 2.0);
  const double d = std::abs(
      CrossTrackDistance(GeoPoint(0.5, 1.0), start, end));
  EXPECT_NEAR(d, HaversineDistance(GeoPoint(0.5, 1.0), GeoPoint(0.0, 1.0)),
              200.0);
}

TEST(GeodesyTest, AlongTrackBehindStartIsNegative) {
  const GeoPoint start(0.0, 1.0), end(0.0, 2.0);
  EXPECT_LT(AlongTrackDistance(GeoPoint(0.0, 0.5), start, end), 0.0);
  EXPECT_GT(AlongTrackDistance(GeoPoint(0.0, 1.5), start, end), 0.0);
}

TEST(GeodesyTest, DistanceToSegmentClamps) {
  const GeoPoint a(0.0, 0.0), b(0.0, 1.0);
  // Beyond the end: distance to endpoint, not the infinite great circle.
  const GeoPoint beyond(0.0, 1.5);
  EXPECT_NEAR(DistanceToSegment(beyond, a, b),
              HaversineDistance(beyond, b), 1.0);
  const GeoPoint before(0.0, -0.5);
  EXPECT_NEAR(DistanceToSegment(before, a, b),
              HaversineDistance(before, a), 1.0);
  // Abeam the middle: the cross-track distance.
  const GeoPoint abeam(0.3, 0.5);
  EXPECT_NEAR(DistanceToSegment(abeam, a, b),
              std::abs(CrossTrackDistance(abeam, a, b)), 1.0);
}

// --- Rhumb lines -------------------------------------------------------------

TEST(GeodesyTest, RhumbAlongMeridianEqualsGreatCircle) {
  const GeoPoint a(10.0, 5.0), b(20.0, 5.0);
  EXPECT_NEAR(RhumbDistance(a, b), HaversineDistance(a, b), 10.0);
  EXPECT_NEAR(RhumbBearing(a, b), 0.0, 1e-9);
}

TEST(GeodesyTest, RhumbIsLongerThanGreatCircle) {
  const GeoPoint a(40.0, -70.0), b(50.0, 0.0);  // transatlantic
  EXPECT_GE(RhumbDistance(a, b), HaversineDistance(a, b));
}

TEST(GeodesyTest, RhumbBearingConstantEastAtEquator) {
  EXPECT_NEAR(RhumbBearing(GeoPoint(0, 0), GeoPoint(0, 10)), 90.0, 1e-9);
}

// --- LocalProjection ---------------------------------------------------------

TEST(ProjectionTest, RoundTripNearOrigin) {
  const LocalProjection proj(GeoPoint(43.0, 5.0));
  Rng rng(37);
  for (int i = 0; i < 200; ++i) {
    const GeoPoint p(43.0 + rng.Uniform(-0.5, 0.5),
                     5.0 + rng.Uniform(-0.5, 0.5));
    const GeoPoint back = proj.Unproject(proj.Project(p));
    EXPECT_NEAR(back.lat, p.lat, 1e-9);
    EXPECT_NEAR(back.lon, p.lon, 1e-9);
  }
}

TEST(ProjectionTest, DistancesMatchHaversine) {
  const LocalProjection proj(GeoPoint(43.0, 5.0));
  const GeoPoint a(43.1, 5.1), b(42.95, 4.9);
  const double enu_dist = (proj.Project(a) - proj.Project(b)).Norm();
  const double hav = HaversineDistance(a, b);
  EXPECT_NEAR(enu_dist, hav, hav * 0.002);
}

TEST(ProjectionTest, AxesOrientation) {
  const LocalProjection proj(GeoPoint(40.0, 5.0));
  EXPECT_GT(proj.Project(GeoPoint(40.1, 5.0)).north, 0.0);
  EXPECT_NEAR(proj.Project(GeoPoint(40.1, 5.0)).east, 0.0, 1e-9);
  EXPECT_GT(proj.Project(GeoPoint(40.0, 5.1)).east, 0.0);
}

// --- BoundingBox ---------------------------------------------------------

TEST(BoundingBoxTest, EmptyAndExtend) {
  BoundingBox box = BoundingBox::Empty();
  EXPECT_TRUE(box.IsEmpty());
  box.Extend(GeoPoint(10, 20));
  EXPECT_FALSE(box.IsEmpty());
  EXPECT_TRUE(box.Contains(GeoPoint(10, 20)));
  box.Extend(GeoPoint(12, 18));
  EXPECT_TRUE(box.Contains(GeoPoint(11, 19)));
  EXPECT_FALSE(box.Contains(GeoPoint(9, 19)));
}

TEST(BoundingBoxTest, IntersectionCases) {
  const BoundingBox a(0, 0, 10, 10);
  EXPECT_TRUE(a.Intersects(BoundingBox(5, 5, 15, 15)));
  EXPECT_TRUE(a.Intersects(BoundingBox(10, 10, 20, 20)));  // corner touch
  EXPECT_FALSE(a.Intersects(BoundingBox(11, 0, 20, 10)));
  EXPECT_TRUE(a.Intersects(BoundingBox(2, 2, 3, 3)));  // containment
}

TEST(BoundingBoxTest, ExpandedAndCenter) {
  const BoundingBox box(10, 20, 12, 24);
  const BoundingBox big = box.Expanded(1.0);
  EXPECT_TRUE(big.Contains(GeoPoint(9.5, 19.5)));
  const GeoPoint c = box.Center();
  EXPECT_DOUBLE_EQ(c.lat, 11.0);
  EXPECT_DOUBLE_EQ(c.lon, 22.0);
}

// --- Polygon -------------------------------------------------------------

TEST(PolygonTest, SquareContainment) {
  const Polygon square({GeoPoint(0, 0), GeoPoint(0, 10), GeoPoint(10, 10),
                        GeoPoint(10, 0)});
  EXPECT_TRUE(square.Contains(GeoPoint(5, 5)));
  EXPECT_FALSE(square.Contains(GeoPoint(15, 5)));
  EXPECT_FALSE(square.Contains(GeoPoint(-1, 5)));
}

TEST(PolygonTest, ConcavePolygon) {
  // A "U" shape: the notch is outside.
  const Polygon u({GeoPoint(0, 0), GeoPoint(0, 10), GeoPoint(10, 10),
                   GeoPoint(10, 6), GeoPoint(4, 6), GeoPoint(4, 4),
                   GeoPoint(10, 4), GeoPoint(10, 0)});
  EXPECT_TRUE(u.Contains(GeoPoint(2, 5)));
  EXPECT_FALSE(u.Contains(GeoPoint(7, 5)));  // inside the notch
  EXPECT_TRUE(u.Contains(GeoPoint(7, 8)));
}

TEST(PolygonTest, CircleApproximation) {
  const GeoPoint centre(40.0, 5.0);
  const Polygon circle = Polygon::Circle(centre, 5000.0, 32);
  EXPECT_TRUE(circle.Contains(centre));
  EXPECT_TRUE(circle.Contains(Destination(centre, 123.0, 4000.0)));
  EXPECT_FALSE(circle.Contains(Destination(centre, 45.0, 6000.0)));
}

TEST(PolygonTest, DistanceToBoundary) {
  const Polygon square({GeoPoint(0, 0), GeoPoint(0, 1), GeoPoint(1, 1),
                        GeoPoint(1, 0)});
  const double d = square.DistanceToBoundary(GeoPoint(0.5, 0.5));
  // Half a degree ≈ 55.6 km to the nearest edge.
  EXPECT_NEAR(d, 55597.0, 600.0);
}

TEST(PolygonTest, EmptyPolygonContainsNothing) {
  Polygon empty;
  EXPECT_TRUE(empty.IsEmpty());
  EXPECT_FALSE(empty.Contains(GeoPoint(0, 0)));
}

// --- Convex hull ----------------------------------------------------------

TEST(ConvexHullTest, SquareWithInteriorPoints) {
  std::vector<GeoPoint> pts = {GeoPoint(0, 0), GeoPoint(0, 10),
                               GeoPoint(10, 10), GeoPoint(10, 0),
                               GeoPoint(5, 5), GeoPoint(2, 7)};
  const auto hull = ConvexHull(pts);
  EXPECT_EQ(hull.size(), 4u);
}

TEST(ConvexHullTest, CollinearPointsCollapse) {
  std::vector<GeoPoint> pts = {GeoPoint(0, 0), GeoPoint(0, 5),
                               GeoPoint(0, 10)};
  const auto hull = ConvexHull(pts);
  EXPECT_EQ(hull.size(), 2u);
}

TEST(ConvexHullTest, HullContainsAllPoints) {
  Rng rng(41);
  std::vector<GeoPoint> pts;
  for (int i = 0; i < 100; ++i) {
    pts.push_back(GeoPoint(rng.Uniform(0, 10), rng.Uniform(0, 10)));
  }
  const Polygon hull(ConvexHull(pts));
  for (const auto& p : pts) {
    EXPECT_TRUE(hull.Contains(p) || hull.DistanceToBoundary(p) < 1000.0);
  }
}

// --- Polyline ops -----------------------------------------------------------

TEST(PolylineTest, LengthOfStraightLine) {
  const std::vector<GeoPoint> line = {GeoPoint(0, 0), GeoPoint(0, 1),
                                      GeoPoint(0, 2)};
  EXPECT_NEAR(PolylineLength(line),
              HaversineDistance(GeoPoint(0, 0), GeoPoint(0, 2)), 1.0);
}

TEST(PolylineTest, DouglasPeuckerRemovesCollinear) {
  // A meridian is a great circle, so intermediate points are exactly on the
  // path (a constant-latitude parallel would NOT be: it bulges ~120 m per
  // degree of longitude at mid-latitudes).
  std::vector<GeoPoint> line;
  for (int i = 0; i <= 100; ++i) {
    line.push_back(GeoPoint(40.0 + 0.01 * i, 5.0));
  }
  const auto simplified = SimplifyDouglasPeucker(line, 50.0);
  EXPECT_EQ(simplified.size(), 2u);
}

TEST(PolylineTest, DouglasPeuckerKeepsCorner) {
  std::vector<GeoPoint> line;
  for (int i = 0; i <= 50; ++i) line.push_back(GeoPoint(40.0, 5.0 + 0.01 * i));
  for (int i = 1; i <= 50; ++i) line.push_back(GeoPoint(40.0 + 0.01 * i, 5.5));
  const auto simplified = SimplifyDouglasPeucker(line, 50.0);
  ASSERT_GE(simplified.size(), 3u);
  // The corner point must survive.
  bool found_corner = false;
  for (const auto& p : simplified) {
    if (std::abs(p.lat - 40.0) < 1e-9 && std::abs(p.lon - 5.5) < 1e-9) {
      found_corner = true;
    }
  }
  EXPECT_TRUE(found_corner);
}

TEST(PolylineTest, DouglasPeuckerErrorBound) {
  // Property: every original point is within tolerance of the simplified line.
  Rng rng(43);
  std::vector<GeoPoint> line;
  double lat = 40.0, lon = 5.0;
  for (int i = 0; i < 200; ++i) {
    lat += rng.Uniform(-0.01, 0.012);
    lon += rng.Uniform(0.0, 0.02);
    line.push_back(GeoPoint(lat, lon));
  }
  const double tol = 500.0;
  const auto simplified = SimplifyDouglasPeucker(line, tol);
  EXPECT_LT(simplified.size(), line.size());
  for (const auto& p : line) {
    EXPECT_LE(DistanceToPolyline(p, simplified), tol * 1.01);
  }
}

TEST(PolylineTest, ResampleCountAndEndpoints) {
  const std::vector<GeoPoint> line = {GeoPoint(0, 0), GeoPoint(0, 2)};
  const auto resampled = ResamplePolyline(line, 5);
  ASSERT_EQ(resampled.size(), 5u);
  EXPECT_EQ(resampled.front(), line.front());
  EXPECT_NEAR(resampled.back().lon, 2.0, 1e-6);
  // Equal spacing.
  const double d01 = HaversineDistance(resampled[0], resampled[1]);
  const double d12 = HaversineDistance(resampled[1], resampled[2]);
  EXPECT_NEAR(d01, d12, d01 * 0.01);
}

// --- CPA / kinematics ------------------------------------------------------

TEST(CpaTest, HeadOnCollisionCourse) {
  MotionState a, b;
  a.position = GeoPoint(40.0, 5.0);
  a.speed_mps = 5.0;
  a.course_deg = 90.0;  // east
  b.position = Destination(a.position, 90.0, 10000.0);
  b.speed_mps = 5.0;
  b.course_deg = 270.0;  // west, toward a
  const CpaResult cpa = ComputeCpa(a, b);
  EXPECT_TRUE(cpa.converging);
  EXPECT_NEAR(cpa.tcpa_s, 1000.0, 5.0);  // 10 km at 10 m/s closing
  EXPECT_LT(cpa.distance_m, 50.0);
}

TEST(CpaTest, ParallelCoursesNeverConverge) {
  MotionState a, b;
  a.position = GeoPoint(40.0, 5.0);
  a.speed_mps = 6.0;
  a.course_deg = 0.0;
  b.position = Destination(a.position, 90.0, 2000.0);
  b.speed_mps = 6.0;
  b.course_deg = 0.0;
  const CpaResult cpa = ComputeCpa(a, b);
  EXPECT_FALSE(cpa.converging);
  EXPECT_NEAR(cpa.distance_m, 2000.0, 20.0);
}

TEST(CpaTest, DivergingShipsReportCurrentDistance) {
  MotionState a, b;
  a.position = GeoPoint(40.0, 5.0);
  a.speed_mps = 5.0;
  a.course_deg = 270.0;
  b.position = Destination(a.position, 90.0, 3000.0);
  b.speed_mps = 5.0;
  b.course_deg = 90.0;
  const CpaResult cpa = ComputeCpa(a, b);
  EXPECT_FALSE(cpa.converging);
  EXPECT_NEAR(cpa.distance_m, 3000.0, 30.0);
  EXPECT_DOUBLE_EQ(cpa.tcpa_s, 0.0);
}

TEST(CpaTest, CrossingGeometry) {
  // B crosses A's bow: CPA below separation but above zero.
  MotionState a, b;
  a.position = GeoPoint(40.0, 5.0);
  a.speed_mps = 5.0;
  a.course_deg = 0.0;  // north
  b.position = Destination(Destination(a.position, 0.0, 5000.0), 90.0, 5000.0);
  b.speed_mps = 5.0;
  b.course_deg = 270.0;  // west
  const CpaResult cpa = ComputeCpa(a, b);
  EXPECT_TRUE(cpa.converging);
  EXPECT_GT(cpa.distance_m, 0.0);
  EXPECT_LT(cpa.distance_m, 5000.0);
}

TEST(DeadReckonTest, AdvancesAlongCourse) {
  MotionState s;
  s.position = GeoPoint(40.0, 5.0);
  s.speed_mps = 10.0;
  s.course_deg = 90.0;
  const GeoPoint p = DeadReckon(s, 600.0);
  EXPECT_NEAR(HaversineDistance(s.position, p), 6000.0, 1.0);
  EXPECT_NEAR(InitialBearing(s.position, p), 90.0, 0.1);
}

}  // namespace
}  // namespace marlin
