// Unit tests for marlin_rdf: dictionary, triple store, BGP queries,
// semantic trajectory annotation, link discovery.

#include <gtest/gtest.h>

#include <set>

#include "common/rng.h"
#include "rdf/annotator.h"
#include "rdf/dictionary.h"
#include "rdf/link_discovery.h"
#include "rdf/triple_store.h"
#include "rdf/vocabulary.h"

namespace marlin {
namespace {

// --- TermDictionary ---------------------------------------------------------

TEST(DictionaryTest, InternIsIdempotent) {
  TermDictionary dict;
  const TermId a = dict.Iri("dtc:Vessel");
  const TermId b = dict.Iri("dtc:Vessel");
  EXPECT_EQ(a, b);
  EXPECT_EQ(dict.size(), 1u);
}

TEST(DictionaryTest, KindsAreDistinct) {
  TermDictionary dict;
  const TermId iri = dict.Iri("42");
  const TermId str = dict.Literal("42");
  const TermId num = dict.IntLiteral(42);
  EXPECT_NE(iri, str);
  EXPECT_NE(str, num);
  EXPECT_EQ(dict.Kind(iri), TermKind::kIri);
  EXPECT_EQ(dict.Kind(str), TermKind::kString);
  EXPECT_EQ(dict.Kind(num), TermKind::kInt);
}

TEST(DictionaryTest, FindWithoutIntern) {
  TermDictionary dict;
  EXPECT_EQ(dict.Find(TermKind::kIri, "missing"), kInvalidTermId);
  const TermId id = dict.Iri("present");
  EXPECT_EQ(dict.Find(TermKind::kIri, "present"), id);
}

TEST(DictionaryTest, NumericValues) {
  TermDictionary dict;
  EXPECT_DOUBLE_EQ(dict.NumericValue(dict.IntLiteral(-17)), -17.0);
  EXPECT_NEAR(dict.NumericValue(dict.DoubleLiteral(3.25)), 3.25, 1e-9);
  EXPECT_DOUBLE_EQ(dict.NumericValue(dict.Literal("text")), 0.0);
}

TEST(DictionaryTest, LexicalRoundTrip) {
  TermDictionary dict;
  const TermId id = dict.Iri("dtc:vessel/228000001");
  EXPECT_EQ(dict.Lexical(id), "dtc:vessel/228000001");
}

// --- TripleStore ----------------------------------------------------------

class TripleStoreTest : public ::testing::Test {
 protected:
  TripleStoreTest() : store_(&dict_) {
    // Small ship graph.
    v1_ = dict_.Iri("v1");
    v2_ = dict_.Iri("v2");
    type_ = dict_.Iri(vocab::kType);
    vessel_ = dict_.Iri(vocab::kVessel);
    flag_ = dict_.Iri(vocab::kFlag);
    fr_ = dict_.Literal("FR");
    mt_ = dict_.Literal("MT");
    store_.Add(v1_, type_, vessel_);
    store_.Add(v2_, type_, vessel_);
    store_.Add(v1_, flag_, fr_);
    store_.Add(v2_, flag_, mt_);
  }
  TermDictionary dict_;
  TripleStore store_;
  TermId v1_, v2_, type_, vessel_, flag_, fr_, mt_;
};

TEST_F(TripleStoreTest, MatchBySubject) {
  const auto hits = store_.Match(v1_, std::nullopt, std::nullopt);
  EXPECT_EQ(hits.size(), 2u);
}

TEST_F(TripleStoreTest, MatchByPredicateObject) {
  const auto hits = store_.Match(std::nullopt, type_, vessel_);
  EXPECT_EQ(hits.size(), 2u);
  const auto flags = store_.Match(std::nullopt, flag_, fr_);
  ASSERT_EQ(flags.size(), 1u);
  EXPECT_EQ(flags[0].s, v1_);
}

TEST_F(TripleStoreTest, MatchByObjectOnly) {
  const auto hits = store_.Match(std::nullopt, std::nullopt, mt_);
  ASSERT_EQ(hits.size(), 1u);
  EXPECT_EQ(hits[0].s, v2_);
}

TEST_F(TripleStoreTest, FullScanAndDedup) {
  store_.Add(v1_, type_, vessel_);  // duplicate
  store_.Commit();
  EXPECT_EQ(store_.size(), 4u);
  const auto all = store_.Match(std::nullopt, std::nullopt, std::nullopt);
  EXPECT_EQ(all.size(), 4u);
}

TEST_F(TripleStoreTest, BgpJoinFindsFrenchVessels) {
  // ?v rdf:type dtc:Vessel . ?v dtc:flag "FR"
  using TP = TriplePattern;
  const std::vector<TriplePattern> bgp = {
      {TP::Var(0), static_cast<int64_t>(type_), static_cast<int64_t>(vessel_)},
      {TP::Var(0), static_cast<int64_t>(flag_), static_cast<int64_t>(fr_)},
  };
  const auto rows = store_.Query(bgp, 1);
  ASSERT_EQ(rows.size(), 1u);
  EXPECT_EQ(rows[0][0], v1_);
}

TEST_F(TripleStoreTest, BgpWithTwoVariables) {
  // ?v dtc:flag ?f — every vessel with its flag.
  using TP = TriplePattern;
  const std::vector<TriplePattern> bgp = {
      {TP::Var(0), static_cast<int64_t>(flag_), TP::Var(1)},
  };
  const auto rows = store_.Query(bgp, 2);
  EXPECT_EQ(rows.size(), 2u);
}

TEST_F(TripleStoreTest, BgpNoMatches) {
  using TP = TriplePattern;
  const TermId missing = dict_.Literal("XX");
  const std::vector<TriplePattern> bgp = {
      {TP::Var(0), static_cast<int64_t>(flag_), static_cast<int64_t>(missing)},
  };
  EXPECT_TRUE(store_.Query(bgp, 1).empty());
}

TEST_F(TripleStoreTest, SharedVariableJoinConsistency) {
  // ?a flag ?f . ?b flag ?f  — pairs sharing a flag (incl. self-pairs).
  using TP = TriplePattern;
  const std::vector<TriplePattern> bgp = {
      {TP::Var(0), static_cast<int64_t>(flag_), TP::Var(2)},
      {TP::Var(1), static_cast<int64_t>(flag_), TP::Var(2)},
  };
  const auto rows = store_.Query(bgp, 3);
  // v1-v1 (FR) and v2-v2 (MT): flags are unique, so only self-pairs.
  EXPECT_EQ(rows.size(), 2u);
  for (const auto& row : rows) EXPECT_EQ(row[0], row[1]);
}

// --- Annotator -----------------------------------------------------------

Trajectory MakeTrajectory(uint32_t mmsi, int n) {
  Trajectory traj;
  traj.mmsi = mmsi;
  for (int i = 0; i < n; ++i) {
    TrajectoryPoint p;
    p.t = 1000000 + i * 10000;
    p.position = GeoPoint(40.0 + 0.001 * i, 5.0 + 0.002 * i);
    p.sog_mps = 8.0f + 0.1f * static_cast<float>(i % 3);
    p.cog_deg = 45.0f;
    traj.points.push_back(p);
  }
  return traj;
}

TEST(AnnotatorTest, EmitsExpectedGraphShape) {
  TermDictionary dict;
  TripleStore store(&dict);
  TrajectoryAnnotator annotator(&store);
  const Trajectory traj = MakeTrajectory(228000001, 10);
  const size_t emitted = annotator.Annotate(traj);
  EXPECT_GT(emitted, 10u * 7u);  // ≥ 7 triples per position
  store.Commit();
  // The vessel node exists with its MMSI.
  const TermId vessel =
      dict.Find(TermKind::kIri, TrajectoryAnnotator::VesselIri(228000001));
  ASSERT_NE(vessel, kInvalidTermId);
  const auto mmsi_triples =
      store.Match(vessel, dict.Find(TermKind::kIri, vocab::kMmsi),
                  std::nullopt);
  ASSERT_EQ(mmsi_triples.size(), 1u);
  EXPECT_DOUBLE_EQ(dict.NumericValue(mmsi_triples[0].o), 228000001.0);
}

TEST(AnnotatorTest, QueryBackMatchesOriginal) {
  TermDictionary dict;
  TripleStore store(&dict);
  TrajectoryAnnotator annotator(&store);
  const Trajectory traj = MakeTrajectory(228000001, 40);
  annotator.Annotate(traj);
  const auto points = QueryTrajectoryFromRdf(store, 228000001,
                                             traj.StartTime(), traj.EndTime());
  ASSERT_EQ(points.size(), traj.points.size());
  for (size_t i = 0; i < points.size(); ++i) {
    EXPECT_EQ(points[i].t, traj.points[i].t);
    EXPECT_NEAR(points[i].position.lat, traj.points[i].position.lat, 1e-7);
    EXPECT_NEAR(points[i].position.lon, traj.points[i].position.lon, 1e-7);
    EXPECT_NEAR(points[i].sog_mps, traj.points[i].sog_mps, 1e-4);
  }
}

TEST(AnnotatorTest, TimeWindowFilters) {
  TermDictionary dict;
  TripleStore store(&dict);
  TrajectoryAnnotator annotator(&store);
  const Trajectory traj = MakeTrajectory(1, 40);
  annotator.Annotate(traj);
  const auto points = QueryTrajectoryFromRdf(
      store, 1, traj.points[10].t, traj.points[19].t);
  EXPECT_EQ(points.size(), 10u);
}

TEST(AnnotatorTest, UnknownVesselYieldsNothing) {
  TermDictionary dict;
  TripleStore store(&dict);
  EXPECT_TRUE(QueryTrajectoryFromRdf(store, 42, 0, 1e15).empty());
}

TEST(AnnotatorTest, SegmentsChainViaNextSegment) {
  TermDictionary dict;
  TripleStore store(&dict);
  TrajectoryAnnotator::Options opts;
  opts.points_per_segment = 8;
  TrajectoryAnnotator annotator(&store, opts);
  annotator.Annotate(MakeTrajectory(7, 30));  // 4 segments
  store.Commit();
  const auto next_links = store.Match(
      std::nullopt, dict.Find(TermKind::kIri, vocab::kNextSegment),
      std::nullopt);
  EXPECT_EQ(next_links.size(), 3u);  // 4 segments → 3 chain edges
}

// --- Link discovery ---------------------------------------------------------

LinkEntity MakeVesselEntity(const std::string& id, const std::string& name,
                            double length, const std::string& flag) {
  LinkEntity e;
  e.id = id;
  e.strings["name"] = name;
  e.strings["flag"] = flag;
  e.numbers["length"] = length;
  return e;
}

LinkSpec VesselLinkSpec() {
  LinkSpec spec;
  spec.comparisons = {
      {"name", "name", LinkMetric::kLevenshtein, 0.6, 0.0},
      {"length", "length", LinkMetric::kNumericAbs, 0.3, 10.0},
      {"flag", "flag", LinkMetric::kExact, 0.1, 0.0},
  };
  spec.threshold = 0.8;
  spec.blocking_property = "name";
  spec.blocking_prefix = 3;
  return spec;
}

TEST(LinkDiscoveryTest, ExactDuplicatesLink) {
  const auto a = MakeVesselEntity("mt:1", "SEA SPIRIT", 120, "FR");
  const auto b = MakeVesselEntity("ll:9", "SEA SPIRIT", 120, "FR");
  EXPECT_DOUBLE_EQ(ScorePair(a, b, VesselLinkSpec()), 1.0);
}

TEST(LinkDiscoveryTest, SlightVariationsStillLink) {
  // The paper's scenario: "the length may differ slightly, or the flag may
  // be different due to a lack of update in one source".
  const auto a = MakeVesselEntity("mt:1", "SEA SPIRIT", 120, "FR");
  const auto b = MakeVesselEntity("ll:9", "SEA SPIRIT", 123, "MT");
  const double score = ScorePair(a, b, VesselLinkSpec());
  EXPECT_GT(score, 0.8);
  EXPECT_LT(score, 1.0);
}

TEST(LinkDiscoveryTest, DifferentVesselsDoNotLink) {
  const auto a = MakeVesselEntity("mt:1", "SEA SPIRIT", 120, "FR");
  const auto b = MakeVesselEntity("ll:9", "OCEAN QUEEN", 280, "PA");
  EXPECT_LT(ScorePair(a, b, VesselLinkSpec()), 0.5);
}

TEST(LinkDiscoveryTest, DiscoverWithBlocking) {
  std::vector<LinkEntity> source, target;
  Rng rng(113);
  for (int i = 0; i < 100; ++i) {
    // Leading letter varies so hash blocking actually partitions the space.
    const std::string name = std::string(1, static_cast<char>('A' + i % 26)) +
                             "X VESSEL " + std::to_string(i);
    // Lengths spread 7 m apart so near-duplicate *names* (VESSEL 1 vs
    // VESSEL 2) cannot sneak over the threshold via length similarity.
    const double length = 80 + i * 7;
    source.push_back(
        MakeVesselEntity("a:" + std::to_string(i), name, length, "FR"));
    // Target side: same vessels with small length perturbations.
    target.push_back(MakeVesselEntity("b:" + std::to_string(i), name,
                                      length + rng.Uniform(-2, 2), "FR"));
  }
  LinkStats stats;
  const auto links = DiscoverLinks(source, target, VesselLinkSpec(), &stats);
  EXPECT_EQ(links.size(), 100u);
  // Blocking must prune the quadratic space.
  EXPECT_LT(stats.candidate_pairs, stats.total_pairs);
  // Every link matches the right partner.
  for (const auto& link : links) {
    EXPECT_EQ(link.source_id.substr(2), link.target_id.substr(2));
  }
}

TEST(LinkDiscoveryTest, NoBlockingComparesAllPairs) {
  std::vector<LinkEntity> source = {MakeVesselEntity("a", "X", 100, "FR")};
  std::vector<LinkEntity> target = {MakeVesselEntity("b", "Y", 100, "FR"),
                                    MakeVesselEntity("c", "Z", 100, "FR")};
  LinkSpec spec = VesselLinkSpec();
  spec.blocking_property.clear();
  LinkStats stats;
  DiscoverLinks(source, target, spec, &stats);
  EXPECT_EQ(stats.candidate_pairs, 2u);
  EXPECT_EQ(stats.total_pairs, 2u);
}

TEST(LinkDiscoveryTest, GeoDistanceMetric) {
  LinkEntity a, b;
  a.id = "a";
  b.id = "b";
  a.points["pos"] = GeoPoint(40.0, 5.0);
  b.points["pos"] = GeoPoint(40.0, 5.01);  // ≈ 850 m apart
  LinkSpec spec;
  spec.comparisons = {{"pos", "pos", LinkMetric::kGeoDistance, 1.0, 2000.0}};
  spec.threshold = 0.5;
  const double score = ScorePair(a, b, spec);
  EXPECT_GT(score, 0.5);
  EXPECT_LT(score, 0.7);
}

TEST(LinkDiscoveryTest, ResultsSortedByScore) {
  std::vector<LinkEntity> source = {MakeVesselEntity("a", "ALPHA", 100, "FR")};
  std::vector<LinkEntity> target = {
      MakeVesselEntity("exact", "ALPHA", 100, "FR"),
      MakeVesselEntity("close", "ALPHA", 104, "FR")};
  LinkSpec spec = VesselLinkSpec();
  spec.threshold = 0.5;
  spec.blocking_property.clear();
  const auto links = DiscoverLinks(source, target, spec);
  ASSERT_EQ(links.size(), 2u);
  EXPECT_EQ(links[0].target_id, "exact");
  EXPECT_GE(links[0].score, links[1].score);
}

}  // namespace
}  // namespace marlin
