// Tests for the lock-free SPSC ring and the StageChannel fabric seam:
// wraparound FIFO order, close/drain end-of-stream, blocked-side wake-ups,
// randomized two-thread stress (the tsan-critical surface), a single-threaded
// differential script against BoundedQueue, and the hop-stats invariants.

#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <optional>
#include <thread>
#include <vector>

#include "common/rng.h"
#include "stream/channel.h"
#include "stream/queue.h"
#include "stream/spsc_ring.h"

namespace marlin {
namespace {

// --- Single-threaded semantics --------------------------------------------

TEST(SpscRingTest, CapacityRoundsUpToPowerOfTwo) {
  EXPECT_EQ(SpscRing<int>(1).capacity(), 2u);
  EXPECT_EQ(SpscRing<int>(2).capacity(), 2u);
  EXPECT_EQ(SpscRing<int>(3).capacity(), 4u);
  EXPECT_EQ(SpscRing<int>(4).capacity(), 4u);
  EXPECT_EQ(SpscRing<int>(1000).capacity(), 1024u);
}

TEST(SpscRingTest, FifoOrderAcrossWraparound) {
  SpscRing<int> ring(4);  // capacity 4: forces many wraps
  int next_out = 0;
  for (int i = 0; i < 100; ++i) {
    EXPECT_TRUE(ring.Push(i));
    if (i % 3 == 2) {  // drain in uneven gulps so head/tail wrap unaligned
      while (ring.size() > 0) EXPECT_EQ(*ring.Pop(), next_out++);
    }
  }
  while (ring.size() > 0) EXPECT_EQ(*ring.Pop(), next_out++);
  EXPECT_EQ(next_out, 100);
}

TEST(SpscRingTest, TryPushRespectsCapacityAndKeepsItem) {
  SpscRing<int> ring(2);
  int a = 1, b = 2, c = 3;
  EXPECT_TRUE(ring.TryPush(a));
  EXPECT_TRUE(ring.TryPush(b));
  EXPECT_FALSE(ring.TryPush(c));  // full: backpressure point
  EXPECT_EQ(c, 3);                // failed TryPush must not consume the item
  ring.Pop();
  EXPECT_TRUE(ring.TryPush(c));
}

TEST(SpscRingTest, CloseDrainsThenSignalsEnd) {
  SpscRing<int> ring(8);
  EXPECT_TRUE(ring.Push(1));
  EXPECT_TRUE(ring.Push(2));
  ring.Close();
  EXPECT_FALSE(ring.Push(3));  // closed: rejected
  EXPECT_EQ(*ring.Pop(), 1);
  EXPECT_EQ(*ring.Pop(), 2);
  EXPECT_FALSE(ring.Pop().has_value());  // end of stream
  std::vector<int> batch;
  EXPECT_EQ(ring.PopBatch(&batch, 8), 0u);
}

TEST(SpscRingTest, PushBatchPopBatchRoundTrip) {
  SpscRing<int> ring(8);
  int items[6] = {0, 1, 2, 3, 4, 5};
  EXPECT_EQ(ring.PushBatch(items, 6), 6u);
  std::vector<int> out;
  EXPECT_EQ(ring.PopBatch(&out, 4), 4u);  // caps at max_items
  EXPECT_EQ(ring.PopBatch(&out, 4), 2u);  // then drains the rest
  for (int i = 0; i < 6; ++i) EXPECT_EQ(out[i], i);
}

TEST(SpscRingTest, StatsCountPushedPoppedAndBatches) {
  SpscRing<int> ring(16);
  for (int i = 0; i < 10; ++i) ring.Push(i);
  std::vector<int> out;
  ring.PopBatch(&out, 16);  // one batch of 10 → bucket 8–15
  const QueueHopStats s = ring.stats();
  EXPECT_EQ(s.pushed, 10u);
  EXPECT_EQ(s.popped, 10u);
  EXPECT_EQ(s.depth_high_water, 10u);
  EXPECT_EQ(s.batch_hist[QueueHopStats::BatchBucket(10)], 1u);
  EXPECT_DOUBLE_EQ(s.MeanBatch(), 10.0);
  EXPECT_EQ(s.notifies, 0u);  // uncontended: no waiter, so no wake-up
}

// --- Blocking paths --------------------------------------------------------

TEST(SpscRingTest, BlockedConsumerWakesOnPush) {
  SpscRing<int> ring(4);
  std::thread consumer([&ring] {
    EXPECT_EQ(*ring.Pop(), 42);  // blocks (spin → park) until the push
  });
  // Give the consumer a moment to reach the empty-wait path.
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  ring.Push(42);
  consumer.join();
}

TEST(SpscRingTest, BlockedProducerWakesOnPop) {
  SpscRing<int> ring(2);
  ASSERT_TRUE(ring.Push(0));
  ASSERT_TRUE(ring.Push(1));
  std::thread producer([&ring] {
    EXPECT_TRUE(ring.Push(2));  // blocks until the consumer frees a slot
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  EXPECT_EQ(*ring.Pop(), 0);
  producer.join();
  EXPECT_EQ(*ring.Pop(), 1);
  EXPECT_EQ(*ring.Pop(), 2);
}

TEST(SpscRingTest, BlockedConsumerUnblocksOnClose) {
  SpscRing<int> ring(4);
  std::thread consumer([&ring] {
    EXPECT_FALSE(ring.Pop().has_value());  // parked, then woken by Close
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  ring.Close();
  consumer.join();
}

TEST(SpscRingTest, BlockedProducerUnblocksOnClose) {
  SpscRing<int> ring(2);
  ASSERT_TRUE(ring.Push(0));
  ASSERT_TRUE(ring.Push(1));
  std::thread producer([&ring] {
    EXPECT_FALSE(ring.Push(2));  // parked on full, rejected by Close
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  ring.Close();
  producer.join();
}

// --- Two-thread stress (the tsan-critical surface) -------------------------

TEST(SpscRingTest, ProducerConsumerStressSingletons) {
  SpscRing<uint64_t> ring(4);  // tiny capacity maximizes full/empty races
  constexpr uint64_t kCount = 200000;
  std::thread producer([&ring] {
    for (uint64_t i = 0; i < kCount; ++i) ASSERT_TRUE(ring.Push(i));
    ring.Close();
  });
  uint64_t expected = 0;
  while (auto item = ring.Pop()) {
    ASSERT_EQ(*item, expected);  // FIFO, no loss, no duplication
    ++expected;
  }
  producer.join();
  EXPECT_EQ(expected, kCount);
  const QueueHopStats s = ring.stats();
  EXPECT_EQ(s.pushed, kCount);
  EXPECT_EQ(s.popped, kCount);
}

TEST(SpscRingTest, ProducerConsumerStressRandomBatches) {
  SpscRing<uint64_t> ring(32);
  constexpr uint64_t kCount = 200000;
  std::thread producer([&ring] {
    Rng rng(7);
    uint64_t next = 0;
    uint64_t batch[17];
    while (next < kCount) {
      const size_t n = static_cast<size_t>(
          std::min<uint64_t>(1 + rng.NextBounded(17), kCount - next));
      for (size_t i = 0; i < n; ++i) batch[i] = next + i;
      ASSERT_EQ(ring.PushBatch(batch, n), n);
      next += n;
    }
    ring.Close();
  });
  Rng rng(13);
  std::vector<uint64_t> out;
  uint64_t expected = 0;
  while (true) {
    out.clear();
    const size_t n = ring.PopBatch(&out, 1 + rng.NextBounded(23));
    if (n == 0) break;
    for (size_t i = 0; i < n; ++i) ASSERT_EQ(out[i], expected++);
  }
  producer.join();
  EXPECT_EQ(expected, kCount);
  // Every pop was accounted to a batch bucket and the histogram is
  // consistent with the item count.
  const QueueHopStats s = ring.stats();
  EXPECT_EQ(s.popped, kCount);
  EXPECT_GE(s.batches(), kCount / 23);
  EXPECT_GT(s.MeanBatch(), 0.0);
}

// --- Differential vs BoundedQueue -----------------------------------------

// Replays one randomized single-threaded push/pop/batch script through the
// ring and the mutex queue and asserts identical observable behaviour:
// accepted pushes, delivered items, order, and end-of-stream.
TEST(SpscRingTest, DifferentialAgainstBoundedQueueScript) {
  constexpr size_t kCapacity = 8;  // power of two so both arms agree exactly
  for (uint64_t seed = 1; seed <= 20; ++seed) {
    SpscRing<int> ring(kCapacity);
    BoundedQueue<int> queue(kCapacity);
    Rng rng(seed);
    int next_value = 0;
    std::vector<int> ring_out, queue_out;
    bool closed = false;
    for (int step = 0; step < 500; ++step) {
      switch (rng.NextBounded(4)) {
        case 0: {  // TryPush one value
          int rv = next_value, qv = next_value;
          ++next_value;
          EXPECT_EQ(ring.TryPush(rv), queue.TryPush(qv));
          break;
        }
        case 1: {  // TryPop / Pop-if-nonempty
          std::optional<int> q = queue.TryPop();
          std::optional<int> r =
              ring.size() > 0 ? ring.Pop() : std::nullopt;
          EXPECT_EQ(r.has_value(), q.has_value());
          if (r) {
            EXPECT_EQ(*r, *q);
            ring_out.push_back(*r);
            queue_out.push_back(*q);
          }
          break;
        }
        case 2: {  // batch pop
          std::vector<int> r, q;
          const size_t want = 1 + rng.NextBounded(5);
          if (queue.size() > 0) queue.PopBatch(&q, want);
          if (ring.size() > 0) ring.PopBatch(&r, want);
          EXPECT_EQ(r, q);
          ring_out.insert(ring_out.end(), r.begin(), r.end());
          queue_out.insert(queue_out.end(), q.begin(), q.end());
          break;
        }
        case 3: {  // close late in the script
          if (step > 400 && !closed) {
            ring.Close();
            queue.Close();
            closed = true;
          }
          break;
        }
      }
      EXPECT_EQ(ring.size(), queue.size());
      EXPECT_EQ(ring.closed(), queue.closed());
    }
    // Drain both to end-of-stream and compare the full delivered streams.
    ring.Close();
    queue.Close();
    while (auto r = ring.Pop()) ring_out.push_back(*r);
    while (auto q = queue.Pop()) queue_out.push_back(*q);
    EXPECT_EQ(ring_out, queue_out) << "seed " << seed;
  }
}

// --- StageChannel seam ------------------------------------------------------

class StageChannelTest : public ::testing::TestWithParam<QueueFabric> {};

TEST_P(StageChannelTest, StressAndStatsInvariants) {
  StageChannel<uint64_t> channel(GetParam(), 16);
  constexpr uint64_t kCount = 100000;
  std::thread producer([&channel] {
    for (uint64_t i = 0; i < kCount; ++i) ASSERT_TRUE(channel.Push(i));
    channel.Close();
  });
  Rng rng(3);
  std::vector<uint64_t> out;
  uint64_t expected = 0;
  while (true) {
    out.clear();
    const size_t n = channel.PopBatch(&out, 1 + rng.NextBounded(31));
    if (n == 0) break;
    for (size_t i = 0; i < n; ++i) ASSERT_EQ(out[i], expected++);
  }
  producer.join();
  EXPECT_EQ(expected, kCount);
  const QueueHopStats s = channel.stats();
  EXPECT_EQ(s.pushed, kCount);
  EXPECT_EQ(s.popped, kCount);
  EXPECT_LE(s.depth_high_water, channel.capacity());
  // Each pop-batch carried between 1 and 31 items, so the batch count is
  // bracketed by the item count on both sides.
  EXPECT_GE(s.batches(), kCount / 31);
  EXPECT_LE(s.batches(), kCount);
}

TEST_P(StageChannelTest, PushLossyNeverBlocksAndAccountsDrops) {
  StageChannel<int> channel(GetParam(), 4, /*lossy=*/true);
  size_t total_dropped = 0;
  for (int i = 0; i < 100; ++i) {
    size_t dropped = 0;
    EXPECT_TRUE(channel.PushLossy(i, &dropped));
    total_dropped += dropped;
  }
  // No consumer ran: exactly capacity items survive, the rest were evicted.
  EXPECT_EQ(channel.size(), channel.capacity());
  EXPECT_EQ(total_dropped, 100 - channel.capacity());
  channel.Close();
  size_t dropped = 0;
  EXPECT_FALSE(channel.PushLossy(101, &dropped));  // closed: rejected
  EXPECT_EQ(dropped, 0u);
  // Overload semantics are evict-oldest on BOTH fabrics: the survivors are
  // exactly the newest `capacity` items, in FIFO order. (Before the
  // unification the ring arm dropped the newest and kept a stale prefix.)
  std::vector<int> survivors;
  while (auto item = channel.Pop()) survivors.push_back(*item);
  ASSERT_EQ(survivors.size(), channel.capacity());
  for (size_t i = 0; i < survivors.size(); ++i) {
    EXPECT_EQ(survivors[i], static_cast<int>(100 - channel.capacity() + i));
  }
}

// The cross-arm unification regression: run the exact same interleaved
// lossy-push / pop script against both fabrics and require that they shed
// the *identical* item set — not just the same count. This is what makes
// `lock_free_fabric` a pure performance switch even for shedding hops.
TEST(StageChannelTest, LossyArmsShedIdenticalItemSets) {
  Rng rng(17);
  for (int round = 0; round < 50; ++round) {
    StageChannel<int> ring(QueueFabric::kSpscRing, 8, /*lossy=*/true);
    StageChannel<int> mutex_arm(QueueFabric::kMutex, 8, /*lossy=*/true);
    std::vector<int> ring_out, mutex_out;
    size_t ring_dropped = 0, mutex_dropped = 0;
    int next = 0;
    for (int step = 0; step < 300; ++step) {
      if (rng.NextBounded(3) != 0) {  // push-heavy: force overload
        size_t d = 0;
        ASSERT_TRUE(ring.PushLossy(next, &d));
        ring_dropped += d;
        d = 0;
        ASSERT_TRUE(mutex_arm.PushLossy(next, &d));
        mutex_dropped += d;
        ++next;
      } else {
        std::vector<int> r, m;
        const size_t want = 1 + rng.NextBounded(3);
        if (ring.size() > 0) ring.PopBatch(&r, want);
        if (mutex_arm.size() > 0) mutex_arm.PopBatch(&m, want);
        EXPECT_EQ(r, m) << "round " << round << " step " << step;
        ring_out.insert(ring_out.end(), r.begin(), r.end());
        mutex_out.insert(mutex_out.end(), m.begin(), m.end());
      }
    }
    ring.Close();
    mutex_arm.Close();
    while (auto item = ring.Pop()) ring_out.push_back(*item);
    while (auto item = mutex_arm.Pop()) mutex_out.push_back(*item);
    // Identical survivors (and therefore identical shed sets), and both
    // arms uphold accepted == delivered + dropped.
    EXPECT_EQ(ring_out, mutex_out) << "round " << round;
    EXPECT_EQ(ring_dropped, mutex_dropped);
    EXPECT_EQ(ring_out.size() + ring_dropped, static_cast<size_t>(next));
  }
}

INSTANTIATE_TEST_SUITE_P(BothFabrics, StageChannelTest,
                         ::testing::Values(QueueFabric::kSpscRing,
                                           QueueFabric::kMutex),
                         [](const auto& info) {
                           return info.param == QueueFabric::kSpscRing
                                      ? "SpscRing"
                                      : "Mutex";
                         });

}  // namespace
}  // namespace marlin
