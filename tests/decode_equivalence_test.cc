// Decode-equivalence suite (CTest label: equivalence).
//
// PR 4 rebuilt the NMEA parse/de-armor inner loop to be zero-copy and
// steady-state allocation-free; PR 5 moved the bit layer onto 64-bit packed
// words (`PackedBits`, common/packed_bits.h). This suite pins the production
// path to the exact behaviour of the pre-refactor decoder: the `ref`
// namespace below is a frozen copy of the old string-allocating parser, and
// its decode half runs the frozen byte-per-bit bit layer (`UnarmorPayload`
// over a `std::vector<uint8_t>` of 0/1 plus the `BitReader` extraction) —
// so every stream test here is also the packed-vs-byte differential: each
// corpus (valid, truncated, bad-checksum, multi-fragment, TAG-blocked,
// garbage, plus the scenario sweep) replays through both, asserting
// byte-identical sentences, decoded messages, and counters. The final tests
// assert the allocation-free claim itself through the heap probe, for the
// full per-line loop and for the packed unarmor+decode layer in isolation.

#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <tuple>
#include <variant>
#include <vector>

#include <gtest/gtest.h>

#include "ais/codec.h"
#include "ais/messages.h"
#include "ais/nmea.h"
#include "ais/sixbit.h"
#include "common/alloc_probe.h"
#include "common/strings.h"
#include "sim/scenario.h"
#include "sim/world.h"

MARLIN_INSTALL_ALLOC_PROBE()

namespace marlin {
namespace {

// --- Frozen reference implementation (pre-PR-4 parser, verbatim) -----------

namespace ref {

Result<std::string> StripTagBlock(const std::string& line, TagBlock* tag) {
  if (line.empty() || line[0] != '\\') return line;
  const size_t end = line.find('\\', 1);
  if (end == std::string::npos) {
    return Status::Corruption("unterminated TAG block");
  }
  const std::string block = line.substr(1, end - 1);
  const size_t star = block.rfind('*');
  if (star == std::string::npos || star + 3 > block.size()) {
    return Status::Corruption("TAG block missing checksum");
  }
  const std::string body = block.substr(0, star);
  unsigned int expected = 0;
  if (std::sscanf(block.c_str() + star + 1, "%2X", &expected) != 1 ||
      NmeaChecksum(body) != static_cast<uint8_t>(expected)) {
    return Status::Corruption("TAG block checksum mismatch");
  }
  if (tag != nullptr) {
    for (const std::string& field : Split(body, ',')) {
      if (StartsWith(field, "c:")) {
        int64_t seconds = 0;
        if (ParseInt64(field.substr(2), &seconds)) {
          tag->receiver_time = seconds > 1000000000000ll
                                   ? seconds
                                   : seconds * kMillisPerSecond;
        }
      } else if (StartsWith(field, "s:")) {
        tag->source = field.substr(2);
      }
    }
  }
  return line.substr(end + 1);
}

Result<NmeaSentence> ParseSentence(const std::string& raw) {
  std::string line(Trim(raw));
  if (line.size() < 10 || line[0] != '!') {
    return Status::Corruption("not an NMEA sentence: missing '!'");
  }
  const size_t star = line.rfind('*');
  if (star == std::string::npos || star + 3 > line.size()) {
    return Status::Corruption("missing NMEA checksum");
  }
  const std::string body = line.substr(1, star - 1);
  const std::string cksum_hex = line.substr(star + 1, 2);
  unsigned int expected = 0;
  if (std::sscanf(cksum_hex.c_str(), "%2X", &expected) != 1) {
    return Status::Corruption("malformed NMEA checksum field");
  }
  if (NmeaChecksum(body) != static_cast<uint8_t>(expected)) {
    return Status::Corruption("NMEA checksum mismatch");
  }

  const std::vector<std::string> fields = Split(body, ',');
  if (fields.size() != 7) {
    return Status::Corruption("AIVDM sentence must have 7 fields");
  }
  NmeaSentence s;
  s.talker = fields[0];
  if (s.talker != "AIVDM" && s.talker != "AIVDO") {
    return Status::Corruption("unsupported talker: " + s.talker);
  }
  int64_t v = 0;
  if (!ParseInt64(fields[1], &v) || v < 1 || v > 9) {
    return Status::Corruption("bad fragment count");
  }
  s.fragment_count = static_cast<int>(v);
  if (!ParseInt64(fields[2], &v) || v < 1 || v > s.fragment_count) {
    return Status::Corruption("bad fragment number");
  }
  s.fragment_number = static_cast<int>(v);
  if (fields[3].empty()) {
    s.sequential_id = -1;
  } else if (ParseInt64(fields[3], &v) && v >= 0 && v <= 9) {
    s.sequential_id = static_cast<int>(v);
  } else {
    return Status::Corruption("bad sequential message id");
  }
  s.channel = fields[4].empty() ? '\0' : fields[4][0];
  s.payload = fields[5];
  if (s.payload.empty()) return Status::Corruption("empty payload");
  if (!ParseInt64(fields[6], &v) || v < 0 || v > 5) {
    return Status::Corruption("bad fill bits");
  }
  s.fill_bits = static_cast<int>(v);
  if (s.fragment_count > 1 && s.sequential_id < 0) {
    return Status::Corruption("multi-fragment sentence without sequential id");
  }
  return s;
}

/// Pre-refactor assembler: one owning string per fragment, std::map state.
class Assembler {
 public:
  struct CompletePayload {
    std::string payload;
    int fill_bits = 0;
    char channel = 'A';
  };

  Result<std::optional<CompletePayload>> Add(const NmeaSentence& s,
                                             Timestamp now) {
    if (s.fragment_count == 1) {
      CompletePayload done;
      done.payload = s.payload;
      done.fill_bits = s.fill_bits;
      done.channel = s.channel;
      return std::optional<CompletePayload>(std::move(done));
    }
    EvictExpired(now);
    const GroupKey key{s.sequential_id, s.channel, s.fragment_count};
    auto it = pending_.find(key);
    if (it == pending_.end()) {
      if (pending_.size() >= kMaxPendingGroups) {
        auto oldest = pending_.begin();
        for (auto g = pending_.begin(); g != pending_.end(); ++g) {
          if (g->second.first_seen < oldest->second.first_seen) oldest = g;
        }
        pending_.erase(oldest);
      }
      Group group;
      group.fragments.resize(s.fragment_count);
      group.first_seen = now;
      group.channel = s.channel;
      it = pending_.emplace(key, std::move(group)).first;
    }
    Group& group = it->second;
    std::string& slot = group.fragments[s.fragment_number - 1];
    if (slot.empty()) ++group.received;
    slot = s.payload;
    if (s.fragment_number == s.fragment_count) group.fill_bits = s.fill_bits;

    if (group.received == s.fragment_count) {
      CompletePayload done;
      for (const auto& f : group.fragments) done.payload += f;
      done.fill_bits = group.fill_bits;
      done.channel = group.channel;
      pending_.erase(it);
      return std::optional<CompletePayload>(std::move(done));
    }
    return std::optional<CompletePayload>(std::nullopt);
  }

 private:
  struct Group {
    std::vector<std::string> fragments;
    int received = 0;
    int fill_bits = 0;
    char channel = 'A';
    Timestamp first_seen = 0;
  };
  using GroupKey = std::tuple<int, char, int>;
  static constexpr size_t kMaxPendingGroups = 1024;

  void EvictExpired(Timestamp now) {
    for (auto it = pending_.begin(); it != pending_.end();) {
      if (now - it->second.first_seen > 30 * kMillisPerSecond) {
        it = pending_.erase(it);
      } else {
        ++it;
      }
    }
  }

  std::map<GroupKey, Group> pending_;
};

/// Pre-refactor decoder: reference Parse/Assemble halves with the same
/// stats semantics as AisDecoder.
class Decoder {
 public:
  struct Parsed {
    Timestamp received_at = kInvalidTimestamp;
    bool ok = false;
    NmeaSentence sentence;
  };

  static Parsed Parse(const std::string& line, Timestamp received_at) {
    Parsed out;
    out.received_at = received_at;
    TagBlock tag;
    Result<std::string> stripped = ref::StripTagBlock(line, &tag);
    if (!stripped.ok()) return out;
    if (tag.receiver_time != kInvalidTimestamp) {
      out.received_at = tag.receiver_time;
    }
    Result<NmeaSentence> sentence = ref::ParseSentence(*stripped);
    if (!sentence.ok()) return out;
    out.ok = true;
    out.sentence = std::move(*sentence);
    return out;
  }

  std::optional<AisMessage> Decode(const std::string& line,
                                   Timestamp received_at) {
    const Parsed parsed = Parse(line, received_at);
    ++stats_.lines_in;
    if (!parsed.ok) {
      ++stats_.bad_sentences;
      return std::nullopt;
    }
    Result<std::optional<Assembler::CompletePayload>> assembled =
        assembler_.Add(parsed.sentence, parsed.received_at);
    if (!assembled.ok()) {
      ++stats_.bad_sentences;
      return std::nullopt;
    }
    if (!assembled->has_value()) {
      ++stats_.pending_fragments;
      return std::nullopt;
    }
    Result<std::vector<uint8_t>> bits =
        UnarmorPayload((*assembled)->payload, (*assembled)->fill_bits);
    if (!bits.ok()) {
      ++stats_.bad_payloads;
      return std::nullopt;
    }
    Result<AisMessage> msg = DecodeMessageBits(*bits);
    if (!msg.ok()) {
      if (msg.status().IsNotImplemented()) {
        ++stats_.unsupported_types;
      } else {
        ++stats_.bad_payloads;
      }
      return std::nullopt;
    }
    AisMessage out = std::move(*msg);
    const Timestamp stamp = parsed.received_at;
    std::visit(
        [stamp](auto& m) {
          using T = std::decay_t<decltype(m)>;
          if constexpr (std::is_same_v<T, ExtendedClassBReport>) {
            m.position_report.received_at = stamp;
          } else {
            m.received_at = stamp;
          }
        },
        out);
    ++stats_.messages_out;
    return out;
  }

  const AisDecoder::Stats& stats() const { return stats_; }

 private:
  Assembler assembler_;
  AisDecoder::Stats stats_;
};

}  // namespace ref

// --- Corpus -----------------------------------------------------------------

Timestamp ReceivedAtOf(const AisMessage& msg) {
  return std::visit(
      [](const auto& m) -> Timestamp {
        using T = std::decay_t<decltype(m)>;
        if constexpr (std::is_same_v<T, ExtendedClassBReport>) {
          return m.position_report.received_at;
        } else {
          return m.received_at;
        }
      },
      msg);
}

PositionReport MakePosition(int i) {
  PositionReport m;
  m.message_type = 1 + (i % 3);
  m.mmsi = 230000000u + static_cast<uint32_t>(i % 400);
  m.sog_knots = (i % 40) * 0.6;
  m.position = GeoPoint(41.0 + (i % 90) * 0.013, 4.0 + (i % 71) * 0.017);
  m.cog_deg = (i * 11) % 360;
  m.true_heading = (i * 11) % 360;
  m.utc_second = i % 60;
  return m;
}

StaticVoyageData MakeStatic(int i) {
  StaticVoyageData sv;
  sv.mmsi = 230000000u + static_cast<uint32_t>(i % 400);
  sv.name = "EQUIVALENCE VESSEL";
  sv.call_sign = "EQ" + std::to_string(i % 1000);
  sv.destination = "VALLETTA";
  return sv;
}

/// Valid single-fragment position-report lines (half TAG-blocked) — the
/// steady-state shape of a real feed, and the zero-allocation corpus.
std::vector<std::string> ValidSingleFragmentCorpus() {
  std::vector<std::string> lines;
  AisEncoder encoder;
  for (int i = 0; i < 600; ++i) {
    auto enc = encoder.Encode(AisMessage(MakePosition(i)));
    EXPECT_TRUE(enc.ok());
    for (auto& line : *enc) {
      if (i % 2 == 0) {
        lines.push_back(FormatTagBlock(1700000000000ll + i * 977) + line);
      } else {
        lines.push_back(std::move(line));
      }
    }
  }
  return lines;
}

/// The full adversarial corpus: valid lines, multi-fragment groups
/// (in-order, reversed, interleaved), truncations, checksum corruption,
/// armor corruption, TAG-block damage, garbage.
std::vector<std::string> AdversarialCorpus() {
  std::vector<std::string> lines = ValidSingleFragmentCorpus();
  AisEncoder::Options frag_opts;
  frag_opts.max_payload_chars = 24;  // force type-5 payloads into fragments
  AisEncoder frag_encoder(frag_opts);
  for (int i = 0; i < 60; ++i) {
    auto a = frag_encoder.Encode(AisMessage(MakeStatic(i)));
    auto b = frag_encoder.Encode(AisMessage(MakeStatic(i + 7)));
    EXPECT_TRUE(a.ok() && b.ok());
    switch (i % 3) {
      case 0:  // in order
        for (auto& line : *a) lines.push_back(std::move(line));
        break;
      case 1:  // reversed fragments
        for (auto it = a->rbegin(); it != a->rend(); ++it) {
          lines.push_back(std::move(*it));
        }
        break;
      default:  // two groups interleaved
        for (size_t f = 0; f < std::max(a->size(), b->size()); ++f) {
          if (f < a->size()) lines.push_back((*a)[f]);
          if (f < b->size()) lines.push_back((*b)[f]);
        }
        break;
    }
  }
  // Deterministic damage applied to valid lines.
  AisEncoder encoder;
  for (int i = 0; i < 200; ++i) {
    auto enc = encoder.Encode(AisMessage(MakePosition(i + 1000)));
    EXPECT_TRUE(enc.ok());
    std::string line = (*enc)[0];
    switch (i % 8) {
      case 0:  // truncated mid-payload
        lines.push_back(line.substr(0, line.size() / 2));
        break;
      case 1:  // truncated checksum
        lines.push_back(line.substr(0, line.size() - 1));
        break;
      case 2: {  // flipped checksum digit
        line.back() = line.back() == '0' ? '1' : '0';
        lines.push_back(std::move(line));
        break;
      }
      case 3: {  // corrupted armor character (checksum recomputed so the
                 // corruption reaches the bit layer)
        const size_t p = line.find(',', 10) + 1;
        line[p + 3] = '\x19';
        const size_t star = line.rfind('*');
        std::string body = line.substr(1, star - 1);
        char buf[8];
        std::snprintf(buf, sizeof(buf), "*%02X", NmeaChecksum(body));
        lines.push_back(line.substr(0, star) + buf);
        break;
      }
      case 4:  // unterminated TAG block
        lines.push_back("\\c:1700000000" + line);
        break;
      case 5:  // TAG block checksum mismatch
        lines.push_back("\\c:1700000000*00\\" + line);
        break;
      case 6:  // surrounding whitespace (must still parse)
        lines.push_back("  " + line + " \r\n");
        break;
      default:  // plain garbage
        lines.push_back("$GPGGA,not,ais*00");
        break;
    }
  }
  lines.push_back("");
  lines.push_back("!AIVDM,1,1,,B,xx*00");
  lines.push_back("!AIVDM,2,1,,A,abc,0*00");
  return lines;
}

// --- Tests ------------------------------------------------------------------

TEST(DecodeEquivalenceTest, ParseMatchesReferenceFieldForField) {
  const std::vector<std::string> corpus = AdversarialCorpus();
  size_t ok_lines = 0;
  for (size_t i = 0; i < corpus.size(); ++i) {
    const Timestamp t = 1700000000000ll + static_cast<Timestamp>(i);
    const ref::Decoder::Parsed expected = ref::Decoder::Parse(corpus[i], t);
    const ParsedLine actual = AisDecoder::Parse(corpus[i], t);
    ASSERT_EQ(expected.ok, actual.ok) << "line " << i << ": " << corpus[i];
    ASSERT_EQ(expected.received_at, actual.received_at) << "line " << i;
    if (!expected.ok) continue;
    ++ok_lines;
    EXPECT_EQ(expected.sentence.talker, actual.sentence.talker);
    EXPECT_EQ(expected.sentence.fragment_count,
              actual.sentence.fragment_count);
    EXPECT_EQ(expected.sentence.fragment_number,
              actual.sentence.fragment_number);
    EXPECT_EQ(expected.sentence.sequential_id, actual.sentence.sequential_id);
    EXPECT_EQ(expected.sentence.channel, actual.sentence.channel);
    EXPECT_EQ(expected.sentence.payload, actual.sentence.payload);
    EXPECT_EQ(expected.sentence.fill_bits, actual.sentence.fill_bits);
  }
  EXPECT_GT(ok_lines, 600u);  // the corpus must actually exercise the parser
}

void ExpectStreamEquivalence(const std::vector<std::string>& corpus) {
  ref::Decoder reference;
  AisDecoder decoder;
  size_t messages = 0;
  for (size_t i = 0; i < corpus.size(); ++i) {
    const Timestamp t = 1700000000000ll + static_cast<Timestamp>(i) * 37;
    const std::optional<AisMessage> expected = reference.Decode(corpus[i], t);
    const std::optional<AisMessage> actual = decoder.Decode(corpus[i], t);
    ASSERT_EQ(expected.has_value(), actual.has_value())
        << "line " << i << ": " << corpus[i];
    if (!expected.has_value()) continue;
    ++messages;
    ASSERT_EQ(expected->index(), actual->index()) << "line " << i;
    EXPECT_EQ(ReceivedAtOf(*expected), ReceivedAtOf(*actual)) << "line " << i;
    const auto expected_bits = EncodeMessageBits(*expected);
    const auto actual_bits = EncodeMessageBits(*actual);
    ASSERT_TRUE(expected_bits.ok() && actual_bits.ok()) << "line " << i;
    ASSERT_EQ(*expected_bits, *actual_bits) << "line " << i;
  }
  EXPECT_GT(messages, 0u);
  EXPECT_EQ(reference.stats().lines_in, decoder.stats().lines_in);
  EXPECT_EQ(reference.stats().messages_out, decoder.stats().messages_out);
  EXPECT_EQ(reference.stats().bad_sentences, decoder.stats().bad_sentences);
  EXPECT_EQ(reference.stats().bad_payloads, decoder.stats().bad_payloads);
  EXPECT_EQ(reference.stats().unsupported_types,
            decoder.stats().unsupported_types);
  EXPECT_EQ(reference.stats().pending_fragments,
            decoder.stats().pending_fragments);
}

TEST(DecodeEquivalenceTest, StreamMatchesReferenceOnAdversarialCorpus) {
  ExpectStreamEquivalence(AdversarialCorpus());
}

TEST(DecodeEquivalenceTest, StreamMatchesReferenceOnScenarioCorpus) {
  // The simulated basin feed: realistic reception (terrestrial + satellite
  // latency, duplication, loss) as produced by the scenario generator.
  World world = World::Basin();
  ScenarioConfig config;
  config.seed = 11;
  config.duration = 30 * kMillisPerMinute;
  config.transit_vessels = 12;
  config.fishing_vessels = 4;
  config.rendezvous_pairs = 1;
  const ScenarioOutput scenario = GenerateScenario(world, config);
  std::vector<std::string> corpus;
  corpus.reserve(scenario.nmea.size());
  for (const auto& ev : scenario.nmea) corpus.push_back(ev.payload);
  ExpectStreamEquivalence(corpus);
}

TEST(DecodeEquivalenceTest, StreamMatchesReferenceOnScenarioSweep) {
  // Packed-path cases across scenario shapes: a dense mixed feed (loiter +
  // rendezvous + spoofers), a satellite-dominated feed (deep delays, heavy
  // loss), and a fishing-heavy feed (many type-18/19 Class-B emitters) —
  // each replayed through the packed production decoder and the frozen
  // byte-per-bit reference.
  World world = World::Basin();
  std::vector<ScenarioConfig> sweep;
  {
    ScenarioConfig dense;
    dense.seed = 23;
    dense.duration = 20 * kMillisPerMinute;
    dense.transit_vessels = 20;
    dense.fishing_vessels = 6;
    dense.loiter_vessels = 3;
    dense.rendezvous_pairs = 2;
    dense.spoof_identity_vessels = 1;
    dense.spoof_teleport_vessels = 1;
    sweep.push_back(dense);
  }
  {
    ScenarioConfig satellite;
    satellite.seed = 29;
    satellite.duration = 25 * kMillisPerMinute;
    satellite.transit_vessels = 10;
    satellite.fishing_vessels = 2;
    satellite.dark_vessels = 2;
    sweep.push_back(satellite);
  }
  {
    ScenarioConfig fishing;
    fishing.seed = 31;
    fishing.duration = 20 * kMillisPerMinute;
    fishing.transit_vessels = 4;
    fishing.fishing_vessels = 14;
    sweep.push_back(fishing);
  }
  for (const ScenarioConfig& config : sweep) {
    const ScenarioOutput scenario = GenerateScenario(world, config);
    std::vector<std::string> corpus;
    corpus.reserve(scenario.nmea.size());
    for (const auto& ev : scenario.nmea) corpus.push_back(ev.payload);
    ExpectStreamEquivalence(corpus);
  }
}

TEST(DecodeEquivalenceTest, SteadyStateDecodeIsAllocationFree) {
  const std::vector<std::string> corpus = ValidSingleFragmentCorpus();
  AisDecoder decoder;
  // Warmup pass: grows the decoder's pooled scratch (de-armor bits buffer)
  // and the allocator's caches.
  uint64_t warm_messages = 0;
  for (const std::string& line : corpus) {
    if (decoder.Decode(line, 1700000000000ll).has_value()) ++warm_messages;
  }
  ASSERT_EQ(warm_messages, corpus.size());

  const uint64_t before = AllocProbe::ThreadCount();
  uint64_t messages = 0;
  for (const std::string& line : corpus) {
    if (decoder.Decode(line, 1700000000000ll).has_value()) ++messages;
  }
  const uint64_t allocations = AllocProbe::ThreadCount() - before;
  EXPECT_EQ(messages, corpus.size());
  EXPECT_EQ(allocations, 0u)
      << "steady-state parse/de-armor loop must not touch the heap";
}

TEST(DecodeEquivalenceTest, PackedDecodeLayerIsAllocationFreePerLine) {
  // The packed bit layer in isolation: de-armor into a pooled PackedBits
  // scratch plus packed DecodeMessageBits must perform exactly zero heap
  // allocations per steady-state line (position reports carry no strings).
  std::vector<std::pair<std::string, int>> payloads;
  {
    AisEncoder encoder;
    AivdmAssembler assembler;
    for (int i = 0; i < 600; ++i) {
      const auto enc = encoder.Encode(AisMessage(MakePosition(i)));
      ASSERT_TRUE(enc.ok());
      for (const std::string& line : *enc) {
        const ParsedLine parsed = AisDecoder::Parse(line, 0);
        ASSERT_TRUE(parsed.ok);
        const auto assembled = assembler.Add(parsed.sentence, 0);
        ASSERT_TRUE(assembled.ok() && assembled->has_value());
        payloads.emplace_back(std::string((*assembled)->payload),
                              (*assembled)->fill_bits);
      }
    }
  }
  PackedBits scratch;
  // Warmup: grows the scratch's word capacity to the corpus maximum.
  for (const auto& [payload, fill] : payloads) {
    ASSERT_TRUE(UnarmorPayloadInto(payload, fill, &scratch).ok());
    ASSERT_TRUE(DecodeMessageBits(scratch).ok());
  }

  const uint64_t before = AllocProbe::ThreadCount();
  uint64_t decoded = 0;
  for (const auto& [payload, fill] : payloads) {
    if (!UnarmorPayloadInto(payload, fill, &scratch).ok()) continue;
    if (DecodeMessageBits(scratch).ok()) ++decoded;
  }
  const uint64_t allocations = AllocProbe::ThreadCount() - before;
  EXPECT_EQ(decoded, payloads.size());
  EXPECT_EQ(allocations, 0u)
      << "packed unarmor+decode must not touch the heap at steady state "
      << "(allocs/line = "
      << static_cast<double>(allocations) / payloads.size() << ")";
}

}  // namespace
}  // namespace marlin
