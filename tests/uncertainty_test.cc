// Unit tests for marlin_uncertainty: Dempster–Shafer, possibility theory,
// Bayes/intervals, open-world coverage, source quality.

#include <gtest/gtest.h>

#include <cmath>

#include "uncertainty/bayes.h"
#include "uncertainty/dempster_shafer.h"
#include "uncertainty/openworld.h"
#include "uncertainty/possibility.h"
#include "uncertainty/source_quality.h"

namespace marlin {
namespace {

// --- Frame / MassFunction ---------------------------------------------------

class DsTest : public ::testing::Test {
 protected:
  DsTest() : frame_({"cargo", "tanker", "fishing"}) {}
  Frame frame_;
};

TEST_F(DsTest, FrameBasics) {
  EXPECT_EQ(frame_.size(), 3);
  EXPECT_EQ(frame_.Theta(), 0b111u);
  EXPECT_EQ(frame_.Singleton(1), 0b010u);
  EXPECT_EQ(frame_.Index("tanker"), 1);
  EXPECT_EQ(frame_.Index("submarine"), -1);
  EXPECT_EQ(frame_.SetToString(0b101), "{cargo,fishing}");
}

TEST_F(DsTest, VacuousBelief) {
  const MassFunction m = MassFunction::Vacuous(&frame_);
  EXPECT_DOUBLE_EQ(m.Belief(frame_.Theta()), 1.0);
  EXPECT_DOUBLE_EQ(m.Belief(frame_.Singleton(0)), 0.0);
  EXPECT_DOUBLE_EQ(m.Plausibility(frame_.Singleton(0)), 1.0);
}

TEST_F(DsTest, BeliefPlausibilityDuality) {
  MassFunction m(&frame_);
  m.Assign(frame_.Singleton(0), 0.5);
  m.Assign(0b011, 0.3);  // {cargo, tanker}
  m.Assign(frame_.Theta(), 0.2);
  // Bel(A) = 1 - Pl(complement of A).
  const FocalSet a = 0b001;
  const FocalSet not_a = 0b110;
  EXPECT_NEAR(m.Belief(a), 1.0 - m.Plausibility(not_a), 1e-12);
  EXPECT_NEAR(m.Belief(a), 0.5, 1e-12);
  EXPECT_NEAR(m.Plausibility(a), 1.0, 1e-12);
}

TEST_F(DsTest, PignisticSumsToOne) {
  MassFunction m(&frame_);
  m.Assign(frame_.Singleton(0), 0.4);
  m.Assign(0b110, 0.4);
  m.Assign(frame_.Theta(), 0.2);
  double total = 0.0;
  for (int i = 0; i < frame_.size(); ++i) total += m.Pignistic(i);
  EXPECT_NEAR(total, 1.0, 1e-12);
  // {tanker,fishing} mass splits evenly between hypotheses 1 and 2.
  EXPECT_NEAR(m.Pignistic(1), 0.4 / 2 + 0.2 / 3, 1e-12);
}

TEST_F(DsTest, DempsterCombinationAgreeingSources) {
  MassFunction a(&frame_), b(&frame_);
  a.Assign(frame_.Singleton(0), 0.7);
  a.Assign(frame_.Theta(), 0.3);
  b.Assign(frame_.Singleton(0), 0.6);
  b.Assign(frame_.Theta(), 0.4);
  const auto combined = Combine(a, b, CombinationRule::kDempster);
  ASSERT_TRUE(combined.ok());
  // Agreement reinforces: belief in cargo exceeds either input.
  EXPECT_GT(combined->Belief(frame_.Singleton(0)), 0.7);
  EXPECT_EQ(combined->Decide(), 0);
}

TEST_F(DsTest, ZadehParadoxDempsterVsYager) {
  // Zadeh's classic: two experts almost certain of different hypotheses,
  // tiny shared mass on the third. Dempster's rule concentrates everything
  // on the barely-supported hypothesis; Yager keeps conflict on Θ instead.
  MassFunction a(&frame_), b(&frame_);
  a.Assign(frame_.Singleton(0), 0.99);
  a.Assign(frame_.Singleton(2), 0.01);
  b.Assign(frame_.Singleton(1), 0.99);
  b.Assign(frame_.Singleton(2), 0.01);
  const auto dempster = Combine(a, b, CombinationRule::kDempster);
  ASSERT_TRUE(dempster.ok());
  EXPECT_NEAR(dempster->Belief(frame_.Singleton(2)), 1.0, 1e-9);
  const auto yager = Combine(a, b, CombinationRule::kYager);
  ASSERT_TRUE(yager.ok());
  EXPECT_NEAR(yager->Belief(frame_.Singleton(2)), 0.0001, 1e-9);
  EXPECT_GT(yager->Belief(frame_.Theta()), 0.99);
}

TEST_F(DsTest, ConjunctiveKeepsConflictOnEmptySet) {
  MassFunction a(&frame_), b(&frame_);
  a.Assign(frame_.Singleton(0), 1.0);
  b.Assign(frame_.Singleton(1), 1.0);
  const auto combined = Combine(a, b, CombinationRule::kConjunctive);
  ASSERT_TRUE(combined.ok());
  EXPECT_NEAR(combined->Conflict(), 1.0, 1e-12);
  // Dempster is undefined under total conflict.
  EXPECT_FALSE(Combine(a, b, CombinationRule::kDempster).ok());
}

TEST_F(DsTest, DisjunctiveNeverCreatesConflict) {
  MassFunction a(&frame_), b(&frame_);
  a.Assign(frame_.Singleton(0), 1.0);
  b.Assign(frame_.Singleton(1), 1.0);
  const auto combined = Combine(a, b, CombinationRule::kDisjunctive);
  ASSERT_TRUE(combined.ok());
  EXPECT_DOUBLE_EQ(combined->Conflict(), 0.0);
  EXPECT_NEAR(combined->Belief(0b011), 1.0, 1e-12);  // union gets the mass
}

TEST_F(DsTest, DiscountingMovesTowardVacuous) {
  MassFunction m(&frame_);
  m.Assign(frame_.Singleton(0), 1.0);
  const MassFunction discounted = m.Discount(0.6);
  EXPECT_NEAR(discounted.Belief(frame_.Singleton(0)), 0.6, 1e-12);
  EXPECT_NEAR(discounted.Belief(frame_.Theta()), 1.0, 1e-12);
  const MassFunction fully_unreliable = m.Discount(0.0);
  EXPECT_NEAR(fully_unreliable.Belief(frame_.Singleton(0)), 0.0, 1e-12);
}

TEST_F(DsTest, DiscountingResolvesZadehParadox) {
  // With moderate source reliability, Dempster's rule no longer explodes:
  // the discounted masses leave room on Θ and the verdict is reasonable.
  MassFunction a(&frame_), b(&frame_);
  a.Assign(frame_.Singleton(0), 0.99);
  a.Assign(frame_.Singleton(2), 0.01);
  b.Assign(frame_.Singleton(1), 0.99);
  b.Assign(frame_.Singleton(2), 0.01);
  const auto combined = Combine(a.Discount(0.8), b.Discount(0.8),
                                CombinationRule::kDempster);
  ASSERT_TRUE(combined.ok());
  // Hypothesis 2 no longer wins automatically.
  EXPECT_LT(combined->Pignistic(2), combined->Pignistic(0) + 0.2);
}

TEST_F(DsTest, CombineAllFolds) {
  std::vector<MassFunction> sources;
  for (int i = 0; i < 3; ++i) {
    MassFunction m(&frame_);
    m.Assign(frame_.Singleton(1), 0.5);
    m.Assign(frame_.Theta(), 0.5);
    sources.push_back(m);
  }
  const auto combined = CombineAll(sources, CombinationRule::kDempster);
  ASSERT_TRUE(combined.ok());
  EXPECT_GT(combined->Belief(frame_.Singleton(1)), 0.8);
  EXPECT_FALSE(CombineAll({}, CombinationRule::kDempster).ok());
}

TEST_F(DsTest, NormalizeRedistributes) {
  MassFunction m(&frame_);
  m.Assign(frame_.Singleton(0), 0.4);
  m.Assign(0, 0.6);  // conflict mass
  m.Normalize();
  EXPECT_NEAR(m.Belief(frame_.Singleton(0)), 1.0, 1e-12);
  EXPECT_DOUBLE_EQ(m.Conflict(), 0.0);
}

// --- Possibility ----------------------------------------------------------

TEST(PossibilityTest, NecessityPossibilityDuality) {
  PossibilityDistribution pi(3);
  pi.Set(0, 1.0);
  pi.Set(1, 0.6);
  pi.Set(2, 0.2);
  EXPECT_TRUE(pi.IsNormalized());
  // N(A) = 1 - Π(A^c).
  EXPECT_NEAR(pi.Necessity({0}), 1.0 - pi.Possibility({1, 2}), 1e-12);
  EXPECT_NEAR(pi.Possibility({1, 2}), 0.6, 1e-12);
  EXPECT_NEAR(pi.Necessity({0}), 0.4, 1e-12);
  // N(A) <= Π(A) always.
  EXPECT_LE(pi.Necessity({1}), pi.Possibility({1}));
}

TEST(PossibilityTest, MinCombinationInconsistency) {
  PossibilityDistribution a(3), b(3);
  a.Set(0, 1.0);
  a.Set(1, 0.3);
  a.Set(2, 0.0);
  b.Set(0, 0.1);
  b.Set(1, 0.4);
  b.Set(2, 1.0);
  const auto combined = PossibilityDistribution::CombineMin(a, b);
  // Sources disagree: the conjunction is subnormal.
  EXPECT_FALSE(combined.IsNormalized());
  EXPECT_NEAR(combined.Inconsistency(), 0.7, 1e-12);
  EXPECT_EQ(combined.Decide(), 1);  // overlap hypothesis wins
}

TEST(PossibilityTest, MaxCombinationStaysNormalized) {
  PossibilityDistribution a(2), b(2);
  a.Set(0, 1.0);
  a.Set(1, 0.0);
  b.Set(0, 0.0);
  b.Set(1, 1.0);
  const auto combined = PossibilityDistribution::CombineMax(a, b);
  EXPECT_TRUE(combined.IsNormalized());
  EXPECT_DOUBLE_EQ(combined.Get(0), 1.0);
  EXPECT_DOUBLE_EQ(combined.Get(1), 1.0);
}

TEST(PossibilityTest, DiscountRaisesFloor) {
  PossibilityDistribution pi(2);
  pi.Set(0, 1.0);
  pi.Set(1, 0.0);
  const auto discounted = pi.Discount(0.7);
  EXPECT_DOUBLE_EQ(discounted.Get(1), 0.3);
  EXPECT_DOUBLE_EQ(discounted.Get(0), 1.0);
}

TEST(PossibilityTest, NormalizeRestoresMaxOne) {
  PossibilityDistribution pi(2);
  pi.Set(0, 0.5);
  pi.Set(1, 0.25);
  pi.Normalize();
  EXPECT_DOUBLE_EQ(pi.Get(0), 1.0);
  EXPECT_DOUBLE_EQ(pi.Get(1), 0.5);
}

// --- Bayes -------------------------------------------------------------------

TEST(BayesTest, UniformPriorUpdates) {
  DiscreteBayes bayes(3);
  EXPECT_TRUE(bayes.Update({0.9, 0.05, 0.05}));
  EXPECT_EQ(bayes.Decide(), 0);
  EXPECT_GT(bayes.Get(0), 0.8);
}

TEST(BayesTest, SequentialEvidenceSharpens) {
  DiscreteBayes bayes(2);
  const double h0 = bayes.EntropyBits();
  bayes.Update({0.7, 0.3});
  const double h1 = bayes.EntropyBits();
  bayes.Update({0.7, 0.3});
  const double h2 = bayes.EntropyBits();
  EXPECT_LT(h1, h0);
  EXPECT_LT(h2, h1);
}

TEST(BayesTest, ZeroLikelihoodEverywhereRejected) {
  DiscreteBayes bayes(2);
  EXPECT_FALSE(bayes.Update({0.0, 0.0}));
  EXPECT_NEAR(bayes.Get(0), 0.5, 1e-12);  // unchanged
}

TEST(IntervalProbabilityTest, IntersectionNarrows) {
  IntervalProbability a(2), b(2);
  a.Set(0, 0.2, 0.8);
  b.Set(0, 0.5, 0.9);
  EXPECT_TRUE(a.IntersectWith(b));
  EXPECT_DOUBLE_EQ(a.Lower(0), 0.5);
  EXPECT_DOUBLE_EQ(a.Upper(0), 0.8);
  EXPECT_NEAR(a.Imprecision(0), 0.3, 1e-12);
}

TEST(IntervalProbabilityTest, ConflictWidensToUnion) {
  IntervalProbability a(1), b(1);
  a.Set(0, 0.1, 0.3);
  b.Set(0, 0.6, 0.9);
  EXPECT_FALSE(a.IntersectWith(b));
  EXPECT_DOUBLE_EQ(a.Lower(0), 0.1);
  EXPECT_DOUBLE_EQ(a.Upper(0), 0.9);
}

TEST(IntervalProbabilityTest, IntervalDominance) {
  IntervalProbability p(3);
  p.Set(0, 0.6, 0.8);   // dominates 1
  p.Set(1, 0.0, 0.2);
  p.Set(2, 0.3, 0.7);   // overlaps 0: both non-dominated
  const auto nd = p.NonDominated();
  EXPECT_EQ(nd, (std::vector<int>{0, 2}));
}

// --- CoverageModel / open world ------------------------------------------

TEST(CoverageTest, ContinuousReportingHasNoDarkPeriods) {
  CoverageModel coverage;
  for (int i = 0; i < 100; ++i) {
    coverage.Observe(1, i * 10000);  // every 10 s
  }
  EXPECT_TRUE(coverage.DarkPeriods(1, 0, 990000).empty());
  EXPECT_NEAR(coverage.Coverage(1, 0, 990000), 1.0, 1e-12);
  EXPECT_DOUBLE_EQ(coverage.DarkFraction(1), 0.0);
}

TEST(CoverageTest, GapBecomesDarkPeriod) {
  CoverageModel coverage;
  coverage.Observe(1, 0);
  coverage.Observe(1, 10000);
  coverage.Observe(1, 1000000);  // ~16.5 minute silence
  coverage.Observe(1, 1010000);
  const auto dark = coverage.DarkPeriods(1, 0, 1010000);
  ASSERT_EQ(dark.size(), 1u);
  EXPECT_EQ(dark[0].first, 10000);
  EXPECT_EQ(dark[0].second, 1000000);
  EXPECT_TRUE(coverage.IsDark(1, 500000));
  EXPECT_FALSE(coverage.IsDark(1, 5000));
  EXPECT_GT(coverage.DarkFraction(1), 0.9);
}

TEST(CoverageTest, UnknownVesselIsFullyDark) {
  CoverageModel coverage;
  const auto dark = coverage.DarkPeriods(42, 100, 200);
  ASSERT_EQ(dark.size(), 1u);
  EXPECT_EQ(dark[0], (std::pair<Timestamp, Timestamp>{100, 200}));
  EXPECT_DOUBLE_EQ(coverage.Coverage(42, 100, 200), 0.0);
  EXPECT_TRUE(coverage.IsDark(42, 150));
}

TEST(CoverageTest, OutsideObservedSpanIsDark) {
  CoverageModel coverage;
  coverage.Observe(1, 100000);
  coverage.Observe(1, 110000);
  EXPECT_TRUE(coverage.IsDark(1, 50000));    // before first report
  EXPECT_TRUE(coverage.IsDark(1, 200000));   // after last report
  EXPECT_FALSE(coverage.IsDark(1, 105000));
}

TEST(CoverageTest, VerdictSemantics) {
  CoverageModel coverage;
  coverage.Observe(1, 0);
  coverage.Observe(1, 10000);
  coverage.Observe(1, 2000000);
  // Covered instant: the vessel was reporting, unobserved action excluded.
  EXPECT_EQ(coverage.CouldHaveActedAt(1, 5000), Verdict::kNo);
  // Dark instant: the action "remains possible" (paper §4).
  EXPECT_EQ(coverage.CouldHaveActedAt(1, 1000000), Verdict::kPossible);
  EXPECT_STREQ(VerdictName(Verdict::kPossible), "possible");
}

TEST(CoverageTest, CoverageFractionPartial) {
  CoverageModel::Options opts;
  opts.max_report_interval_ms = 60000;
  CoverageModel coverage(opts);
  coverage.Observe(1, 0);
  coverage.Observe(1, 30000);
  coverage.Observe(1, 530000);  // 500 s gap
  // Window [0, 530000]: dark 500 s of 530 s.
  EXPECT_NEAR(coverage.Coverage(1, 0, 530000), 30.0 / 530.0, 1e-9);
}

// --- SourceQualityModel -----------------------------------------------------

TEST(SourceQualityTest, BetaPosteriorMean) {
  SourceQualityModel model;
  EXPECT_DOUBLE_EQ(model.Reliability("unseen"), 0.5);
  for (int i = 0; i < 8; ++i) model.Record("good", true);
  for (int i = 0; i < 2; ++i) model.Record("good", false);
  EXPECT_NEAR(model.Reliability("good"), 9.0 / 12.0, 1e-12);
  EXPECT_EQ(model.Observations("good"), 10u);
  for (int i = 0; i < 10; ++i) model.Record("bad", false);
  EXPECT_LT(model.Reliability("bad"), 0.15);
}

}  // namespace
}  // namespace marlin
