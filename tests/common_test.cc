// Unit tests for marlin_common: Status/Result, time, units, strings, rng.

#include <gtest/gtest.h>

#include <algorithm>
#include <deque>
#include <map>
#include <set>
#include <vector>

#include "common/flat_hash.h"
#include "common/result.h"
#include "common/ring_buffer.h"
#include "common/rng.h"
#include "common/status.h"
#include "common/strings.h"
#include "common/time.h"
#include "common/units.h"

namespace marlin {
namespace {

// --- Status ----------------------------------------------------------------

TEST(StatusTest, DefaultIsOk) {
  Status st;
  EXPECT_TRUE(st.ok());
  EXPECT_EQ(st.code(), StatusCode::kOk);
  EXPECT_EQ(st.message(), "");
  EXPECT_EQ(st.ToString(), "OK");
}

TEST(StatusTest, ErrorCarriesCodeAndMessage) {
  Status st = Status::NotFound("missing vessel");
  EXPECT_FALSE(st.ok());
  EXPECT_TRUE(st.IsNotFound());
  EXPECT_EQ(st.message(), "missing vessel");
  EXPECT_EQ(st.ToString(), "NotFound: missing vessel");
}

TEST(StatusTest, CopyPreservesState) {
  Status a = Status::Corruption("bad bits");
  Status b = a;
  EXPECT_TRUE(b.IsCorruption());
  EXPECT_EQ(a, b);
  Status c;
  c = b;
  EXPECT_EQ(c.message(), "bad bits");
}

TEST(StatusTest, MoveLeavesSourceReusable) {
  Status a = Status::Invalid("x");
  Status b = std::move(a);
  EXPECT_TRUE(b.IsInvalid());
}

TEST(StatusTest, AllCodesHaveDistinctNames) {
  std::set<std::string> names;
  for (int c = 0; c <= 11; ++c) {
    names.insert(StatusCodeToString(static_cast<StatusCode>(c)));
  }
  EXPECT_EQ(names.size(), 12u);
}

TEST(StatusTest, EqualityComparesCodeAndMessage) {
  EXPECT_EQ(Status::Invalid("a"), Status::Invalid("a"));
  EXPECT_NE(Status::Invalid("a"), Status::Invalid("b"));
  EXPECT_NE(Status::Invalid("a"), Status::NotFound("a"));
  EXPECT_EQ(Status::OK(), Status());
}

// --- Result ------------------------------------------------------------------

Result<int> ParsePositive(int v) {
  if (v <= 0) return Status::Invalid("not positive");
  return v;
}

TEST(ResultTest, HoldsValue) {
  Result<int> r = ParsePositive(7);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(*r, 7);
  EXPECT_TRUE(r.status().ok());
}

TEST(ResultTest, HoldsError) {
  Result<int> r = ParsePositive(-1);
  ASSERT_FALSE(r.ok());
  EXPECT_TRUE(r.status().IsInvalid());
  EXPECT_EQ(r.ValueOr(42), 42);
}

TEST(ResultTest, MoveOnlyValue) {
  Result<std::unique_ptr<int>> r(std::make_unique<int>(5));
  ASSERT_TRUE(r.ok());
  std::unique_ptr<int> v = std::move(r).ValueOrDie();
  EXPECT_EQ(*v, 5);
}

Result<int> Doubled(int v) {
  MARLIN_ASSIGN_OR_RETURN(int x, ParsePositive(v));
  return 2 * x;
}

TEST(ResultTest, AssignOrReturnPropagates) {
  EXPECT_EQ(*Doubled(4), 8);
  EXPECT_TRUE(Doubled(-4).status().IsInvalid());
}

// --- Time --------------------------------------------------------------------

TEST(TimeTest, FormatKnownInstant) {
  // 2017-03-21T12:00:00Z == 1490097600000 ms (EDBT 2017 week).
  EXPECT_EQ(FormatTimestamp(1490097600000), "2017-03-21T12:00:00.000Z");
}

TEST(TimeTest, ParseFormatRoundTrip) {
  const Timestamp ts = 1490097600123;
  EXPECT_EQ(ParseTimestamp(FormatTimestamp(ts)), ts);
}

TEST(TimeTest, ParseWithoutMillis) {
  EXPECT_EQ(ParseTimestamp("2017-03-21T12:00:00Z"), 1490097600000);
}

TEST(TimeTest, ParseRejectsGarbage) {
  EXPECT_EQ(ParseTimestamp("not a time"), kInvalidTimestamp);
  EXPECT_EQ(ParseTimestamp("2017-13-41T99:00:00Z"), kInvalidTimestamp);
  EXPECT_EQ(ParseTimestamp(""), kInvalidTimestamp);
}

TEST(TimeTest, DurationHelpers) {
  EXPECT_EQ(Seconds(1.5), 1500);
  EXPECT_EQ(Minutes(2), 120000);
  EXPECT_EQ(Hours(1), 3600000);
}

TEST(TimeTest, ManualClockAdvances) {
  ManualClock clock(1000);
  EXPECT_EQ(clock.Now(), 1000);
  clock.Advance(500);
  EXPECT_EQ(clock.Now(), 1500);
  clock.Set(42);
  EXPECT_EQ(clock.Now(), 42);
}

TEST(TimeTest, SystemClockIsRecent) {
  // Sanity: the wall clock is after 2020 and before 2100.
  const Timestamp now = SystemClock::Instance().Now();
  EXPECT_GT(now, 1577836800000);  // 2020-01-01
  EXPECT_LT(now, 4102444800000);  // 2100-01-01
}

// --- Units ---------------------------------------------------------------

TEST(UnitsTest, KnotsConversionRoundTrip) {
  EXPECT_NEAR(KnotsToMps(1.0), 0.514444, 1e-6);
  EXPECT_NEAR(MpsToKnots(KnotsToMps(17.3)), 17.3, 1e-12);
}

TEST(UnitsTest, NauticalMiles) {
  EXPECT_DOUBLE_EQ(NmToMetres(1.0), 1852.0);
  EXPECT_DOUBLE_EQ(MetresToNm(926.0), 0.5);
}

TEST(UnitsTest, NormalizeDegrees) {
  EXPECT_DOUBLE_EQ(NormalizeDegrees(0.0), 0.0);
  EXPECT_DOUBLE_EQ(NormalizeDegrees(360.0), 0.0);
  EXPECT_DOUBLE_EQ(NormalizeDegrees(-90.0), 270.0);
  EXPECT_DOUBLE_EQ(NormalizeDegrees(725.0), 5.0);
}

TEST(UnitsTest, NormalizeLongitude) {
  EXPECT_DOUBLE_EQ(NormalizeLongitude(181.0), -179.0);
  EXPECT_DOUBLE_EQ(NormalizeLongitude(-181.0), 179.0);
  EXPECT_DOUBLE_EQ(NormalizeLongitude(0.0), 0.0);
  EXPECT_DOUBLE_EQ(NormalizeLongitude(540.0), -180.0);
}

TEST(UnitsTest, AngleDifferenceIsSignedAndMinimal) {
  EXPECT_DOUBLE_EQ(AngleDifference(10.0, 350.0), 20.0);
  EXPECT_DOUBLE_EQ(AngleDifference(350.0, 10.0), -20.0);
  EXPECT_DOUBLE_EQ(AngleDifference(180.0, 0.0), -180.0);
  EXPECT_DOUBLE_EQ(AngleDifference(90.0, 90.0), 0.0);
}

// --- Strings -----------------------------------------------------------------

TEST(StringsTest, SplitKeepsEmptyFields) {
  const auto parts = Split("a,,b,", ',');
  ASSERT_EQ(parts.size(), 4u);
  EXPECT_EQ(parts[0], "a");
  EXPECT_EQ(parts[1], "");
  EXPECT_EQ(parts[2], "b");
  EXPECT_EQ(parts[3], "");
}

TEST(StringsTest, TrimBothEnds) {
  EXPECT_EQ(Trim("  hello \t\n"), "hello");
  EXPECT_EQ(Trim(""), "");
  EXPECT_EQ(Trim("   "), "");
}

TEST(StringsTest, JoinWithSeparator) {
  EXPECT_EQ(Join({"a", "b", "c"}, "-"), "a-b-c");
  EXPECT_EQ(Join({}, "-"), "");
  EXPECT_EQ(Join({"solo"}, "-"), "solo");
}

TEST(StringsTest, ParseInt64Strict) {
  int64_t v = 0;
  EXPECT_TRUE(ParseInt64("42", &v));
  EXPECT_EQ(v, 42);
  EXPECT_TRUE(ParseInt64("-7", &v));
  EXPECT_EQ(v, -7);
  EXPECT_FALSE(ParseInt64("4x", &v));
  EXPECT_FALSE(ParseInt64("", &v));
  EXPECT_FALSE(ParseInt64("1.5", &v));
}

TEST(StringsTest, ParseDoubleStrict) {
  double v = 0;
  EXPECT_TRUE(ParseDouble("3.25", &v));
  EXPECT_DOUBLE_EQ(v, 3.25);
  EXPECT_TRUE(ParseDouble("-1e3", &v));
  EXPECT_DOUBLE_EQ(v, -1000.0);
  EXPECT_FALSE(ParseDouble("abc", &v));
  EXPECT_FALSE(ParseDouble("", &v));
}

TEST(StringsTest, LevenshteinSimilarity) {
  EXPECT_DOUBLE_EQ(LevenshteinSimilarity("SEA STAR", "SEA STAR"), 1.0);
  EXPECT_DOUBLE_EQ(LevenshteinSimilarity("", ""), 1.0);
  EXPECT_DOUBLE_EQ(LevenshteinSimilarity("abc", "xyz"), 0.0);
  // One edit in 8 characters.
  EXPECT_NEAR(LevenshteinSimilarity("SEA STAR", "SEA STAH"), 7.0 / 8.0, 1e-12);
}

TEST(StringsTest, TokenJaccard) {
  EXPECT_DOUBLE_EQ(TokenJaccard("sea star one", "SEA STAR ONE"), 1.0);
  EXPECT_DOUBLE_EQ(TokenJaccard("a b", "c d"), 0.0);
  EXPECT_NEAR(TokenJaccard("a b c", "b c d"), 0.5, 1e-12);
}

// --- Rng -----------------------------------------------------------------

TEST(RngTest, Deterministic) {
  Rng a(123), b(123);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.NextU64(), b.NextU64());
  }
}

TEST(RngTest, DifferentSeedsDiffer) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) {
    if (a.NextU64() == b.NextU64()) ++same;
  }
  EXPECT_EQ(same, 0);
}

TEST(RngTest, DoubleInUnitInterval) {
  Rng rng(7);
  for (int i = 0; i < 10000; ++i) {
    const double v = rng.NextDouble();
    EXPECT_GE(v, 0.0);
    EXPECT_LT(v, 1.0);
  }
}

TEST(RngTest, BoundedIsInRange) {
  Rng rng(9);
  for (int i = 0; i < 10000; ++i) {
    EXPECT_LT(rng.NextBounded(17), 17u);
  }
}

TEST(RngTest, UniformIntInclusive) {
  Rng rng(11);
  bool saw_lo = false, saw_hi = false;
  for (int i = 0; i < 5000; ++i) {
    const int64_t v = rng.UniformInt(3, 8);
    EXPECT_GE(v, 3);
    EXPECT_LE(v, 8);
    saw_lo |= v == 3;
    saw_hi |= v == 8;
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(RngTest, GaussianMoments) {
  Rng rng(13);
  double sum = 0.0, sq = 0.0;
  const int n = 200000;
  for (int i = 0; i < n; ++i) {
    const double v = rng.Gaussian();
    sum += v;
    sq += v * v;
  }
  EXPECT_NEAR(sum / n, 0.0, 0.02);
  EXPECT_NEAR(sq / n, 1.0, 0.03);
}

TEST(RngTest, BernoulliFrequency) {
  Rng rng(17);
  int hits = 0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) {
    if (rng.Bernoulli(0.3)) ++hits;
  }
  EXPECT_NEAR(static_cast<double>(hits) / n, 0.3, 0.01);
}

TEST(RngTest, ForkProducesIndependentStream) {
  Rng parent(21);
  Rng child = parent.Fork();
  // The child stream should not equal the parent's continued stream.
  int same = 0;
  for (int i = 0; i < 64; ++i) {
    if (parent.NextU64() == child.NextU64()) ++same;
  }
  EXPECT_LT(same, 3);
}

TEST(RngTest, ExponentialMean) {
  Rng rng(23);
  double sum = 0.0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) sum += rng.Exponential(2.0);
  EXPECT_NEAR(sum / n, 0.5, 0.02);
}

// --- ParseHexByte -----------------------------------------------------------

TEST(StringsTest, ParseHexByteMatchesScanfAcceptance) {
  unsigned int v = 0;
  EXPECT_TRUE(ParseHexByte("5C", &v));
  EXPECT_EQ(v, 0x5Cu);
  EXPECT_TRUE(ParseHexByte("ff", &v));
  EXPECT_EQ(v, 0xFFu);
  // One digit, trailing junk, leading whitespace — all sscanf("%2X") quirks.
  EXPECT_TRUE(ParseHexByte("7", &v));
  EXPECT_EQ(v, 0x7u);
  EXPECT_TRUE(ParseHexByte("3G", &v));
  EXPECT_EQ(v, 0x3u);
  EXPECT_TRUE(ParseHexByte(" A", &v));
  EXPECT_EQ(v, 0xAu);
  EXPECT_FALSE(ParseHexByte("", &v));
  EXPECT_FALSE(ParseHexByte("G5", &v));
  EXPECT_FALSE(ParseHexByte("  ", &v));
}

// --- FlatHashMap ------------------------------------------------------------

TEST(FlatHashMapTest, InsertFindEraseAgainstStdMap) {
  // Randomized differential test vs std::map, including the backward-shift
  // erase path (dense colliding keys).
  Rng rng(99);
  FlatHashMap<uint64_t, int> flat;
  std::map<uint64_t, int> reference;
  for (int i = 0; i < 20000; ++i) {
    const uint64_t key = rng.NextBounded(512);  // force probe collisions
    switch (rng.NextBounded(3)) {
      case 0: {
        const int value = static_cast<int>(rng.NextBounded(1000));
        flat[key] = value;
        reference[key] = value;
        break;
      }
      case 1:
        EXPECT_EQ(flat.Erase(key), reference.erase(key) > 0);
        break;
      default: {
        const int* found = flat.Find(key);
        auto it = reference.find(key);
        ASSERT_EQ(found != nullptr, it != reference.end());
        if (found != nullptr) EXPECT_EQ(*found, it->second);
        break;
      }
    }
    ASSERT_EQ(flat.size(), reference.size());
  }
  std::vector<std::pair<uint64_t, int>> seen;
  flat.ForEach([&seen](uint64_t k, int v) { seen.emplace_back(k, v); });
  std::sort(seen.begin(), seen.end());
  EXPECT_TRUE(std::equal(seen.begin(), seen.end(), reference.begin(),
                         reference.end(),
                         [](const auto& a, const auto& b) {
                           return a.first == b.first && a.second == b.second;
                         }));
}

TEST(FlatHashMapTest, TryEmplaceResetsRecycledSlots) {
  FlatHashMap<uint32_t, std::vector<int>> map;
  map[7].push_back(42);
  EXPECT_TRUE(map.Erase(7));
  auto [value, inserted] = map.TryEmplace(7);
  EXPECT_TRUE(inserted);
  EXPECT_TRUE(value->empty()) << "re-inserted slot must be value-fresh";
}

TEST(FlatHashMapTest, ClearKeepsEntriesOutButAllowsReuse) {
  FlatHashMap<uint64_t, int> map;
  for (uint64_t k = 0; k < 100; ++k) map[k] = static_cast<int>(k);
  map.Clear();
  EXPECT_EQ(map.size(), 0u);
  EXPECT_EQ(map.Find(5), nullptr);
  map[5] = 55;
  EXPECT_EQ(*map.Find(5), 55);
  EXPECT_EQ(map.size(), 1u);
}

TEST(FlatHashSetTest, InsertContainsErase) {
  FlatHashSet<int64_t> set;
  EXPECT_TRUE(set.Insert(-3));
  EXPECT_FALSE(set.Insert(-3));
  EXPECT_TRUE(set.Contains(-3));
  EXPECT_FALSE(set.Contains(4));
  EXPECT_TRUE(set.Erase(-3));
  EXPECT_FALSE(set.Contains(-3));
  EXPECT_EQ(set.size(), 0u);
}

// --- RingBuffer -------------------------------------------------------------

TEST(RingBufferTest, SlidingWindowAgainstDeque) {
  Rng rng(7);
  RingBuffer<int> ring;
  std::deque<int> reference;
  for (int i = 0; i < 5000; ++i) {
    if (reference.empty() || rng.NextBounded(3) != 0) {
      ring.push_back(i);
      reference.push_back(i);
    } else {
      ring.pop_front();
      reference.pop_front();
    }
    ASSERT_EQ(ring.size(), reference.size());
    if (!reference.empty()) {
      ASSERT_EQ(ring.front(), reference.front());
      ASSERT_EQ(ring.back(), reference.back());
    }
  }
  for (size_t i = 0; i < reference.size(); ++i) {
    ASSERT_EQ(ring[i], reference[i]);
  }
  ring.clear();
  EXPECT_TRUE(ring.empty());
}

}  // namespace
}  // namespace marlin
