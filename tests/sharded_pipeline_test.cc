// Sharded-pipeline tests: determinism against the sequential reference,
// partition-aware storage views, metric merging, shard routing.

#include <gtest/gtest.h>

#include <algorithm>
#include <chrono>
#include <map>
#include <mutex>
#include <thread>
#include <tuple>
#include <vector>

#include "context/registry.h"
#include "context/weather.h"
#include "core/pipeline.h"
#include "core/sharded_pipeline.h"
#include "sim/scenario.h"
#include "sim/world.h"
#include "storage/trajectory_store.h"
#include "stream/shard_router.h"

namespace marlin {
namespace {

ScenarioOutput MakeScenario(uint64_t seed, bool perfect_reception) {
  static World world = World::Basin();
  ScenarioConfig config;
  config.seed = seed;
  config.duration = 90 * kMillisPerMinute;
  config.transit_vessels = 14;
  config.fishing_vessels = 4;
  config.loiter_vessels = 2;
  config.rendezvous_pairs = 2;
  config.dark_vessels = 2;
  config.spoof_identity_vessels = 1;
  config.spoof_teleport_vessels = 1;
  config.perfect_reception = perfect_reception;
  return GenerateScenario(world, config);
}

const World& SharedWorld() {
  static World world = World::Basin();
  return world;
}

auto EventKey(const DetectedEvent& ev) {
  return std::make_tuple(ev.detected_at, ev.vessel_a, ev.vessel_b,
                         static_cast<int>(ev.type), ev.start, ev.end,
                         ev.zone_id, ev.severity, ev.where.lat, ev.where.lon);
}

void ExpectSameEvents(const std::vector<DetectedEvent>& a,
                      const std::vector<DetectedEvent>& b,
                      bool compare_order) {
  ASSERT_EQ(a.size(), b.size());
  std::vector<decltype(EventKey(a.front()))> ka, kb;
  for (const auto& ev : a) ka.push_back(EventKey(ev));
  for (const auto& ev : b) kb.push_back(EventKey(ev));
  if (!compare_order) {
    std::sort(ka.begin(), ka.end());
    std::sort(kb.begin(), kb.end());
  }
  for (size_t i = 0; i < ka.size(); ++i) {
    EXPECT_EQ(ka[i], kb[i]) << "event mismatch at index " << i;
  }
}

PipelineConfig TestConfig() {
  PipelineConfig pc;
  pc.window_lines = 512;  // several windows per scenario
  return pc;
}

// --- Determinism ------------------------------------------------------------

TEST(ShardedPipelineTest, OneShardReproducesSequentialExactly) {
  const ScenarioOutput scenario = MakeScenario(901, /*perfect_reception=*/false);
  const PipelineConfig pc = TestConfig();

  MaritimePipeline sequential(pc, &SharedWorld().zones(), nullptr, nullptr,
                              nullptr);
  const auto seq_events = sequential.Run(scenario.nmea);

  ShardedPipeline::Options opts;
  opts.num_shards = 1;
  ShardedPipeline sharded(pc, opts, &SharedWorld().zones(), nullptr, nullptr,
                          nullptr);
  const auto shard_events = sharded.Run(scenario.nmea);

  ASSERT_GT(seq_events.size(), 0u);
  ExpectSameEvents(seq_events, shard_events, /*compare_order=*/true);

  // Stage counters agree bit-for-bit.
  const PipelineMetrics& ms = sequential.metrics();
  const PipelineMetrics& mp = sharded.metrics();
  EXPECT_EQ(ms.decoder.lines_in, mp.decoder.lines_in);
  EXPECT_EQ(ms.decoder.messages_out, mp.decoder.messages_out);
  EXPECT_EQ(ms.decoder.bad_sentences, mp.decoder.bad_sentences);
  EXPECT_EQ(ms.decoder.pending_fragments, mp.decoder.pending_fragments);
  EXPECT_EQ(ms.reconstruction.points_out, mp.reconstruction.points_out);
  EXPECT_EQ(ms.reconstruction.late_dropped, mp.reconstruction.late_dropped);
  EXPECT_EQ(ms.synopses.points_in, mp.synopses.points_in);
  EXPECT_EQ(ms.synopses.points_out, mp.synopses.points_out);
  EXPECT_EQ(ms.events.points_in, mp.events.points_in);
  EXPECT_EQ(ms.events.events_out, mp.events.events_out);
  EXPECT_EQ(ms.alerts, mp.alerts);
  EXPECT_EQ(ms.ingest_rate.count(), mp.ingest_rate.count());
  EXPECT_EQ(ms.end_to_end_latency.count(), mp.end_to_end_latency.count());
}

TEST(ShardedPipelineTest, ManyShardsProduceSameEventMultiset) {
  const ScenarioOutput scenario = MakeScenario(902, /*perfect_reception=*/false);
  const PipelineConfig pc = TestConfig();

  MaritimePipeline sequential(pc, &SharedWorld().zones(), nullptr, nullptr,
                              nullptr);
  const auto seq_events = sequential.Run(scenario.nmea);
  ASSERT_GT(seq_events.size(), 0u);

  for (size_t num_shards : {2, 3, 4, 8}) {
    ShardedPipeline::Options opts;
    opts.num_shards = num_shards;
    ShardedPipeline sharded(pc, opts, &SharedWorld().zones(), nullptr,
                            nullptr, nullptr);
    const auto shard_events = sharded.Run(scenario.nmea);
    ExpectSameEvents(seq_events, shard_events, /*compare_order=*/false);

    const PipelineMetrics& ms = sequential.metrics();
    const PipelineMetrics& mp = sharded.metrics();
    EXPECT_EQ(ms.decoder.messages_out, mp.decoder.messages_out);
    EXPECT_EQ(ms.reconstruction.points_out, mp.reconstruction.points_out);
    EXPECT_EQ(ms.synopses.points_out, mp.synopses.points_out);
    EXPECT_EQ(ms.events.events_out, mp.events.events_out);
    EXPECT_EQ(ms.alerts, mp.alerts);
    EXPECT_EQ(ms.end_to_end_latency.count(), mp.end_to_end_latency.count());
  }
}

// The queue fabric (lock-free SPSC rings vs the mutex reference arm) only
// changes hand-off cost, never the stream: both arms must emit the same
// events in the same order and keep the hop counters conserved.
TEST(ShardedPipelineTest, FabricArmsProduceIdenticalEvents) {
  const ScenarioOutput scenario = MakeScenario(903, /*perfect_reception=*/false);
  PipelineConfig pc = TestConfig();
  pc.pair_threads = 2;  // exercise the pair-stage hop as well

  std::vector<DetectedEvent> events[2];
  for (int arm = 0; arm < 2; ++arm) {
    PipelineConfig cfg = pc;
    cfg.lock_free_fabric = (arm == 0);
    ShardedPipeline::Options opts;
    opts.num_shards = 2;
    ShardedPipeline pipeline(cfg, opts, &SharedWorld().zones(), nullptr,
                             nullptr, nullptr);
    events[arm] = pipeline.Run(scenario.nmea);

    // Hop conservation at the post-Finish quiescent point: every command
    // pushed was popped, and pops were accounted to batch buckets.
    const QueueHopStats& hop = pipeline.metrics().shard_hop;
    EXPECT_GT(hop.pushed, 0u);
    EXPECT_EQ(hop.pushed, hop.popped);
    EXPECT_GT(hop.batches(), 0u);
    EXPECT_GT(hop.depth_high_water, 0u);
    const QueueHopStats& pair_hop = pipeline.metrics().pair_hop;
    EXPECT_EQ(pair_hop.pushed, pair_hop.popped);
  }
  ASSERT_GT(events[0].size(), 0u);
  ExpectSameEvents(events[0], events[1], /*compare_order=*/true);
}

TEST(ShardedPipelineTest, SplitBatchesMatchSingleBatch) {
  // Window boundaries are defined by line count, not batch boundaries:
  // feeding the stream in arbitrary chunks must not change the output.
  const ScenarioOutput scenario = MakeScenario(903, /*perfect_reception=*/true);
  const PipelineConfig pc = TestConfig();

  ShardedPipeline::Options opts;
  opts.num_shards = 3;
  ShardedPipeline one_batch(pc, opts, &SharedWorld().zones(), nullptr,
                            nullptr, nullptr);
  const auto whole = one_batch.Run(scenario.nmea);

  ShardedPipeline split(pc, opts, &SharedWorld().zones(), nullptr, nullptr,
                        nullptr);
  std::vector<DetectedEvent> pieced;
  std::span<const Event<std::string>> all(scenario.nmea);
  // Deliberately misaligned chunk sizes.
  for (size_t off = 0; off < all.size();) {
    const size_t take = std::min<size_t>(737, all.size() - off);
    auto part = split.IngestBatch(all.subspan(off, take));
    pieced.insert(pieced.end(), part.begin(), part.end());
    off += take;
  }
  auto tail = split.Finish();
  pieced.insert(pieced.end(), tail.begin(), tail.end());

  ExpectSameEvents(whole, pieced, /*compare_order=*/true);
}

TEST(ShardedPipelineTest, TimeCapClosesWindowsOnLowRateFeeds) {
  // With a line budget that never fills, the ingest-time cap must still
  // close windows so alerts are not deferred to Finish.
  const ScenarioOutput scenario = MakeScenario(905, /*perfect_reception=*/true);
  PipelineConfig pc;
  pc.window_lines = 1u << 20;  // effectively line-unbounded
  pc.window_time_ms = Minutes(1);

  MaritimePipeline sequential(pc, &SharedWorld().zones(), nullptr, nullptr,
                              nullptr);
  size_t seq_before_finish = 0;
  for (const auto& ev : scenario.nmea) {
    seq_before_finish +=
        sequential.IngestNmea(ev.payload, ev.ingest_time).size();
  }
  const auto seq_tail = sequential.Finish();
  EXPECT_GT(seq_before_finish, 0u) << "no window closed before Finish";

  ShardedPipeline::Options opts;
  opts.num_shards = 2;
  ShardedPipeline sharded(pc, opts, &SharedWorld().zones(), nullptr, nullptr,
                          nullptr);
  const size_t sharded_before_finish =
      sharded.IngestBatch(scenario.nmea).size();
  const auto sharded_tail = sharded.Finish();
  EXPECT_EQ(sharded_before_finish, seq_before_finish);
  EXPECT_EQ(sharded_tail.size(), seq_tail.size());
}

// --- Grid-parallel pair stage (scenario replay) ------------------------------

TEST(ShardedPipelineTest, GridPairStageOneShardIsByteIdenticalToSequential) {
  // The tightest equivalence claim: one MMSI shard + grid-parallel pair
  // stage reproduces the sequential pipeline's event stream exactly, in
  // order, for several cell-grid/thread configurations.
  const ScenarioOutput scenario = MakeScenario(921, /*perfect_reception=*/false);
  const PipelineConfig pc = TestConfig();

  MaritimePipeline sequential(pc, &SharedWorld().zones(), nullptr, nullptr,
                              nullptr);
  const auto seq_events = sequential.Run(scenario.nmea);
  ASSERT_GT(seq_events.size(), 0u);

  struct GridConfig {
    size_t pair_threads;
    double cell_m;
  };
  for (const GridConfig& grid :
       {GridConfig{2, 0.0 /* auto: interaction radius */},
        GridConfig{3, 5000.0}, GridConfig{4, 20000.0}}) {
    PipelineConfig grid_pc = pc;
    grid_pc.pair_threads = grid.pair_threads;
    grid_pc.pair_cell_size_m = grid.cell_m;
    ShardedPipeline::Options opts;
    opts.num_shards = 1;
    ShardedPipeline sharded(grid_pc, opts, &SharedWorld().zones(), nullptr,
                            nullptr, nullptr);
    const auto grid_events = sharded.Run(scenario.nmea);
    ExpectSameEvents(seq_events, grid_events, /*compare_order=*/true);

    const PipelineMetrics& ms = sequential.metrics();
    const PipelineMetrics& mp = sharded.metrics();
    EXPECT_EQ(ms.events.points_in, mp.events.points_in);
    EXPECT_EQ(ms.events.events_out, mp.events.events_out);
    EXPECT_EQ(ms.alerts, mp.alerts);
    EXPECT_EQ(mp.pair_stage.windows,
              mp.pair_stage.parallel_windows + mp.pair_stage.sequential_windows);
    EXPECT_GT(mp.pair_stage.parallel_windows, 0u)
        << "pair_threads=" << grid.pair_threads << " cell=" << grid.cell_m
        << ": grid path never engaged";
  }
}

TEST(ShardedPipelineTest, GridPairStageManyShardsMatchSequentialMultiset) {
  const ScenarioOutput scenario = MakeScenario(922, /*perfect_reception=*/true);
  const PipelineConfig pc = TestConfig();

  MaritimePipeline sequential(pc, &SharedWorld().zones(), nullptr, nullptr,
                              nullptr);
  const auto seq_events = sequential.Run(scenario.nmea);
  ASSERT_GT(seq_events.size(), 0u);

  for (size_t num_shards : {2, 4}) {
    for (size_t pair_threads : {2, 4}) {
      PipelineConfig grid_pc = pc;
      grid_pc.pair_threads = pair_threads;
      ShardedPipeline::Options opts;
      opts.num_shards = num_shards;
      ShardedPipeline sharded(grid_pc, opts, &SharedWorld().zones(), nullptr,
                              nullptr, nullptr);
      const auto grid_events = sharded.Run(scenario.nmea);
      ExpectSameEvents(seq_events, grid_events, /*compare_order=*/false);
      EXPECT_EQ(sequential.metrics().events.events_out,
                sharded.metrics().events.events_out);
      EXPECT_EQ(sequential.metrics().alerts, sharded.metrics().alerts);
      EXPECT_GT(sharded.metrics().pair_stage.parallel_windows, 0u);
    }
  }
}

TEST(ShardedPipelineTest, GridPairStageReportsOccupancyAndHaloTraffic) {
  const ScenarioOutput scenario = MakeScenario(923, /*perfect_reception=*/true);
  PipelineConfig pc = TestConfig();
  pc.pair_threads = 3;
  pc.pair_cell_size_m = 8000.0;

  ShardedPipeline::Options opts;
  opts.num_shards = 2;
  ShardedPipeline sharded(pc, opts, &SharedWorld().zones(), nullptr, nullptr,
                          nullptr);
  sharded.Run(scenario.nmea);

  const PairStageStats& stage = sharded.metrics().pair_stage;
  EXPECT_GT(stage.windows, 0u);
  EXPECT_GT(stage.parallel_windows, 0u);
  EXPECT_GT(stage.observations, 0u);
  EXPECT_GT(stage.cells, 0u);
  EXPECT_GE(stage.max_cells_per_window, 2u);
  EXPECT_GT(stage.max_cell_observations, 0u);
  EXPECT_GE(stage.max_halo_rings, 1);
  EXPECT_GT(stage.max_cell_share, 0.0);
  EXPECT_LE(stage.max_cell_share, 1.0);
  EXPECT_GT(stage.MeanCellsPerWindow(), 1.0);
}

// --- Partitioned storage ----------------------------------------------------

TEST(ShardedPipelineTest, PartitionedStoreViewMatchesSequentialStore) {
  const ScenarioOutput scenario = MakeScenario(904, /*perfect_reception=*/true);
  const PipelineConfig pc = TestConfig();

  MaritimePipeline sequential(pc, &SharedWorld().zones(), nullptr, nullptr,
                              nullptr);
  sequential.Run(scenario.nmea);

  ShardedPipeline::Options opts;
  opts.num_shards = 4;
  ShardedPipeline sharded(pc, opts, &SharedWorld().zones(), nullptr, nullptr,
                          nullptr);
  sharded.Run(scenario.nmea);

  const TrajectoryStore& seq_store = sequential.store();
  const PartitionedTrajectoryView view = sharded.store_view();

  EXPECT_EQ(view.partition_count(), 4u);
  EXPECT_EQ(view.VesselCount(), seq_store.VesselCount());
  EXPECT_EQ(view.PointCount(), seq_store.PointCount());

  // Work actually spread across partitions.
  size_t populated = 0;
  for (size_t i = 0; i < view.partition_count(); ++i) {
    if (view.partition(i).VesselCount() > 0) ++populated;
  }
  EXPECT_GE(populated, 2u);

  // Per-vessel routing: histories identical.
  auto vessels = view.Vessels();
  ASSERT_FALSE(vessels.empty());
  auto seq_vessels = seq_store.Vessels();
  std::sort(seq_vessels.begin(), seq_vessels.end());
  EXPECT_EQ(vessels, seq_vessels);
  for (uint32_t mmsi : vessels) {
    auto seq_traj = seq_store.GetTrajectory(mmsi);
    auto sharded_traj = view.GetTrajectory(mmsi);
    ASSERT_TRUE(seq_traj.ok());
    ASSERT_TRUE(sharded_traj.ok());
    ASSERT_EQ((*seq_traj)->points.size(), (*sharded_traj)->points.size());
  }

  // Merged spatial queries agree with the sequential store.
  const GeoPoint probe = (*seq_store.GetTrajectory(vessels[0]))->points[0]
                             .position;
  auto seq_near = seq_store.NearestLive(probe, 5);
  auto view_near = view.NearestLive(probe, 5);
  ASSERT_EQ(seq_near.size(), view_near.size());
  for (size_t i = 0; i < seq_near.size(); ++i) {
    EXPECT_EQ(seq_near[i].first, view_near[i].first);
    EXPECT_DOUBLE_EQ(seq_near[i].second, view_near[i].second);
  }

  // Merged coverage answers like the sequential model.
  const CoverageModel merged = sharded.MergedCoverage();
  for (uint32_t mmsi : vessels) {
    EXPECT_EQ(merged.DarkFraction(mmsi),
              sequential.coverage().DarkFraction(mmsi));
  }

  // Merged synopsis log is the sequential log, canonically ordered.
  auto seq_log = sequential.synopsis_log();
  auto sharded_log = sharded.MergedSynopsisLog();
  ASSERT_EQ(seq_log.size(), sharded_log.size());
  std::stable_sort(seq_log.begin(), seq_log.end(),
                   [](const CriticalPoint& a, const CriticalPoint& b) {
                     if (a.point.t != b.point.t) return a.point.t < b.point.t;
                     if (a.mmsi != b.mmsi) return a.mmsi < b.mmsi;
                     return static_cast<int>(a.type) < static_cast<int>(b.type);
                   });
  for (size_t i = 0; i < seq_log.size(); ++i) {
    EXPECT_EQ(seq_log[i].mmsi, sharded_log[i].mmsi);
    EXPECT_EQ(seq_log[i].point.t, sharded_log[i].point.t);
    EXPECT_EQ(seq_log[i].type, sharded_log[i].type);
  }
}

// --- Mergeable stats --------------------------------------------------------

TEST(StatsMergeTest, DecoderStatsSum) {
  AisDecoder::Stats a, b;
  a.lines_in = 10;
  a.messages_out = 7;
  a.bad_sentences = 2;
  b.lines_in = 5;
  b.messages_out = 4;
  b.pending_fragments = 1;
  a.Merge(b);
  EXPECT_EQ(a.lines_in, 15u);
  EXPECT_EQ(a.messages_out, 11u);
  EXPECT_EQ(a.bad_sentences, 2u);
  EXPECT_EQ(a.pending_fragments, 1u);
}

TEST(StatsMergeTest, ReconstructionStatsSum) {
  TrajectoryReconstructor::Stats a, b;
  a.reports_in = 100;
  a.points_out = 90;
  a.duplicates = 5;
  b.reports_in = 50;
  b.points_out = 45;
  b.outliers = 3;
  a.Merge(b);
  EXPECT_EQ(a.reports_in, 150u);
  EXPECT_EQ(a.points_out, 135u);
  EXPECT_EQ(a.duplicates, 5u);
  EXPECT_EQ(a.outliers, 3u);
}

TEST(StatsMergeTest, SynopsisStatsPreserveCompressionRatio) {
  SynopsisEngine::Stats a, b;
  a.points_in = 1000;
  a.points_out = 50;
  b.points_in = 500;
  b.points_out = 100;
  a.Merge(b);
  EXPECT_EQ(a.points_in, 1500u);
  EXPECT_EQ(a.points_out, 150u);
  EXPECT_NEAR(a.CompressionRatio(), 0.9, 1e-9);
}

TEST(StatsMergeTest, EventAndEnrichmentStatsSum) {
  EventEngine::Stats ea, eb;
  ea.points_in = 10;
  ea.events_out = 3;
  eb.points_in = 20;
  eb.events_out = 5;
  ea.Merge(eb);
  EXPECT_EQ(ea.points_in, 30u);
  EXPECT_EQ(ea.events_out, 8u);

  EnrichmentEngine::Stats na, nb;
  na.points = 4;
  nb.points = 6;
  nb.zone_hits = 2;
  na.Merge(nb);
  EXPECT_EQ(na.points, 10u);
  EXPECT_EQ(na.zone_hits, 2u);
}

TEST(StatsMergeTest, QualityReportSums) {
  QualityAssessor::Report a, b;
  a.static_messages = 10;
  a.static_with_defects = 1;
  a.defect_counts[2] = 1;
  b.static_messages = 30;
  b.static_with_defects = 3;
  b.defect_counts[2] = 2;
  b.position_messages = 100;
  a.Merge(b);
  EXPECT_EQ(a.static_messages, 40u);
  EXPECT_EQ(a.static_with_defects, 4u);
  EXPECT_EQ(a.defect_counts[2], 3u);
  EXPECT_EQ(a.position_messages, 100u);
  EXPECT_NEAR(a.StaticErrorRate(), 0.1, 1e-9);
}

TEST(StatsMergeTest, RateMeterUnionsSpan) {
  RateMeter a, b;
  for (int i = 0; i <= 10; ++i) a.Observe(1000 + i * 100);
  for (int i = 0; i <= 10; ++i) b.Observe(500 + i * 100);
  const uint64_t total = a.count() + b.count();
  a.Merge(b);
  EXPECT_EQ(a.count(), total);
  EXPECT_EQ(a.first_event(), 500);
  EXPECT_EQ(a.last_event(), 2000);

  RateMeter empty;
  a.Merge(empty);  // merging an empty meter is a no-op
  EXPECT_EQ(a.count(), total);
  EXPECT_EQ(a.first_event(), 500);
}

TEST(StatsMergeTest, LatencyReservoirMergePreservesCountAndMean) {
  LatencyReservoir a(64), b(64);
  for (int i = 1; i <= 1000; ++i) a.Observe(i);
  for (int i = 1001; i <= 2000; ++i) b.Observe(i);
  const double expected_mean =
      (a.Mean() * a.count() + b.Mean() * b.count()) / 2000.0;
  a.Merge(b);
  EXPECT_EQ(a.count(), 2000u);
  EXPECT_NEAR(a.Mean(), expected_mean, 1e-9);
  // Quantiles remain sane (samples from both halves retained).
  EXPECT_GT(a.Quantile(0.99), 500);
}

TEST(StatsMergeTest, CoverageModelMergeDisjointVessels) {
  CoverageModel::Options opts;
  opts.max_report_interval_ms = Minutes(3);
  CoverageModel a(opts), b(opts);
  // Vessel 1 in a: dark gap 10:00–10:30-ish.
  a.Observe(1, 0);
  a.Observe(1, Minutes(1));
  a.Observe(1, Minutes(31));  // 30-minute gap
  a.Observe(1, Minutes(32));
  // Vessel 2 in b: continuous.
  for (int i = 0; i <= 30; ++i) b.Observe(2, Minutes(i));
  a.Merge(b);
  EXPECT_TRUE(a.IsDark(1, Minutes(15)));
  EXPECT_FALSE(a.IsDark(2, Minutes(15)));
  EXPECT_EQ(a.Vessels().size(), 2u);
}

// --- Enriched output stream -------------------------------------------------

auto EnrichedKey(const EnrichedPoint& p) {
  return std::make_tuple(p.base.mmsi, p.base.point.t, p.base.point.position.lat,
                         p.base.point.position.lon, p.base.starts_segment,
                         p.base.gap_before_ms, p.zone_ids,
                         p.weather.wind_speed_mps, p.weather.wave_height_m,
                         static_cast<int>(p.category), p.vessel_name,
                         p.registry_conflict);
}

/// Two registries over the scenario fleet, disagreeing on some flags so the
/// resolver's conflict path is exercised end-to-end.
void FillRegistries(const std::vector<VesselSpec>& fleet, VesselRegistry* a,
                    VesselRegistry* b) {
  for (const VesselSpec& v : fleet) {
    RegistryRecord rec;
    rec.mmsi = v.mmsi;
    rec.imo = v.imo;
    rec.name = v.name;
    rec.call_sign = v.call_sign;
    rec.length_m = v.length_m;
    rec.beam_m = v.beam_m;
    rec.ship_type = v.ship_type;
    rec.flag = "GR";
    a->Upsert(rec);
    RegistryRecord rec_b = rec;
    if (v.mmsi % 3 == 0) rec_b.flag = "MT";
    b->Upsert(rec_b);
  }
}

PipelineConfig EnrichedTestConfig() {
  PipelineConfig pc = TestConfig();
  // Deep queues/buffers: these tests assert lossless delivery; drops are
  // exercised separately with a deliberately slow provider.
  pc.enrichment_queue_depth = 1u << 20;
  pc.enriched_output_capacity = 1u << 20;
  return pc;
}

TEST(EnrichedStreamTest, OneShardMatchesSequentialExactly) {
  const ScenarioOutput scenario = MakeScenario(911, /*perfect_reception=*/false);
  const PipelineConfig pc = EnrichedTestConfig();
  WeatherProvider weather(7);
  VesselRegistry reg_a("marinetraffic"), reg_b("lloyds");
  FillRegistries(scenario.fleet, &reg_a, &reg_b);

  MaritimePipeline sequential(pc, &SharedWorld().zones(), &weather, &reg_a,
                              &reg_b);
  sequential.Run(scenario.nmea);
  std::vector<EnrichedPoint> seq_enriched;
  sequential.DrainEnriched(&seq_enriched);

  ShardedPipeline::Options opts;
  opts.num_shards = 1;
  ShardedPipeline sharded(pc, opts, &SharedWorld().zones(), &weather, &reg_a,
                          &reg_b);
  sharded.Run(scenario.nmea);
  std::vector<EnrichedPoint> shard_enriched;
  sharded.DrainEnriched(&shard_enriched);

  // Every clean point reaches the consumer — nothing is discarded.
  ASSERT_GT(seq_enriched.size(), 0u);
  EXPECT_EQ(seq_enriched.size(),
            sequential.metrics().reconstruction.points_out);

  // One shard reproduces the sequential enriched stream exactly, in order.
  ASSERT_EQ(seq_enriched.size(), shard_enriched.size());
  for (size_t i = 0; i < seq_enriched.size(); ++i) {
    ASSERT_EQ(EnrichedKey(seq_enriched[i]), EnrichedKey(shard_enriched[i]))
        << "enriched point mismatch at index " << i;
  }

  const PipelineMetrics& ms = sequential.metrics();
  const PipelineMetrics& mp = sharded.metrics();
  EXPECT_EQ(ms.enrichment.points, mp.enrichment.points);
  EXPECT_EQ(ms.enrichment.zone_hits, mp.enrichment.zone_hits);
  EXPECT_EQ(ms.enrichment.registry_hits, mp.enrichment.registry_hits);
  EXPECT_EQ(ms.enrichment.registry_conflicts, mp.enrichment.registry_conflicts);
  EXPECT_GT(ms.enrichment.registry_hits, 0u);
  EXPECT_EQ(ms.enrichment_stage.submitted, mp.enrichment_stage.submitted);
  EXPECT_EQ(mp.enrichment_stage.processed, mp.enrichment_stage.submitted);
  EXPECT_EQ(mp.enrichment_stage.dropped(), 0u);
}

TEST(EnrichedStreamTest, ManyShardsPreservePerVesselStreams) {
  const ScenarioOutput scenario = MakeScenario(912, /*perfect_reception=*/false);
  const PipelineConfig pc = EnrichedTestConfig();
  WeatherProvider weather(7);

  MaritimePipeline sequential(pc, &SharedWorld().zones(), &weather, nullptr,
                              nullptr);
  sequential.Run(scenario.nmea);
  std::vector<EnrichedPoint> seq_enriched;
  sequential.DrainEnriched(&seq_enriched);
  ASSERT_GT(seq_enriched.size(), 0u);

  using Key = decltype(EnrichedKey(seq_enriched.front()));
  std::map<Mmsi, std::vector<Key>> seq_per_vessel;
  for (const EnrichedPoint& p : seq_enriched) {
    seq_per_vessel[p.base.mmsi].push_back(EnrichedKey(p));
  }

  for (size_t num_shards : {2, 4}) {
    ShardedPipeline::Options opts;
    opts.num_shards = num_shards;
    ShardedPipeline sharded(pc, opts, &SharedWorld().zones(), &weather,
                            nullptr, nullptr);
    sharded.Run(scenario.nmea);
    std::vector<EnrichedPoint> shard_enriched;
    sharded.DrainEnriched(&shard_enriched);
    EXPECT_EQ(shard_enriched.size(), seq_enriched.size());

    // Per-vessel subsequences are exactly the sequential ones (which also
    // implies the streams are equal as multisets).
    std::map<Mmsi, std::vector<Key>> per_vessel;
    for (const EnrichedPoint& p : shard_enriched) {
      per_vessel[p.base.mmsi].push_back(EnrichedKey(p));
    }
    EXPECT_EQ(per_vessel, seq_per_vessel) << num_shards << " shards";
  }
}

TEST(EnrichedStreamTest, SinkDeliversEveryPointWithPerVesselOrder) {
  const ScenarioOutput scenario = MakeScenario(913, /*perfect_reception=*/true);
  const PipelineConfig pc = EnrichedTestConfig();

  ShardedPipeline::Options opts;
  opts.num_shards = 3;
  ShardedPipeline sharded(pc, opts, &SharedWorld().zones(), nullptr, nullptr,
                          nullptr);
  std::mutex mu;
  uint64_t delivered = 0;
  std::map<Mmsi, Timestamp> last_t;
  bool ordered = true;
  sharded.SetEnrichedSink([&](const EnrichedPoint& p) {
    std::lock_guard<std::mutex> lock(mu);
    ++delivered;
    auto [it, inserted] = last_t.try_emplace(p.base.mmsi, p.base.point.t);
    if (!inserted) {
      if (p.base.point.t < it->second) ordered = false;
      it->second = p.base.point.t;
    }
  });
  sharded.Run(scenario.nmea);

  std::lock_guard<std::mutex> lock(mu);
  EXPECT_TRUE(ordered) << "per-vessel event-time order violated";
  EXPECT_EQ(delivered, sharded.metrics().reconstruction.points_out);
  EXPECT_EQ(delivered, sharded.metrics().enrichment_stage.processed);
  EXPECT_EQ(sharded.metrics().enrichment_stage.dropped(), 0u);
  // With a sink installed nothing accumulates for DrainEnriched.
  std::vector<EnrichedPoint> drained;
  EXPECT_EQ(sharded.DrainEnriched(&drained), 0u);
}

/// Weather source with a deliberate per-lookup stall — the slow upstream
/// service of the backpressure scenarios. Blocks rather than spins so it
/// models I/O latency without stealing CPU from the shard workers.
class SlowWeatherProvider : public WeatherProvider {
 public:
  SlowWeatherProvider(uint64_t seed, std::chrono::microseconds stall)
      : WeatherProvider(seed), stall_(stall) {}

  WeatherSample At(const GeoPoint& p, Timestamp t) const override {
    std::this_thread::sleep_for(stall_);
    return WeatherProvider::At(p, t);
  }

 private:
  std::chrono::microseconds stall_;
};

TEST(EnrichedStreamTest, SlowProviderDropsAreCountedAndIngestCompletes) {
  const ScenarioOutput scenario = MakeScenario(914, /*perfect_reception=*/true);
  PipelineConfig pc = TestConfig();
  pc.enrichment_queue_depth = 8;  // tiny queue: force backpressure
  pc.enriched_output_capacity = 1u << 20;
  // 2 ms per lookup: slower than ingest even under sanitizers (sleeps are
  // not throttled by TSan, ingest is), so drops always occur.
  SlowWeatherProvider weather(7, std::chrono::milliseconds(2));

  ShardedPipeline::Options opts;
  opts.num_shards = 2;
  ShardedPipeline sharded(pc, opts, &SharedWorld().zones(), &weather, nullptr,
                          nullptr);
  const auto events = sharded.Run(scenario.nmea);
  EXPECT_GT(events.size(), 0u);  // detection unaffected by slow enrichment

  const SideStageStats stage = sharded.metrics().enrichment_stage;
  EXPECT_EQ(stage.submitted, sharded.metrics().reconstruction.points_out);
  EXPECT_GT(stage.queue_dropped, 0u) << "expected drop-oldest backpressure";
  EXPECT_EQ(stage.processed + stage.queue_dropped, stage.submitted)
      << "Finish must be a delivery-completeness barrier";

  // The thinned stream still arrives in per-vessel event-time order.
  std::vector<EnrichedPoint> drained;
  sharded.DrainEnriched(&drained);
  EXPECT_EQ(drained.size(), stage.processed);
  std::map<Mmsi, Timestamp> last_t;
  for (const EnrichedPoint& p : drained) {
    auto [it, inserted] = last_t.try_emplace(p.base.mmsi, p.base.point.t);
    if (!inserted) {
      EXPECT_LE(it->second, p.base.point.t);
      it->second = p.base.point.t;
    }
  }
}

TEST(EnrichedStreamTest, PerSourceLatencyAttributionCoversEveryJoin) {
  // PR 2 follow-on: SideStageStats attributes the join work per context
  // source, so a slow weather service is distinguishable from slow zones.
  const ScenarioOutput scenario = MakeScenario(916, /*perfect_reception=*/true);
  const PipelineConfig pc = EnrichedTestConfig();
  WeatherProvider weather(7);
  VesselRegistry reg_a("marinetraffic"), reg_b("lloyds");
  FillRegistries(scenario.fleet, &reg_a, &reg_b);

  ShardedPipeline::Options opts;
  opts.num_shards = 2;
  ShardedPipeline sharded(pc, opts, &SharedWorld().zones(), &weather, &reg_a,
                          &reg_b);
  sharded.Run(scenario.nmea);

  const SideStageStats stage = sharded.metrics().enrichment_stage;
  ASSERT_GT(stage.processed, 0u);
  ASSERT_EQ(stage.source_latency.size(), 3u);
  for (const char* source : {"zones", "weather", "registry"}) {
    auto it = stage.source_latency.find(source);
    ASSERT_NE(it, stage.source_latency.end()) << source;
    // One attributed call per transformed point, merged across shards.
    EXPECT_EQ(it->second.calls, stage.processed) << source;
    EXPECT_GE(it->second.max_us, it->second.total_us / (it->second.calls + 1))
        << source;
  }
}

TEST(EnrichedStreamTest, SlowSourceDominatesItsLatencyAttribution) {
  const ScenarioOutput scenario = MakeScenario(917, /*perfect_reception=*/true);
  PipelineConfig pc = TestConfig();
  pc.enrichment_queue_depth = 1u << 20;  // lossless: every point measured
  pc.enriched_output_capacity = 1u << 20;
  // 2 ms per weather lookup — sleeps give a hard per-call lower bound the
  // assertion can rely on even under sanitizers.
  SlowWeatherProvider weather(7, std::chrono::milliseconds(2));

  ShardedPipeline::Options opts;
  opts.num_shards = 2;
  ShardedPipeline sharded(pc, opts, &SharedWorld().zones(), &weather, nullptr,
                          nullptr);
  sharded.Run(scenario.nmea);

  const SideStageStats stage = sharded.metrics().enrichment_stage;
  ASSERT_GT(stage.processed, 0u);
  // No registries configured: that source must not be credited with calls.
  EXPECT_EQ(stage.source_latency.count("registry"), 0u);
  const auto weather_it = stage.source_latency.find("weather");
  const auto zones_it = stage.source_latency.find("zones");
  ASSERT_NE(weather_it, stage.source_latency.end());
  ASSERT_NE(zones_it, stage.source_latency.end());
  EXPECT_EQ(weather_it->second.calls, stage.processed);
  // Each weather lookup slept ≥ 2 ms; zone lookups are in-memory.
  EXPECT_GE(weather_it->second.MeanUs(), 2000.0);
  EXPECT_GT(weather_it->second.total_us, zones_it->second.total_us);
}

TEST(EnrichedStreamTest, EnrichmentCanBeDisabledEntirely) {
  const ScenarioOutput scenario = MakeScenario(915, /*perfect_reception=*/true);
  PipelineConfig pc = TestConfig();
  pc.enable_enrichment = false;

  ShardedPipeline::Options opts;
  opts.num_shards = 2;
  ShardedPipeline sharded(pc, opts, &SharedWorld().zones(), nullptr, nullptr,
                          nullptr);
  const auto events = sharded.Run(scenario.nmea);
  EXPECT_GT(events.size(), 0u);
  EXPECT_EQ(sharded.metrics().enrichment_stage.submitted, 0u);
  EXPECT_EQ(sharded.metrics().enrichment.points, 0u);
  std::vector<EnrichedPoint> drained;
  EXPECT_EQ(sharded.DrainEnriched(&drained), 0u);
}

// --- Shard router -----------------------------------------------------------

TEST(ShardRouterTest, DeterministicAndInRange) {
  ShardRouter router(7);
  for (uint64_t key = 0; key < 1000; ++key) {
    const size_t s = router.ShardFor(key);
    EXPECT_LT(s, 7u);
    EXPECT_EQ(s, router.ShardFor(key));  // stable
  }
}

TEST(ShardRouterTest, BalancesStructuredMmsis) {
  // Real MMSIs cluster under a few country prefixes; the router must still
  // spread them. Simulate two MID blocks with sequential suffixes.
  ShardRouter router(8);
  std::vector<size_t> load(8, 0);
  for (uint32_t i = 0; i < 500; ++i) {
    ++load[router.ShardFor(247000000 + i)];  // Italy block
    ++load[router.ShardFor(538000000 + i)];  // Marshall Islands block
  }
  const size_t total = 1000;
  for (size_t s = 0; s < 8; ++s) {
    EXPECT_GT(load[s], total / 8 / 3) << "shard " << s << " starved";
    EXPECT_LT(load[s], total / 8 * 3) << "shard " << s << " overloaded";
  }
}

TEST(ShardRouterTest, ZeroShardCountClampsToOne) {
  ShardRouter router(0);
  EXPECT_EQ(router.num_shards(), 1u);
  EXPECT_EQ(router.ShardFor(42), 0u);
}

}  // namespace
}  // namespace marlin
