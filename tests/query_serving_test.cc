// Historical serving tier tests: the determinism proof battery (same
// QuerySpec over sequential vs N-shard archives must be byte-identical,
// N ∈ {1, 2, 4}, across multiple scenario worlds), concurrent readers
// against live ingest, incremental index maintenance, and the
// allocation-freedom of the archive staging hot path.

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <cstring>
#include <filesystem>
#include <map>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "common/alloc_probe.h"
#include "core/pipeline.h"
#include "core/query_engine.h"
#include "core/sharded_pipeline.h"
#include "sim/scenario.h"
#include "sim/world.h"
#include "storage/archive.h"

MARLIN_INSTALL_ALLOC_PROBE()

namespace marlin {
namespace {

ScenarioOutput MakeScenario(uint64_t seed, bool perfect_reception) {
  static World world = World::Basin();
  ScenarioConfig config;
  config.seed = seed;
  config.duration = 90 * kMillisPerMinute;
  config.transit_vessels = 14;
  config.fishing_vessels = 4;
  config.loiter_vessels = 2;
  config.rendezvous_pairs = 2;
  config.dark_vessels = 2;
  config.spoof_identity_vessels = 1;
  config.spoof_teleport_vessels = 1;
  config.perfect_reception = perfect_reception;
  return GenerateScenario(world, config);
}

const World& SharedWorld() {
  static World world = World::Basin();
  return world;
}

PipelineConfig ArchiveConfig() {
  PipelineConfig pc;
  pc.window_lines = 512;  // several windows (= epochs) per scenario
  pc.archive.enabled = true;
  // Volatile archives: the equivalence proof is about blocks and query
  // results, not files. Small rebuild budget so scenarios cross the index
  // tail threshold repeatedly.
  pc.archive.index_rebuild_blocks = 16;
  return pc;
}

/// Byte-exact serialization of a result's rows: the proof compares these
/// strings, so "identical" means identical values AND identical order.
std::string RowBytes(const std::vector<QueryRow>& rows) {
  std::string out;
  out.reserve(rows.size() * 32);
  const auto append = [&out](const void* p, size_t n) {
    out.append(reinterpret_cast<const char*>(p), n);
  };
  for (const QueryRow& r : rows) {
    append(&r.t, sizeof(r.t));
    append(&r.mmsi, sizeof(r.mmsi));
    append(&r.position.lat, sizeof(r.position.lat));
    append(&r.position.lon, sizeof(r.position.lon));
    append(&r.sog_mps, sizeof(r.sog_mps));
    append(&r.cog_deg, sizeof(r.cog_deg));
  }
  return out;
}

/// The spec battery: every filter dimension alone and combined, derived
/// from the reference result so the filters are guaranteed selective.
std::vector<QuerySpec> SpecBattery(const QueryResult& full) {
  std::vector<QuerySpec> specs;
  specs.push_back(QuerySpec{});  // everything
  if (full.rows.empty()) return specs;

  const Timestamp tmin = full.rows.front().t;
  const Timestamp tmax = full.rows.back().t;
  const Timestamp span = tmax - tmin;

  QuerySpec time_range;
  time_range.t0 = tmin + span / 4;
  time_range.t1 = tmin + (3 * span) / 4;
  specs.push_back(time_range);

  BoundingBox extent = BoundingBox::Empty();
  for (const QueryRow& r : full.rows) extent.Extend(r.position);
  QuerySpec region;
  region.region = BoundingBox(
      extent.min_lat, extent.min_lon,
      extent.min_lat + (extent.max_lat - extent.min_lat) * 0.6,
      extent.min_lon + (extent.max_lon - extent.min_lon) * 0.6);
  specs.push_back(region);

  QuerySpec vessels;
  Mmsi last = 0;
  size_t distinct = 0;
  for (const QueryRow& r : full.rows) {
    if (r.mmsi == last) continue;
    last = r.mmsi;
    if (++distinct % 3 == 0) vessels.vessels.push_back(r.mmsi);
  }
  if (!vessels.vessels.empty()) specs.push_back(vessels);

  QuerySpec resample = time_range;
  resample.resample_ms = kMillisPerMinute;
  specs.push_back(resample);

  QuerySpec combo = time_range;
  combo.region = region.region;
  combo.vessels = vessels.vessels;
  specs.push_back(combo);
  return specs;
}

// --- Determinism: sequential vs N shards ----------------------------------

TEST(QueryServingTest, SequentialVsShardedByteIdentical) {
  for (const uint64_t seed : {7101u, 7102u, 7103u}) {
    const ScenarioOutput scenario =
        MakeScenario(seed, /*perfect_reception=*/seed == 7103u);
    const PipelineConfig pc = ArchiveConfig();

    MaritimePipeline sequential(pc, &SharedWorld().zones(), nullptr, nullptr,
                                nullptr);
    sequential.Run(scenario.nmea);
    ASSERT_NE(sequential.archive(), nullptr);
    QueryEngine reference({sequential.archive()});
    const QueryResult full = reference.Execute(QuerySpec{});
    ASSERT_GT(full.rows.size(), 0u) << "seed " << seed;
    const std::vector<QuerySpec> battery = SpecBattery(full);

    for (const size_t num_shards : {1, 2, 4}) {
      ShardedPipeline::Options opts;
      opts.num_shards = num_shards;
      ShardedPipeline sharded(pc, opts, &SharedWorld().zones(), nullptr,
                              nullptr, nullptr);
      sharded.Run(scenario.nmea);

      QueryEngine::Options qopts;
      qopts.num_workers = num_shards > 1 ? 2 : 0;
      QueryEngine engine(sharded.archive_view(), qopts);
      for (size_t i = 0; i < battery.size(); ++i) {
        const QueryResult seq = reference.Execute(battery[i]);
        const QueryResult shd = engine.Execute(battery[i]);
        EXPECT_EQ(RowBytes(seq.rows), RowBytes(shd.rows))
            << "seed " << seed << " shards " << num_shards << " spec " << i;
        EXPECT_EQ(seq.rows.size(), shd.rows.size());
      }
      // Identical blocks were cut: same staging, same epoch boundaries.
      const auto& m = sharded.metrics().archive;
      EXPECT_EQ(m.blocks, sequential.metrics().archive.blocks);
      EXPECT_EQ(m.points_staged, sequential.metrics().archive.points_staged);
    }
  }
}

TEST(QueryServingTest, FilteredQueriesMatchBruteForce) {
  const ScenarioOutput scenario = MakeScenario(7104, false);
  const PipelineConfig pc = ArchiveConfig();
  MaritimePipeline pipeline(pc, &SharedWorld().zones(), nullptr, nullptr,
                            nullptr);
  pipeline.Run(scenario.nmea);
  QueryEngine engine({pipeline.archive()});
  const QueryResult full = engine.Execute(QuerySpec{});
  ASSERT_GT(full.rows.size(), 0u);

  for (const QuerySpec& spec : SpecBattery(full)) {
    if (spec.resample_ms > 0) continue;  // raw-row filters only
    const QueryResult got = engine.Execute(spec);
    std::vector<QueryRow> expect;
    for (const QueryRow& r : full.rows) {
      if (r.t < spec.t0 || r.t > spec.t1) continue;
      if (spec.region.has_value() && !spec.region->Contains(r.position)) {
        continue;
      }
      if (!spec.vessels.empty() &&
          std::find(spec.vessels.begin(), spec.vessels.end(), r.mmsi) ==
              spec.vessels.end()) {
        continue;
      }
      expect.push_back(r);
    }
    EXPECT_EQ(RowBytes(got.rows), RowBytes(expect));
    EXPECT_EQ(got.stats.rows, expect.size());
  }
}

// --- Concurrent readers against live ingest (TSan surface) ----------------

TEST(QueryServingTest, ConcurrentReadersDuringLiveIngest) {
  const ScenarioOutput scenario = MakeScenario(7105, false);
  const PipelineConfig pc = ArchiveConfig();

  MaritimePipeline sequential(pc, &SharedWorld().zones(), nullptr, nullptr,
                              nullptr);
  sequential.Run(scenario.nmea);
  QueryEngine reference({sequential.archive()});
  const std::string expected = RowBytes(reference.Execute(QuerySpec{}).rows);

  ShardedPipeline::Options opts;
  opts.num_shards = 4;
  ShardedPipeline sharded(pc, opts, &SharedWorld().zones(), nullptr, nullptr,
                          nullptr);
  QueryEngine::Options qopts;
  qopts.num_workers = 2;  // MPMC fan-out hop under reader contention
  QueryEngine engine(sharded.archive_view(), qopts);

  std::atomic<bool> done{false};
  std::atomic<uint64_t> queries{0};
  std::vector<std::thread> readers;
  for (int r = 0; r < 3; ++r) {
    readers.emplace_back([&engine, &done, &queries] {
      // Blocks are append-only and snapshots immutable, so one reader's
      // successive full-query results can only grow.
      size_t last_rows = 0;
      while (!done.load(std::memory_order_relaxed)) {
        const QueryResult res = engine.Execute(QuerySpec{});
        ASSERT_GE(res.rows.size(), last_rows);
        last_rows = res.rows.size();
        for (size_t i = 1; i < res.rows.size(); ++i) {
          const QueryRow& a = res.rows[i - 1];
          const QueryRow& b = res.rows[i];
          ASSERT_TRUE(a.t < b.t || (a.t == b.t && a.mmsi <= b.mmsi))
              << "merged order violated at " << i;
        }
        queries.fetch_add(1, std::memory_order_relaxed);
      }
    });
  }

  // Live ingest on this thread, chunked so epochs publish mid-flight.
  std::span<const Event<std::string>> all(scenario.nmea);
  for (size_t off = 0; off < all.size(); off += 700) {
    sharded.IngestBatch(all.subspan(off, std::min<size_t>(700, all.size() - off)));
  }
  sharded.Finish();
  done.store(true, std::memory_order_relaxed);
  for (auto& t : readers) t.join();

  EXPECT_GT(queries.load(), 0u);
  EXPECT_EQ(RowBytes(engine.Execute(QuerySpec{}).rows), expected);
  // The fan-out hop actually carried tasks.
  EXPECT_GT(engine.hop_stats().pushed, 0u);
}

// --- Incremental index maintenance ----------------------------------------

TrajectoryPoint Point(Timestamp t, double lat, double lon) {
  TrajectoryPoint p;
  p.t = t;
  p.position = GeoPoint{lat, lon};
  p.sog_mps = 5.0f;
  p.cog_deg = 90.0f;
  return p;
}

TEST(ShardArchiveTest, IndexRebuildCoversTailAcrossThreshold) {
  ArchiveOptions opts;
  opts.enabled = true;
  opts.index_rebuild_blocks = 1;  // rebuild nearly every epoch
  ShardArchive archive(opts, "");

  for (int epoch = 0; epoch < 6; ++epoch) {
    for (uint32_t v = 0; v < 2; ++v) {
      const Timestamp base = epoch * 60000;
      archive.Stage(100 + v, Point(base, 10.0 + epoch * 0.1, 20.0 + v * 0.1));
      archive.Stage(100 + v, Point(base + 1000, 10.05 + epoch * 0.1,
                                   20.05 + v * 0.1));
    }
    ASSERT_TRUE(archive.CloseEpoch().ok());
    const auto snap = archive.snapshot();
    EXPECT_EQ(snap->epoch, static_cast<uint64_t>(epoch + 1));
    EXPECT_EQ(snap->blocks.size(), static_cast<size_t>(2 * (epoch + 1)));
    // Index + linear tail always covers every block.
    EXPECT_LE(snap->indexed, snap->blocks.size());
    if (snap->indexed > 0) {
      ASSERT_NE(snap->rtree, nullptr);
      ASSERT_NE(snap->intervals, nullptr);
    }
  }
  EXPECT_GT(archive.stats().index_rebuilds, 1u);

  // Query through the engine: indexed prefix + tail must agree with brute
  // force over all blocks.
  QueryEngine engine({&archive});
  const QueryResult full = engine.Execute(QuerySpec{});
  EXPECT_EQ(full.rows.size(), 24u);  // 6 epochs × 2 vessels × 2 points
  QuerySpec window;
  window.t0 = 2 * 60000;
  window.t1 = 4 * 60000;
  const QueryResult mid = engine.Execute(window);
  size_t expect = 0;
  for (const QueryRow& r : full.rows) {
    if (r.t >= window.t0 && r.t <= window.t1) ++expect;
  }
  EXPECT_EQ(mid.rows.size(), expect);
  EXPECT_GT(mid.stats.blocks_skipped_time, 0u);
}

TEST(ShardArchiveTest, HeldSnapshotUnchangedByLaterEpochs) {
  ArchiveOptions opts;
  opts.enabled = true;
  opts.index_rebuild_blocks = 0;  // always indexed
  ShardArchive archive(opts, "");

  archive.Stage(7, Point(1000, 10.0, 20.0));
  archive.Stage(7, Point(2000, 10.1, 20.1));
  ASSERT_TRUE(archive.CloseEpoch().ok());
  const auto held = archive.snapshot();
  ASSERT_EQ(held->blocks.size(), 1u);
  const PositionBlock* held_block = held->blocks[0].get();

  // "Insert during query": new epochs publish while `held` stays pinned.
  for (int epoch = 0; epoch < 3; ++epoch) {
    archive.Stage(8, Point(10000 + epoch * 1000, 11.0, 21.0));
    ASSERT_TRUE(archive.CloseEpoch().ok());
  }
  EXPECT_EQ(archive.snapshot()->blocks.size(), 4u);

  // The held snapshot is immutable: same blocks, same payload, and its
  // points still decode identically.
  ASSERT_EQ(held->blocks.size(), 1u);
  EXPECT_EQ(held->blocks[0].get(), held_block);
  std::vector<TrajectoryPoint> decoded;
  ASSERT_TRUE(DecodePositionBlock(held_block->data, held_block->count,
                                  held_block->mmsi, held_block->t0, &decoded)
                  .ok());
  ASSERT_EQ(decoded.size(), 2u);
  EXPECT_EQ(decoded[0].t, 1000);
  EXPECT_EQ(decoded[1].t, 2000);
}

TEST(ShardArchiveTest, EmptyRegionAndEdgeCases) {
  ArchiveOptions opts;
  opts.enabled = true;
  ShardArchive archive(opts, "");
  archive.Stage(5, Point(1000, 10.0, 20.0));
  ASSERT_TRUE(archive.CloseEpoch().ok());
  QueryEngine engine({&archive});

  // Region with no data in it: zero rows, block pruned not decoded.
  QuerySpec nowhere;
  nowhere.region = BoundingBox(-60.0, -60.0, -50.0, -50.0);
  const QueryResult none = engine.Execute(nowhere);
  EXPECT_TRUE(none.rows.empty());
  EXPECT_EQ(none.stats.blocks_scanned, 0u);
  EXPECT_GT(none.stats.blocks_skipped_region, 0u);

  // Inverted time range: empty without touching partitions.
  QuerySpec inverted;
  inverted.t0 = 10;
  inverted.t1 = 5;
  EXPECT_TRUE(engine.Execute(inverted).rows.empty());

  // Empty partition (no epochs): empty result, no crash.
  ShardArchive empty_archive(opts, "");
  QueryEngine empty_engine({&empty_archive});
  EXPECT_TRUE(empty_engine.Execute(QuerySpec{}).rows.empty());

  // Vessel-set filter that matches nothing.
  QuerySpec wrong_vessel;
  wrong_vessel.vessels = {999};
  const QueryResult miss = engine.Execute(wrong_vessel);
  EXPECT_TRUE(miss.rows.empty());
  EXPECT_GT(miss.stats.blocks_skipped_vessel, 0u);
}

// --- Durability path + prefix Bloom ---------------------------------------

TEST(ShardArchiveTest, LoadVesselRangeAndPrefixBloomSkips) {
  const std::string dir = ::testing::TempDir() + "/marlin_archive_qs";
  std::filesystem::remove_all(dir);
  ArchiveOptions opts;
  opts.enabled = true;
  opts.background_compaction = false;
  opts.max_runs = 64;  // keep runs separate so the prefix filter can skip
  ShardArchive archive(opts, dir);

  // One vessel per epoch + forced flush → one run per vessel.
  for (uint32_t v = 0; v < 4; ++v) {
    for (int i = 0; i < 3; ++i) {
      archive.Stage(500 + v, Point(1000 * (i + 1), 10.0 + v, 20.0));
    }
    ASSERT_TRUE(archive.CloseEpoch().ok());
    ASSERT_TRUE(archive.lsm()->Flush().ok());
  }
  ASSERT_EQ(archive.lsm()->NumRuns(), 4u);

  std::vector<TrajectoryPoint> points;
  ASSERT_TRUE(archive.LoadVesselRange(502, 0, kMaxTimestamp, &points).ok());
  ASSERT_EQ(points.size(), 3u);
  EXPECT_EQ(points[0].t, 1000);
  EXPECT_DOUBLE_EQ(points[0].position.lat, 12.0);
  // Three of the four runs hold other vessels: the prefix filter skipped
  // them without a binary search.
  EXPECT_GE(archive.stats().prefix_bloom_skipped, 3u);

  // Time sub-range.
  points.clear();
  ASSERT_TRUE(archive.LoadVesselRange(502, 1500, 2500, &points).ok());
  ASSERT_EQ(points.size(), 1u);
  EXPECT_EQ(points[0].t, 2000);

  std::filesystem::remove_all(dir);
}

// --- Hot-path allocation freedom -------------------------------------------

TEST(ShardArchiveTest, StageSteadyStateAllocationFree) {
  ArchiveOptions opts;
  opts.enabled = true;
  ShardArchive archive(opts, "");

  // Warm-up epoch: sizes the slot map and the per-vessel pool vectors.
  constexpr uint32_t kVessels = 32;
  constexpr int kPointsPer = 64;
  for (uint32_t v = 0; v < kVessels; ++v) {
    for (int i = 0; i < kPointsPer; ++i) {
      archive.Stage(1000 + v, Point(i * 1000, 10.0, 20.0));
    }
  }
  ASSERT_TRUE(archive.CloseEpoch().ok());

  // Steady state: the same vessel population stages with zero allocations.
  const uint64_t before = AllocProbe::ThreadCount();
  for (uint32_t v = 0; v < kVessels; ++v) {
    for (int i = 0; i < kPointsPer; ++i) {
      archive.Stage(1000 + v, Point(100000 + i * 1000, 10.0, 20.0));
    }
  }
  EXPECT_EQ(AllocProbe::ThreadCount() - before, 0u)
      << "archive staging allocated on the ingest hot path";
}

// --- Coordinator-side merged enriched stream --------------------------------

TEST(QueryServingTest, DrainEnrichedOrderedMatchesSequential) {
  const ScenarioOutput scenario = MakeScenario(7106, true);
  PipelineConfig pc = ArchiveConfig();
  pc.enriched_output_capacity = 1 << 20;  // no drops: exact comparison

  MaritimePipeline sequential(pc, &SharedWorld().zones(), nullptr, nullptr,
                              nullptr);
  sequential.Run(scenario.nmea);
  std::vector<EnrichedPoint> seq;
  sequential.DrainEnrichedOrdered(&seq);
  ASSERT_GT(seq.size(), 0u);

  for (const size_t num_shards : {1, 3}) {
    ShardedPipeline::Options opts;
    opts.num_shards = num_shards;
    ShardedPipeline sharded(pc, opts, &SharedWorld().zones(), nullptr, nullptr,
                            nullptr);
    sharded.Run(scenario.nmea);
    ASSERT_EQ(sharded.metrics().enrichment_stage.queue_dropped, 0u);

    std::vector<EnrichedPoint> shd;
    sharded.DrainEnrichedOrdered(&shd);
    ASSERT_EQ(shd.size(), seq.size()) << num_shards << " shards";
    for (size_t i = 0; i < seq.size(); ++i) {
      EXPECT_EQ(seq[i].base.mmsi, shd[i].base.mmsi) << "at " << i;
      EXPECT_EQ(seq[i].base.point.t, shd[i].base.point.t) << "at " << i;
      EXPECT_EQ(seq[i].base.point.position.lat, shd[i].base.point.position.lat);
      EXPECT_EQ(seq[i].zone_ids, shd[i].zone_ids);
    }
  }
}

}  // namespace
}  // namespace marlin
