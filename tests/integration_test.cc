// Integration tests: the full Figure-2 pipeline against generated scenarios,
// scored on seeded ground truth; archival round trips; open-world queries.

#include <gtest/gtest.h>

#include <filesystem>
#include <set>

#include "core/pipeline.h"
#include "geo/geodesy.h"
#include "sim/scenario.h"
#include "sim/world.h"
#include "va/situation.h"

namespace marlin {
namespace {

/// Shared scenario + pipeline run (expensive; built once per suite).
class PipelineIntegrationTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    world_ = new World(World::Basin());
    ScenarioConfig config;
    config.seed = 4242;
    config.duration = 3 * kMillisPerHour;
    config.transit_vessels = 12;
    config.fishing_vessels = 3;
    config.loiter_vessels = 2;
    config.rendezvous_pairs = 2;
    config.dark_vessels = 3;
    config.spoof_identity_vessels = 1;
    config.spoof_teleport_vessels = 1;
    config.perfect_reception = true;  // isolate detection from coverage
    scenario_ = new ScenarioOutput(GenerateScenario(*world_, config));

    PipelineConfig pc;
    pc.events.rendezvous_min_duration = 10 * kMillisPerMinute;
    pc.events.dark_threshold_ms = 15 * kMillisPerMinute;
    pipeline_ = new MaritimePipeline(pc, &world_->zones(), nullptr, nullptr,
                                     nullptr);
    events_ = new std::vector<DetectedEvent>(pipeline_->Run(scenario_->nmea));
  }

  static void TearDownTestSuite() {
    delete events_;
    delete pipeline_;
    delete scenario_;
    delete world_;
    events_ = nullptr;
    pipeline_ = nullptr;
    scenario_ = nullptr;
    world_ = nullptr;
  }

  static bool Detected(EventType type, Mmsi a, Mmsi b, Timestamp start,
                       Timestamp end, DurationMs slack) {
    for (const auto& ev : *events_) {
      if (ev.type != type) continue;
      const bool vessels_match =
          b == 0 ? ev.vessel_a == a || ev.vessel_b == a
                 : (ev.vessel_a == std::min(a, b) &&
                    ev.vessel_b == std::max(a, b));
      if (!vessels_match) continue;
      if (ev.detected_at >= start - slack && ev.detected_at <= end + slack) {
        return true;
      }
    }
    return false;
  }

  static World* world_;
  static ScenarioOutput* scenario_;
  static MaritimePipeline* pipeline_;
  static std::vector<DetectedEvent>* events_;
};

World* PipelineIntegrationTest::world_ = nullptr;
ScenarioOutput* PipelineIntegrationTest::scenario_ = nullptr;
MaritimePipeline* PipelineIntegrationTest::pipeline_ = nullptr;
std::vector<DetectedEvent>* PipelineIntegrationTest::events_ = nullptr;

TEST_F(PipelineIntegrationTest, StreamLargelyDecodes) {
  const auto& m = pipeline_->metrics();
  EXPECT_GT(m.decoder.messages_out, scenario_->nmea.size() / 2);
  EXPECT_EQ(m.decoder.bad_sentences, 0u);
  EXPECT_GT(m.reconstruction.points_out, 1000u);
}

TEST_F(PipelineIntegrationTest, TrajectoriesReconstructedPerVessel) {
  // Every non-dark vessel that transmitted should have a trajectory whose
  // span roughly covers the active window.
  EXPECT_GE(pipeline_->store().VesselCount(), scenario_->fleet.size() - 4);
  // Identity-spoof *victims* have their MMSI stream polluted by the attacker
  // (that is the point of the attack) — exclude them from the fidelity check.
  std::set<Mmsi> spoofed;
  for (const auto& truth : scenario_->events) {
    if (truth.type == TrueEventType::kSpoofIdentity) {
      spoofed.insert(truth.vessel_b);
    }
  }
  for (const auto& spec : scenario_->fleet) {
    if (spec.behaviour == Behaviour::kSpoofIdentity) continue;
    if (spoofed.count(spec.mmsi)) continue;
    const auto traj = pipeline_->store().GetTrajectory(spec.mmsi);
    if (!traj.ok()) continue;
    // Reconstructed positions stay near the truth at matching times.
    const Trajectory& truth = scenario_->truth.at(spec.mmsi);
    const auto& points = (*traj)->points;
    ASSERT_FALSE(points.empty());
    double worst = 0.0;
    for (size_t i = 0; i < points.size(); i += 50) {
      const TrajectoryPoint ref = truth.At(points[i].t);
      worst = std::max(
          worst, HaversineDistance(points[i].position, ref.position));
    }
    if (spec.behaviour != Behaviour::kSpoofTeleport) {
      EXPECT_LT(worst, 500.0) << "mmsi " << spec.mmsi << " "
                              << BehaviourName(spec.behaviour);
    }
  }
}

TEST_F(PipelineIntegrationTest, SeededRendezvousDetected) {
  int found = 0, total = 0;
  for (const auto& truth : scenario_->events) {
    if (truth.type != TrueEventType::kRendezvous) continue;
    ++total;
    if (Detected(EventType::kRendezvous, truth.vessel_a, truth.vessel_b,
                 truth.start, truth.end, Minutes(20))) {
      ++found;
    }
  }
  ASSERT_EQ(total, 2);
  EXPECT_EQ(found, total);
}

TEST_F(PipelineIntegrationTest, SeededDarkPeriodsDetected) {
  int found = 0, total = 0;
  for (const auto& truth : scenario_->events) {
    if (truth.type != TrueEventType::kDarkPeriod) continue;
    // The detector can only see gaps that exceed its threshold.
    if (truth.end - truth.start < Minutes(16)) continue;
    ++total;
    if (Detected(EventType::kDarkPeriod, truth.vessel_a, 0, truth.start,
                 truth.end, Minutes(10))) {
      ++found;
    }
  }
  ASSERT_GT(total, 0);
  // Dark periods whose window extends beyond the scenario end can't close.
  EXPECT_GE(found, total - 1);
}

TEST_F(PipelineIntegrationTest, SpoofersFlagged) {
  for (const auto& truth : scenario_->events) {
    if (truth.type == TrueEventType::kSpoofIdentity) {
      // The claimed MMSI accumulates impossible jumps.
      bool flagged = false;
      for (const auto& ev : *events_) {
        if ((ev.type == EventType::kIdentitySpoof ||
             ev.type == EventType::kTeleportSpoof) &&
            ev.vessel_a == truth.vessel_b) {
          flagged = true;
        }
      }
      EXPECT_TRUE(flagged) << "identity spoof of " << truth.vessel_b;
    }
    if (truth.type == TrueEventType::kSpoofTeleport) {
      bool flagged = false;
      for (const auto& ev : *events_) {
        if ((ev.type == EventType::kTeleportSpoof ||
             ev.type == EventType::kIdentitySpoof) &&
            ev.vessel_a == truth.vessel_a) {
          flagged = true;
        }
      }
      EXPECT_TRUE(flagged) << "teleport spoof by " << truth.vessel_a;
    }
  }
}

TEST_F(PipelineIntegrationTest, SynopsesCompressSubstantially) {
  const auto& stats = pipeline_->metrics().synopses;
  EXPECT_GT(stats.points_in, 0u);
  // Mixed traffic: most vessels cruise steadily, so the synopsis sheds the
  // bulk of the points (the paper's ≥95 % target is checked in bench E2
  // with tuned thresholds; here we assert substantial compression).
  EXPECT_GT(stats.CompressionRatio(), 0.7);
}

TEST_F(PipelineIntegrationTest, CoverageSeesDarkVessels) {
  const CoverageModel& coverage = pipeline_->coverage();
  for (const auto& spec : scenario_->fleet) {
    if (spec.behaviour != Behaviour::kGoDark || spec.dark_windows.empty()) {
      continue;
    }
    const auto& [ds, de] = spec.dark_windows.front();
    if (de - ds < Minutes(10)) continue;
    const Timestamp mid = (ds + de) / 2;
    EXPECT_TRUE(coverage.IsDark(spec.mmsi, mid))
        << "vessel " << spec.mmsi << " should be dark at " << mid;
    EXPECT_EQ(coverage.CouldHaveActedAt(spec.mmsi, mid), Verdict::kPossible);
  }
}

TEST_F(PipelineIntegrationTest, SituationOverviewRenders) {
  SituationOverview overview(&pipeline_->store(), &world_->zones(),
                             &pipeline_->coverage());
  overview.RecordEvents(*events_);
  const Timestamp probe = 1700000000000 + 2 * kMillisPerHour;
  const SituationSnapshot snap = overview.Snapshot(probe);
  EXPECT_GT(snap.active_vessels, 0u);
  const std::string text = SituationOverview::Render(snap, &world_->zones());
  EXPECT_NE(text.find("Situation overview"), std::string::npos);
}

TEST_F(PipelineIntegrationTest, MetricsAreConsistent) {
  const auto& m = pipeline_->metrics();
  EXPECT_LE(m.reconstruction.points_out, m.reconstruction.reports_in);
  EXPECT_EQ(m.synopses.points_in, m.reconstruction.points_out);
  EXPECT_EQ(m.events.points_in, m.reconstruction.points_out);
  EXPECT_GT(m.alerts, 0u);
  EXPECT_GT(m.ingest_rate.count(), 0u);
}

// --- Archive round trip through the pipeline --------------------------------

TEST(ArchiveIntegrationTest, PipelinePersistsAndRecovers) {
  const std::string dir = ::testing::TempDir() + "/marlin_pipeline_archive";
  std::filesystem::remove_all(dir);
  const World world = World::Basin();
  ScenarioConfig config;
  config.seed = 5150;
  config.duration = kMillisPerHour;
  config.transit_vessels = 4;
  config.fishing_vessels = 0;
  config.loiter_vessels = 0;
  config.rendezvous_pairs = 0;
  config.dark_vessels = 0;
  config.spoof_identity_vessels = 0;
  config.spoof_teleport_vessels = 0;
  config.perfect_reception = true;
  const ScenarioOutput scenario = GenerateScenario(world, config);

  Mmsi probe_vessel = scenario.fleet.front().mmsi;
  size_t stored_points = 0;
  {
    LsmStore::Options lsm_opts;
    lsm_opts.directory = dir;
    auto archive = LsmStore::Open(lsm_opts);
    ASSERT_TRUE(archive.ok());
    PipelineConfig pc;
    pc.store.archive = archive->get();
    MaritimePipeline pipeline(pc, &world.zones(), nullptr, nullptr, nullptr);
    pipeline.Run(scenario.nmea);
    const auto traj = pipeline.store().GetTrajectory(probe_vessel);
    ASSERT_TRUE(traj.ok());
    stored_points = (*traj)->points.size();
    ASSERT_TRUE(archive->get()->Flush().ok());
  }
  // Reopen the archive cold and read the history back.
  LsmStore::Options lsm_opts;
  lsm_opts.directory = dir;
  auto archive = LsmStore::Open(lsm_opts);
  ASSERT_TRUE(archive.ok());
  TrajectoryStore::Options store_opts;
  store_opts.archive = archive->get();
  TrajectoryStore store(store_opts);
  const auto loaded =
      store.LoadFromArchive(probe_vessel, kMinTimestamp, kMaxTimestamp);
  ASSERT_TRUE(loaded.ok());
  EXPECT_EQ(loaded->points.size(), stored_points);
  std::filesystem::remove_all(dir);
}

// --- Open-world rendezvous querying ----------------------------------------

TEST(OpenWorldIntegrationTest, DarkVesselRendezvousIsPossibleNotNo) {
  // A vessel goes dark; during the gap it could have met another vessel.
  // Closed-world: the rendezvous query over detected events returns nothing.
  // Open-world: the coverage model marks the hypothesis "possible".
  const World world = World::Basin();
  ScenarioConfig config;
  config.seed = 777;
  config.duration = 3 * kMillisPerHour;
  config.transit_vessels = 4;
  config.fishing_vessels = 0;
  config.loiter_vessels = 0;
  config.rendezvous_pairs = 0;  // no observable rendezvous
  config.dark_vessels = 2;
  config.spoof_identity_vessels = 0;
  config.spoof_teleport_vessels = 0;
  config.perfect_reception = true;
  const ScenarioOutput scenario = GenerateScenario(world, config);

  PipelineConfig pc;
  MaritimePipeline pipeline(pc, &world.zones(), nullptr, nullptr, nullptr);
  const auto events = pipeline.Run(scenario.nmea);

  // Closed world: no rendezvous detected anywhere.
  for (const auto& ev : events) {
    EXPECT_NE(ev.type, EventType::kRendezvous);
  }
  // Open world: during a sufficiently long dark window the hypothesis is
  // possible.
  bool checked = false;
  for (const auto& truth : scenario.events) {
    if (truth.type != TrueEventType::kDarkPeriod) continue;
    if (truth.end - truth.start < Minutes(20)) continue;
    const Timestamp mid = (truth.start + truth.end) / 2;
    EXPECT_EQ(pipeline.coverage().CouldHaveActedAt(truth.vessel_a, mid),
              Verdict::kPossible);
    checked = true;
  }
  EXPECT_TRUE(checked);
}

}  // namespace
}  // namespace marlin
