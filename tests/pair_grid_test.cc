// Grid-cell sharded pair stage: scenario-replay equivalence against the
// sequential PairEventEngine, halo-exchange correctness at cell boundaries
// (straddling pairs, antimeridian-adjacent cells, co-located vessels at a
// cell corner), deterministic fallback, and pair-stage stats.
//
// The equivalence harness is the point of this file: every test closes the
// same canonical observation windows through (a) a lone PairEventEngine and
// (b) a GridPairPartitioner over an authoritative engine, and asserts the
// two event streams are byte-identical — every field, in order.

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <tuple>
#include <vector>

#include "common/rng.h"
#include "common/units.h"
#include "core/pair_grid.h"
#include "core/pipeline.h"
#include "core/sharded_pipeline.h"
#include "sim/scenario.h"
#include "sim/world.h"

namespace marlin {
namespace {

constexpr Timestamp kT0 = 1700000000000;

auto EventKey(const DetectedEvent& ev) {
  return std::make_tuple(ev.detected_at, ev.vessel_a, ev.vessel_b,
                         static_cast<int>(ev.type), ev.start, ev.end,
                         ev.zone_id, ev.severity, ev.where.lat, ev.where.lon);
}

/// Byte-identical comparison: same count, same content, same order.
void ExpectByteIdentical(const std::vector<DetectedEvent>& expected,
                         const std::vector<DetectedEvent>& actual,
                         const std::string& label) {
  ASSERT_EQ(expected.size(), actual.size()) << label;
  for (size_t i = 0; i < expected.size(); ++i) {
    EXPECT_EQ(EventKey(expected[i]), EventKey(actual[i]))
        << label << ": event mismatch at index " << i;
  }
}

PairObservation Obs(Mmsi mmsi, Timestamp t, double lat, double lon,
                    double sog_mps, double cog_deg = 90.0,
                    bool in_port = false) {
  PairObservation obs;
  obs.mmsi = mmsi;
  obs.point.t = t;
  obs.point.position = GeoPoint(lat, lon);
  obs.point.sog_mps = static_cast<float>(sog_mps);
  obs.point.cog_deg = static_cast<float>(cog_deg);
  obs.in_port_area = in_port;
  return obs;
}

/// Drives the observation windows through a lone sequential engine.
std::vector<DetectedEvent> CloseAllSequential(
    const EventRuleOptions& rules,
    const std::vector<std::vector<PairObservation>>& windows) {
  PairEventEngine engine(rules);
  std::vector<DetectedEvent> out;
  for (size_t i = 0; i < windows.size(); ++i) {
    std::vector<PairObservation> window = windows[i];
    std::vector<DetectedEvent> events;
    engine.CloseWindow(&window, /*flush=*/i + 1 == windows.size(), &events);
    out.insert(out.end(), events.begin(), events.end());
  }
  return out;
}

/// Drives the same windows through the grid partitioner.
std::vector<DetectedEvent> CloseAllGrid(
    const EventRuleOptions& rules, const GridPairPartitioner::Options& options,
    const std::vector<std::vector<PairObservation>>& windows,
    PairStageStats* stats = nullptr) {
  PairEventEngine engine(rules);
  GridPairPartitioner partitioner(rules, options);
  std::vector<DetectedEvent> out;
  for (size_t i = 0; i < windows.size(); ++i) {
    std::vector<PairObservation> window = windows[i];
    std::vector<DetectedEvent> events;
    partitioner.CloseWindow(&engine, &window,
                            /*flush=*/i + 1 == windows.size(), &events);
    out.insert(out.end(), events.begin(), events.end());
  }
  if (stats != nullptr) *stats = partitioner.stats();
  return out;
}

double PitchDeg(double cell_size_m) {
  return cell_size_m / (DegToRad(1.0) * kEarthRadiusMetres);
}

/// Smallest grid-line longitude ≥ `lon` for the given pitch.
double LonBoundaryAtOrAfter(double lon, double pitch_deg) {
  return std::ceil((lon + 180.0) / pitch_deg) * pitch_deg - 180.0;
}

double LatBoundaryAtOrAfter(double lat, double pitch_deg) {
  return std::ceil((lat + 90.0) / pitch_deg) * pitch_deg - 90.0;
}

// --- Halo correctness at cell boundaries ------------------------------------

TEST(PairGridHaloTest, BoundaryStraddlingRendezvousEmittedExactlyOnce) {
  EventRuleOptions rules;  // rendezvous: ≤ 500 m, ≤ 1.5 m/s, ≥ 10 min
  // Match the scan radius to the rendezvous radius so radius-sized cells
  // need only a one-cell halo (the default 10 km collision scan would
  // widen it past the fallback cap at this cell size).
  rules.collision_scan_radius_m = 500.0;
  const double cell_m = 500.0;
  const double pitch = PitchDeg(cell_m);
  // Two slow vessels ~85 m apart in *adjacent* cells: a column boundary
  // runs between them.
  const double boundary = LonBoundaryAtOrAfter(5.0, pitch);
  const double lat = 40.0;
  const double lon_west = boundary - 0.0005;
  const double lon_east = boundary + 0.0005;

  std::vector<std::vector<PairObservation>> windows;
  std::vector<PairObservation> window;
  for (int minute = 0; minute <= 15; ++minute) {
    const Timestamp t = kT0 + minute * kMillisPerMinute;
    window.push_back(Obs(111000001, t, lat, lon_west, 0.4));
    window.push_back(Obs(222000002, t, lat, lon_east, 0.5));
    if (minute % 5 == 4) {  // several windows → cross-window state carry
      windows.push_back(std::move(window));
      window.clear();
    }
  }
  if (!window.empty()) windows.push_back(std::move(window));

  const auto sequential = CloseAllSequential(rules, windows);
  // The pair dwells > 10 minutes within 500 m: exactly one rendezvous.
  size_t rendezvous = 0;
  for (const auto& ev : sequential) {
    if (ev.type == EventType::kRendezvous) ++rendezvous;
  }
  EXPECT_EQ(rendezvous, 1u);

  for (size_t threads : {2, 3}) {
    GridPairPartitioner::Options options;
    options.pair_threads = threads;
    options.cell_size_m = cell_m;
    PairStageStats stats;
    const auto grid = CloseAllGrid(rules, options, windows, &stats);
    ExpectByteIdentical(sequential, grid,
                        "straddling pair, threads=" + std::to_string(threads));
    EXPECT_GT(stats.parallel_windows, 0u) << "grid path never engaged";
  }
}

TEST(PairGridHaloTest, CollisionAcrossBoundaryEmittedExactlyOnce) {
  const EventRuleOptions rules;  // CPA < 300 m, scan radius 10 km
  const double cell_m = 2000.0;
  const double pitch = PitchDeg(cell_m);
  const double boundary = LonBoundaryAtOrAfter(12.0, pitch);
  const double lat = 38.0;
  const double cos_lat = std::cos(DegToRad(lat));
  const double deg_per_m_lon = PitchDeg(1.0) / cos_lat;

  // Head-on approach along one parallel: vessels start ~8 km apart on
  // opposite sides of a cell boundary, closing at 12 m/s (TCPA ≈ 11 min).
  std::vector<std::vector<PairObservation>> windows;
  std::vector<PairObservation> window;
  for (int step = 0; step < 10; ++step) {
    const Timestamp t = kT0 + step * 30 * kMillisPerSecond;
    const double travelled = 6.0 * 30 * step;  // metres each, toward the other
    const double lon_west = boundary - (4000.0 - travelled) * deg_per_m_lon;
    const double lon_east = boundary + (4000.0 - travelled) * deg_per_m_lon;
    window.push_back(Obs(111000001, t, lat, lon_west, 6.0, 90.0));
    window.push_back(Obs(222000002, t, lat, lon_east, 6.0, 270.0));
    if (step % 4 == 3) {
      windows.push_back(std::move(window));
      window.clear();
    }
  }
  if (!window.empty()) windows.push_back(std::move(window));

  const auto sequential = CloseAllSequential(rules, windows);
  size_t collisions = 0;
  for (const auto& ev : sequential) {
    if (ev.type == EventType::kCollisionRisk) ++collisions;
  }
  // One alert per pair per re-alert window (10 min > the 4.5 min run).
  EXPECT_EQ(collisions, 1u);

  GridPairPartitioner::Options options;
  options.pair_threads = 2;
  options.cell_size_m = cell_m;
  PairStageStats stats;
  const auto grid = CloseAllGrid(rules, options, windows, &stats);
  ExpectByteIdentical(sequential, grid, "boundary collision");
  EXPECT_GT(stats.parallel_windows, 0u);
}

TEST(PairGridHaloTest, CellCornerColocatedVesselsEmitEachPairOnce) {
  EventRuleOptions rules;
  rules.collision_scan_radius_m = 500.0;  // radius-sized cells, see above
  const double cell_m = 500.0;
  const double pitch = PitchDeg(cell_m);
  // A grid corner: a row boundary and a column boundary intersect here.
  const double corner_lat = LatBoundaryAtOrAfter(43.0, pitch);
  const double corner_lon = LonBoundaryAtOrAfter(7.0, pitch);
  const double d = 0.0003;  // ~33 m lat / ~24 m lon offsets

  // Four vessels, one per quadrant around the corner, plus two co-located
  // *exactly at* the corner point — every pairwise distance ≤ ~90 m.
  struct Spec {
    Mmsi mmsi;
    double lat, lon;
  };
  const std::vector<Spec> fleet = {
      {301000001, corner_lat - d, corner_lon - d},
      {301000002, corner_lat - d, corner_lon + d},
      {301000003, corner_lat + d, corner_lon - d},
      {301000004, corner_lat + d, corner_lon + d},
      {301000005, corner_lat, corner_lon},
      {301000006, corner_lat, corner_lon},
  };

  std::vector<std::vector<PairObservation>> windows;
  std::vector<PairObservation> window;
  for (int minute = 0; minute <= 14; ++minute) {
    const Timestamp t = kT0 + minute * kMillisPerMinute;
    for (const Spec& spec : fleet) {
      window.push_back(Obs(spec.mmsi, t, spec.lat, spec.lon, 0.3));
    }
    if (minute % 4 == 3) {
      windows.push_back(std::move(window));
      window.clear();
    }
  }
  if (!window.empty()) windows.push_back(std::move(window));

  const auto sequential = CloseAllSequential(rules, windows);
  size_t rendezvous = 0;
  for (const auto& ev : sequential) {
    if (ev.type == EventType::kRendezvous) ++rendezvous;
  }
  EXPECT_EQ(rendezvous, 15u) << "C(6,2) pairs, each exactly once";

  for (size_t threads : {2, 4}) {
    GridPairPartitioner::Options options;
    options.pair_threads = threads;
    options.cell_size_m = cell_m;
    PairStageStats stats;
    const auto grid = CloseAllGrid(rules, options, windows, &stats);
    ExpectByteIdentical(sequential, grid,
                        "cell corner, threads=" + std::to_string(threads));
    EXPECT_GT(stats.parallel_windows, 0u);
    EXPECT_GE(stats.max_cells_per_window, 4u) << "corner spans four cells";
  }
}

TEST(PairGridHaloTest, AntimeridianAdjacentCellsMatchSequential) {
  EventRuleOptions rules;
  rules.collision_scan_radius_m = 500.0;  // radius-sized cells, see above
  const double cell_m = 500.0;

  // One close pair on each side of the antimeridian, plus a cross-seam
  // "pair" ~44 m apart physically. The live picture's grid is unwrapped
  // (GridIndex::KeyFor), so the sequential engine never pairs across the
  // seam — the grid stage must reproduce that behaviour, not "fix" it.
  std::vector<std::vector<PairObservation>> windows;
  std::vector<PairObservation> window;
  for (int minute = 0; minute <= 14; ++minute) {
    const Timestamp t = kT0 + minute * kMillisPerMinute;
    window.push_back(Obs(401000001, t, 5.0, 179.9930, 0.4));
    window.push_back(Obs(401000002, t, 5.0, 179.9938, 0.4));
    window.push_back(Obs(402000001, t, 5.0, -179.9930, 0.4));
    window.push_back(Obs(402000002, t, 5.0, -179.9938, 0.4));
    window.push_back(Obs(403000001, t, 5.0, 179.9998, 0.4));
    window.push_back(Obs(403000002, t, 5.0, -179.9998, 0.4));
    if (minute % 4 == 3) {
      windows.push_back(std::move(window));
      window.clear();
    }
  }
  if (!window.empty()) windows.push_back(std::move(window));

  const auto sequential = CloseAllSequential(rules, windows);
  size_t rendezvous = 0;
  for (const auto& ev : sequential) {
    if (ev.type == EventType::kRendezvous) ++rendezvous;
  }
  EXPECT_EQ(rendezvous, 2u) << "east pair + west pair; never across the seam";

  GridPairPartitioner::Options options;
  options.pair_threads = 3;
  options.cell_size_m = cell_m;
  PairStageStats stats;
  const auto grid = CloseAllGrid(rules, options, windows, &stats);
  ExpectByteIdentical(sequential, grid, "antimeridian-adjacent cells");
  EXPECT_GT(stats.parallel_windows, 0u);
}

TEST(PairGridHaloTest, AntimeridianCrossingVesselFallsBackDeterministically) {
  EventRuleOptions rules;
  rules.collision_scan_radius_m = 500.0;  // radius-sized cells, see above
  // A vessel teleporting across the seam mid-window is a ~360° longitude
  // jump in unwrapped degrees: the drift-widened halo blows past
  // max_halo_rings and the window must fall back to the sequential close.
  std::vector<std::vector<PairObservation>> windows;
  std::vector<PairObservation> window;
  for (int minute = 0; minute <= 12; ++minute) {
    const Timestamp t = kT0 + minute * kMillisPerMinute;
    const double lon = minute < 6 ? 179.9990 : -179.9990;  // crosses at 6'
    window.push_back(Obs(501000001, t, 5.0, lon, 0.4));
    window.push_back(Obs(501000002, t, 5.0, lon + 0.0006, 0.4));
    window.push_back(Obs(502000001, t, 6.0, 170.0, 0.4));
    window.push_back(Obs(502000002, t, 6.0, 170.0006, 0.4));
    if (minute % 6 == 5) {
      windows.push_back(std::move(window));
      window.clear();
    }
  }
  if (!window.empty()) windows.push_back(std::move(window));

  const auto sequential = CloseAllSequential(rules, windows);
  GridPairPartitioner::Options options;
  options.pair_threads = 2;
  options.cell_size_m = 500.0;
  PairStageStats stats;
  const auto grid = CloseAllGrid(rules, options, windows, &stats);
  ExpectByteIdentical(sequential, grid, "antimeridian crossing");
  EXPECT_GT(stats.sequential_windows, 0u)
      << "the crossing window must take the fallback";
}

// --- Randomized soak --------------------------------------------------------

TEST(PairGridEquivalenceTest, RandomWalkFleetMatchesAcrossConfigs) {
  const EventRuleOptions rules;
  Rng rng(20260728);

  // 40 vessels random-walking a ~20 km box: dense enough that rendezvous,
  // collision scans, re-alerts, and flush-time closures all fire.
  constexpr int kVessels = 40;
  struct VesselSim {
    Mmsi mmsi;
    double lat, lon, speed, course;
  };
  std::vector<VesselSim> fleet;
  for (int i = 0; i < kVessels; ++i) {
    fleet.push_back(VesselSim{static_cast<Mmsi>(600000001 + i),
                              39.0 + rng.Uniform(0.0, 0.18),
                              8.0 + rng.Uniform(0.0, 0.18),
                              rng.Uniform(0.0, 8.0), rng.Uniform(0.0, 360.0)});
  }
  std::vector<std::vector<PairObservation>> windows;
  std::vector<PairObservation> window;
  const double deg_per_m = PitchDeg(1.0);
  for (int step = 0; step < 120; ++step) {  // 60 minutes at 30 s ticks
    const Timestamp t = kT0 + step * 30 * kMillisPerSecond;
    for (auto& v : fleet) {
      const double rad = DegToRad(v.course);
      v.lat += std::cos(rad) * v.speed * 30.0 * deg_per_m;
      v.lon += std::sin(rad) * v.speed * 30.0 * deg_per_m;
      v.course += rng.Uniform(-15.0, 15.0);
      v.speed = std::clamp(v.speed + rng.Uniform(-0.4, 0.4), 0.0, 9.0);
      window.push_back(Obs(v.mmsi, t, v.lat, v.lon, v.speed, v.course));
    }
    if (step % 10 == 9) {
      windows.push_back(std::move(window));
      window.clear();
    }
  }
  if (!window.empty()) windows.push_back(std::move(window));

  const auto sequential = CloseAllSequential(rules, windows);
  ASSERT_GT(sequential.size(), 0u) << "soak scenario produced no pair events";

  struct Config {
    size_t threads;
    double cell_m;
    bool expect_parallel;  // tiny cells fall back (10 km scan ⇒ huge halo)
  };
  for (const Config& config :
       {Config{2, 4000.0, true}, Config{3, 6000.0, true},
        Config{4, 12000.0, true}, Config{2, 700.0, false}}) {
    GridPairPartitioner::Options options;
    options.pair_threads = config.threads;
    options.cell_size_m = config.cell_m;
    PairStageStats stats;
    const auto grid = CloseAllGrid(rules, options, windows, &stats);
    ExpectByteIdentical(sequential, grid,
                        "soak threads=" + std::to_string(config.threads) +
                            " cell=" + std::to_string(config.cell_m));
    EXPECT_EQ(stats.windows, windows.size());
    EXPECT_EQ(stats.parallel_windows + stats.sequential_windows,
              stats.windows);
    if (config.expect_parallel) {
      EXPECT_GT(stats.parallel_windows, 0u)
          << "cell=" << config.cell_m << " never engaged the grid";
      EXPECT_GT(stats.cells, 0u);
      EXPECT_GT(stats.max_cell_share, 0.0);
      EXPECT_LE(stats.max_cell_share, 1.0);
    }
  }
}

// --- Scenario replay: full simulated worlds through both pipelines ----------

PipelineConfig ReplayConfig(size_t pair_threads, double cell_m) {
  PipelineConfig pc;
  pc.window_lines = 384;  // several windows per scenario
  pc.pair_threads = pair_threads;
  pc.pair_cell_size_m = cell_m;
  return pc;
}

const World& ReplayWorld() {
  static World world = World::Basin();
  return world;
}

/// Runs one scenario through the sequential reference and through sharded
/// pipelines with randomized (shards, pair_threads, cell size) draws,
/// asserting byte-identical streams for 1 shard and identical multisets
/// plus identical counters for N shards. Returns the total number of
/// windows the grid path parallelized (so callers can assert coverage).
uint64_t ReplayScenario(const ScenarioOutput& scenario,
                        const std::string& label, uint64_t config_seed,
                        const std::vector<double>& cell_sizes) {
  MaritimePipeline sequential(ReplayConfig(0, 0.0), &ReplayWorld().zones(),
                              nullptr, nullptr, nullptr);
  const auto seq_events = sequential.Run(scenario.nmea);
  EXPECT_GT(seq_events.size(), 0u) << label;

  Rng rng(config_seed);
  uint64_t parallel_windows = 0;
  for (int round = 0; round < 3; ++round) {
    const size_t num_shards = 1 + rng.NextBounded(4);
    const size_t pair_threads = 2 + rng.NextBounded(3);
    const double cell_m =
        cell_sizes[rng.NextBounded(cell_sizes.size())];
    const std::string config_label =
        label + " shards=" + std::to_string(num_shards) +
        " pair_threads=" + std::to_string(pair_threads) +
        " cell=" + std::to_string(cell_m);

    ShardedPipeline::Options opts;
    opts.num_shards = num_shards;
    ShardedPipeline sharded(ReplayConfig(pair_threads, cell_m), opts,
                            &ReplayWorld().zones(), nullptr, nullptr, nullptr);
    const auto grid_events = sharded.Run(scenario.nmea);

    if (num_shards == 1) {
      ExpectByteIdentical(seq_events, grid_events, config_label);
    } else {
      EXPECT_EQ(seq_events.size(), grid_events.size()) << config_label;
      std::vector<decltype(EventKey(seq_events.front()))> ka, kb;
      for (const auto& ev : seq_events) ka.push_back(EventKey(ev));
      for (const auto& ev : grid_events) kb.push_back(EventKey(ev));
      std::sort(ka.begin(), ka.end());
      std::sort(kb.begin(), kb.end());
      EXPECT_EQ(ka, kb) << config_label;
    }
    const PipelineMetrics& ms = sequential.metrics();
    const PipelineMetrics& mg = sharded.metrics();
    EXPECT_EQ(ms.events.events_out, mg.events.events_out) << config_label;
    EXPECT_EQ(ms.alerts, mg.alerts) << config_label;
    EXPECT_EQ(mg.pair_stage.windows,
              mg.pair_stage.parallel_windows + mg.pair_stage.sequential_windows)
        << config_label;
    parallel_windows += mg.pair_stage.parallel_windows;
  }
  return parallel_windows;
}

TEST(PairGridScenarioReplayTest, DensePortTraffic) {
  // Heavy mixed traffic around the basin's ports: the rendezvous/loiter
  // density the paper's §4 anomaly rules target.
  ScenarioConfig config;
  config.seed = 7001;
  config.duration = 75 * kMillisPerMinute;
  config.transit_vessels = 18;
  config.fishing_vessels = 6;
  config.loiter_vessels = 4;
  config.rendezvous_pairs = 4;
  config.dark_vessels = 2;
  config.spoof_identity_vessels = 1;
  config.spoof_teleport_vessels = 1;
  config.perfect_reception = true;
  const ScenarioOutput scenario = GenerateScenario(ReplayWorld(), config);
  const uint64_t parallel =
      ReplayScenario(scenario, "dense-port", 9101, {2000.0, 5000.0, 12000.0});
  EXPECT_GT(parallel, 0u) << "grid path never engaged across configs";
}

TEST(PairGridScenarioReplayTest, CrossingLanes) {
  // Transit-dominated crossing traffic: the collision-risk (CPA/TCPA)
  // workload, with realistic coastal+satellite reception.
  ScenarioConfig config;
  config.seed = 7002;
  config.duration = 75 * kMillisPerMinute;
  config.transit_vessels = 26;
  config.fishing_vessels = 2;
  config.loiter_vessels = 1;
  config.rendezvous_pairs = 2;
  config.dark_vessels = 2;
  config.spoof_identity_vessels = 1;
  config.spoof_teleport_vessels = 1;
  const ScenarioOutput scenario = GenerateScenario(ReplayWorld(), config);
  const uint64_t parallel =
      ReplayScenario(scenario, "crossing-lanes", 9102,
                     {2000.0, 5000.0, 12000.0});
  EXPECT_GT(parallel, 0u);
}

TEST(PairGridScenarioReplayTest, SatelliteLatencyGaps) {
  // No coastal stations at all: deliveries ride satellite passes with
  // 30–900 s latency — windows see wide event-time spans and heavy
  // reordering, the worst case for the drift-widened halo.
  ScenarioConfig config;
  config.seed = 7003;
  config.duration = 2 * kMillisPerHour;
  config.transit_vessels = 14;
  config.fishing_vessels = 4;
  config.loiter_vessels = 2;
  config.rendezvous_pairs = 3;
  config.dark_vessels = 2;
  config.spoof_identity_vessels = 1;
  config.spoof_teleport_vessels = 1;
  config.use_coastal_coverage_default = false;  // satellite-only reception
  const ScenarioOutput scenario = GenerateScenario(ReplayWorld(), config);
  // Wide cells: satellite latency inflates per-window drift, so small cells
  // would legitimately fall back (that path is covered above).
  ReplayScenario(scenario, "satellite-gaps", 9103, {12000.0, 20000.0});
}

// --- Stats ------------------------------------------------------------------

TEST(PairStageStatsTest, MergeAccumulates) {
  PairStageStats a, b;
  a.windows = 4;
  a.parallel_windows = 3;
  a.sequential_windows = 1;
  a.observations = 100;
  a.halo_observations = 30;
  a.cells = 12;
  a.max_cells_per_window = 5;
  a.max_cell_observations = 40;
  a.max_halo_rings = 2;
  a.max_cell_share = 0.5;
  b.windows = 2;
  b.parallel_windows = 2;
  b.observations = 50;
  b.halo_observations = 5;
  b.cells = 8;
  b.max_cells_per_window = 6;
  b.max_cell_observations = 10;
  b.max_halo_rings = 4;
  b.max_cell_share = 0.25;
  a.Merge(b);
  EXPECT_EQ(a.windows, 6u);
  EXPECT_EQ(a.parallel_windows, 5u);
  EXPECT_EQ(a.sequential_windows, 1u);
  EXPECT_EQ(a.observations, 150u);
  EXPECT_EQ(a.halo_observations, 35u);
  EXPECT_EQ(a.cells, 20u);
  EXPECT_EQ(a.max_cells_per_window, 6u);
  EXPECT_EQ(a.max_cell_observations, 40u);
  EXPECT_EQ(a.max_halo_rings, 4);
  EXPECT_DOUBLE_EQ(a.max_cell_share, 0.5);
  EXPECT_DOUBLE_EQ(a.MeanCellsPerWindow(), 4.0);
}

TEST(PairGridTest, PoollessPartitionerClosesSequentially) {
  // pair_threads ≤ 1: no worker pool, every window closes sequentially —
  // and the partitioner is still a byte-exact drop-in for the engine close.
  const EventRuleOptions rules;
  std::vector<std::vector<PairObservation>> windows;
  std::vector<PairObservation> window;
  for (int minute = 0; minute <= 12; ++minute) {
    const Timestamp t = kT0 + minute * kMillisPerMinute;
    window.push_back(Obs(701000001, t, 40.0, 5.0, 0.4));
    window.push_back(Obs(701000002, t, 40.0, 5.0008, 0.4));
    if (minute % 4 == 3) {
      windows.push_back(std::move(window));
      window.clear();
    }
  }
  if (!window.empty()) windows.push_back(std::move(window));

  const auto sequential = CloseAllSequential(rules, windows);
  GridPairPartitioner::Options options;
  options.pair_threads = 1;
  PairStageStats stats;
  const auto grid = CloseAllGrid(rules, options, windows, &stats);
  ExpectByteIdentical(sequential, grid, "pool-less partitioner");
  EXPECT_EQ(stats.parallel_windows, 0u);
  EXPECT_EQ(stats.sequential_windows, stats.windows);
}

}  // namespace
}  // namespace marlin
