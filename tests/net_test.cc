// Network front-door battery: LineReassembler boundary obliviousness,
// EpollLoop basics, TCP ingest in both wire modes, the two-connection
// interleaved-fragment isolation regression, and UDP datagram ingest.

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/epoll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <atomic>
#include <chrono>
#include <cstring>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "ais/codec.h"
#include "ais/types.h"
#include "core/pipeline.h"
#include "net/epoll_loop.h"
#include "net/line_reassembler.h"
#include "net/tcp_ingest_server.h"
#include "net/udp_ingest_server.h"
#include "stream/frame.h"

namespace marlin {
namespace {

// --- LineReassembler --------------------------------------------------------

const char* kCorpusLines[] = {
    "!AIVDM,1,1,,A,13HOI:0P0000VOHLCnHQKwvL05Ip,0*23",
    "!AIVDM,2,1,3,B,55P5TL01VIaAL@7WKO@mBplU@<PDhh000000001S;AJ::4A80?4i@E53,0*3E",
    "!AIVDM,2,2,3,B,1@0000000000000,2*55",
    "!AIVDM,1,1,,B,14eG;o@034o8sd<L9i:a;WF>062D,0*7D",
};

std::string JoinCorpus(const char* terminator) {
  std::string bytes;
  for (const char* line : kCorpusLines) {
    bytes += line;
    bytes += terminator;
  }
  return bytes;
}

// The straddle bugfix: EVERY single split point of the byte stream —
// including mid-checksum and between '\r' and '\n' — must reassemble the
// identical line sequence.
TEST(LineReassemblerTest, EverySplitPointYieldsSameLines) {
  for (const char* term : {"\r\n", "\n"}) {
    const std::string bytes = JoinCorpus(term);
    for (size_t cut = 0; cut <= bytes.size(); ++cut) {
      LineReassembler reassembler;
      std::vector<std::string> lines, bad;
      reassembler.Feed(std::string_view(bytes).substr(0, cut), &lines, &bad);
      reassembler.Feed(std::string_view(bytes).substr(cut), &lines, &bad);
      reassembler.Finish(&bad);
      ASSERT_EQ(lines.size(), 4u) << "terminator len " << strlen(term)
                                  << " cut " << cut;
      for (size_t i = 0; i < lines.size(); ++i) {
        EXPECT_EQ(lines[i], kCorpusLines[i]) << "cut " << cut;
      }
      EXPECT_TRUE(bad.empty()) << "cut " << cut;
      EXPECT_EQ(reassembler.stats().lines, 4u);
    }
  }
}

TEST(LineReassemblerTest, ByteAtATimeDelivery) {
  const std::string bytes = JoinCorpus("\r\n");
  LineReassembler reassembler;
  std::vector<std::string> lines, bad;
  for (char c : bytes) {
    reassembler.Feed(std::string_view(&c, 1), &lines, &bad);
  }
  reassembler.Finish(&bad);
  ASSERT_EQ(lines.size(), 4u);
  EXPECT_EQ(lines[2], kCorpusLines[2]);
  EXPECT_TRUE(bad.empty());
}

TEST(LineReassemblerTest, BlankKeepAliveLinesAreCountedAndSkipped) {
  LineReassembler reassembler;
  std::vector<std::string> lines, bad;
  reassembler.Feed("\r\n\n!AIVDM,1,1,,A,x,0*00\r\n\r\n", &lines, &bad);
  reassembler.Finish(&bad);
  ASSERT_EQ(lines.size(), 1u);
  EXPECT_EQ(reassembler.stats().blank_lines, 3u);
  EXPECT_TRUE(bad.empty());
}

// The unbounded-buffering bugfix: an unterminated oversized line surfaces
// as ONE bad line (bounded to the cap), the rest of it is discarded, and
// the stream recovers at the next newline.
TEST(LineReassemblerTest, OversizedUnterminatedLineIsBoundedAndSurfaced) {
  LineReassembler::Options options;
  options.max_line_bytes = 16;
  LineReassembler reassembler(options);
  std::vector<std::string> lines, bad;
  // 100 bytes of runaway garbage, drip-fed, never a newline.
  for (int i = 0; i < 10; ++i) {
    reassembler.Feed("aaaaaaaaaa", &lines, &bad);
  }
  EXPECT_TRUE(lines.empty());
  ASSERT_EQ(bad.size(), 1u);  // exactly one fault for the whole runaway line
  EXPECT_EQ(bad[0].size(), 16u);
  EXPECT_LE(reassembler.pending_bytes(), options.max_line_bytes);
  // The newline ends the discard region; the next line is clean.
  reassembler.Feed("zzz\r\nGOOD\r\n", &lines, &bad);
  ASSERT_EQ(lines.size(), 1u);
  EXPECT_EQ(lines[0], "GOOD");
  EXPECT_EQ(bad.size(), 1u);
  EXPECT_EQ(reassembler.stats().bad_lines, 1u);
}

TEST(LineReassemblerTest, OversizedTerminatedLineIsOneBadLine) {
  LineReassembler::Options options;
  options.max_line_bytes = 8;
  LineReassembler reassembler(options);
  std::vector<std::string> lines, bad;
  reassembler.Feed("0123456789AB\r\nok\r\n", &lines, &bad);
  ASSERT_EQ(bad.size(), 1u);
  EXPECT_EQ(bad[0], "0123456789AB");
  ASSERT_EQ(lines.size(), 1u);
  EXPECT_EQ(lines[0], "ok");
}

TEST(LineReassemblerTest, EofPartialBecomesOneBadLine) {
  LineReassembler reassembler;
  std::vector<std::string> lines, bad;
  reassembler.Feed("!AIVDM,1,1,,A,x,0*00\r\ntrailing-torso", &lines, &bad);
  reassembler.Finish(&bad);
  ASSERT_EQ(lines.size(), 1u);
  ASSERT_EQ(bad.size(), 1u);
  EXPECT_EQ(bad[0], "trailing-torso");
  // Finish is idempotent: no double-fault.
  reassembler.Finish(&bad);
  EXPECT_EQ(bad.size(), 1u);
}

// --- EpollLoop --------------------------------------------------------------

TEST(EpollLoopTest, DispatchesReadableFdAndStops) {
  EpollLoop loop;
  ASSERT_TRUE(loop.Init().ok());
  int fds[2];
  ASSERT_EQ(::pipe(fds), 0);
  std::atomic<int> hits{0};
  ASSERT_TRUE(loop.Add(fds[0],
                       EPOLLIN,
                       [&](uint32_t events) {
                         EXPECT_TRUE(events & EPOLLIN);
                         char buf[8];
                         EXPECT_EQ(::read(fds[0], buf, sizeof(buf)), 1);
                         ++hits;
                       })
                  .ok());
  EXPECT_EQ(loop.PollOnce(0), 0);  // nothing ready yet
  ASSERT_EQ(::write(fds[1], "x", 1), 1);
  EXPECT_EQ(loop.PollOnce(1000), 1);
  EXPECT_EQ(hits.load(), 1);

  std::thread runner([&] { loop.Run(); });
  loop.Stop();
  runner.join();  // Stop's eventfd doorbell must unblock Run
  ::close(fds[0]);
  ::close(fds[1]);
}

// --- TCP ingest -------------------------------------------------------------

int ConnectLoopback(uint16_t port) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  EXPECT_GE(fd, 0);
  struct sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  ::inet_pton(AF_INET, "127.0.0.1", &addr.sin_addr);
  EXPECT_EQ(::connect(fd, reinterpret_cast<struct sockaddr*>(&addr),
                      sizeof(addr)),
            0);
  return fd;
}

void SendAll(int fd, std::string_view bytes) {
  size_t off = 0;
  while (off < bytes.size()) {
    const ssize_t n = ::send(fd, bytes.data() + off, bytes.size() - off, 0);
    ASSERT_GT(n, 0);
    off += static_cast<size_t>(n);
  }
}

// Polls a drain until `want` records arrived (the server thread races the
// test thread; records may trickle in across epoll rounds).
template <typename DrainFn>
void DrainUntil(DrainFn drain, size_t want, const char* what) {
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(10);
  while (drain() < want) {
    ASSERT_LT(std::chrono::steady_clock::now(), deadline)
        << "timed out waiting for " << want << " " << what;
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
}

TEST(TcpIngestServerTest, RawLinesAcrossAdversarialChunks) {
  TcpIngestOptions options;
  options.mode = WireMode::kLines;
  options.clock = [] { return Timestamp{777}; };
  TcpIngestServer server(options);
  ASSERT_TRUE(server.Start().ok());
  ASSERT_GT(server.port(), 0);

  const std::string bytes = JoinCorpus("\r\n");
  const int fd = ConnectLoopback(server.port());
  // Adversarial pacing: one byte at a time with the socket flushed, so the
  // server sees worst-case read boundaries.
  for (size_t i = 0; i < bytes.size(); ++i) {
    SendAll(fd, std::string_view(bytes).substr(i, 1));
  }
  ::close(fd);
  ASSERT_TRUE(server.WaitForConnectionsClosed(1, 10000));

  std::vector<Event<std::string>> events;
  server.DrainLines(&events);
  ASSERT_EQ(events.size(), 4u);
  for (size_t i = 0; i < events.size(); ++i) {
    EXPECT_EQ(events[i].payload, kCorpusLines[i]);
    EXPECT_EQ(events[i].event_time, 777);
    EXPECT_EQ(events[i].ingest_time, 777);
    EXPECT_EQ(events[i].source_id, 1u);  // first connection
  }
  const NetIngestStats stats = server.stats();
  EXPECT_EQ(stats.connections_accepted, 1u);
  EXPECT_EQ(stats.connections_open, 0u);
  EXPECT_EQ(stats.lines, 4u);
  EXPECT_EQ(stats.bytes_in, bytes.size());
  ASSERT_EQ(stats.connections.size(), 1u);
  EXPECT_FALSE(stats.connections[0].open);
  EXPECT_EQ(stats.connections[0].lines, 4u);
  server.Stop();
}

TEST(TcpIngestServerTest, OversizedLineIsDeadLetteredNotBuffered) {
  TcpIngestOptions options;
  options.mode = WireMode::kLines;
  options.line.max_line_bytes = 32;
  options.clock = [] { return Timestamp{5}; };
  TcpIngestServer server(options);
  ASSERT_TRUE(server.Start().ok());

  const int fd = ConnectLoopback(server.port());
  SendAll(fd, std::string(500, 'x'));  // runaway, no terminator
  // Wait until the server has consumed the whole flood before sending the
  // terminator — otherwise TCP coalescing could deliver flood+newline as
  // one terminated (if oversized) line and skip the runaway path.
  {
    const auto deadline =
        std::chrono::steady_clock::now() + std::chrono::seconds(10);
    while (true) {
      const NetIngestStats s = server.stats();
      if (!s.connections.empty() && s.connections[0].bytes_in >= 500) break;
      ASSERT_LT(std::chrono::steady_clock::now(), deadline);
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
  }
  SendAll(fd, "\nGOOD\n");
  ::close(fd);
  ASSERT_TRUE(server.WaitForConnectionsClosed(1, 10000));

  std::vector<Event<std::string>> events;
  server.DrainLines(&events);
  ASSERT_EQ(events.size(), 1u);
  EXPECT_EQ(events[0].payload, "GOOD");
  std::vector<DeadLetter> dead;
  server.DrainDeadLetters(&dead);
  ASSERT_EQ(dead.size(), 1u);
  EXPECT_EQ(dead[0].reason, DeadLetterReason::kBadSentence);
  EXPECT_EQ(dead[0].payload.size(), 32u);  // bounded, not the whole flood
  server.Stop();
}

TEST(TcpIngestServerTest, EofTruncatedLineIsDeadLettered) {
  TcpIngestOptions options;
  options.clock = [] { return Timestamp{5}; };
  TcpIngestServer server(options);
  ASSERT_TRUE(server.Start().ok());
  const int fd = ConnectLoopback(server.port());
  SendAll(fd, "COMPLETE\r\nTORSO-WITHOUT-NEWLINE");
  ::close(fd);
  ASSERT_TRUE(server.WaitForConnectionsClosed(1, 10000));
  std::vector<Event<std::string>> events;
  server.DrainLines(&events);
  ASSERT_EQ(events.size(), 1u);
  EXPECT_EQ(events[0].payload, "COMPLETE");
  std::vector<DeadLetter> dead;
  server.DrainDeadLetters(&dead);
  ASSERT_EQ(dead.size(), 1u);
  EXPECT_EQ(dead[0].payload, "TORSO-WITHOUT-NEWLINE");
  server.Stop();
}

TEST(TcpIngestServerTest, FramedModeCarriesEnvelopesVerbatim) {
  TcpIngestOptions options;
  options.mode = WireMode::kFrames;
  TcpIngestServer server(options);
  ASSERT_TRUE(server.Start().ok());

  // One kLine and one kPacked frame with distinctive envelopes.
  Event<std::string> line_ev(1111, 2222, 42,
                             "!AIVDM,1,1,,A,13HOI:0P0000VOHLCnHQKwvL05Ip,0*23");
  Event<PackedRecord> packed_ev;
  packed_ev.event_time = 3333;
  packed_ev.ingest_time = 4444;
  packed_ev.source_id = 43;
  packed_ev.payload.received_at = 3300;
  packed_ev.payload.bits.AppendBits(0xDEADBEEF, 32);
  packed_ev.payload.bits.AppendBits(0x5, 3);

  std::string wire;
  AppendLineFrame(line_ev, &wire);
  AppendPackedFrame(packed_ev, &wire);

  const int fd = ConnectLoopback(server.port());
  // Split mid-header / mid-CRC: 7-byte chunks hit every straddle.
  for (size_t off = 0; off < wire.size(); off += 7) {
    SendAll(fd, std::string_view(wire).substr(off, 7));
  }
  ::close(fd);
  ASSERT_TRUE(server.WaitForConnectionsClosed(1, 10000));

  std::vector<Event<std::string>> lines;
  std::vector<Event<PackedRecord>> packed;
  server.DrainLines(&lines);
  server.DrainPacked(&packed);
  ASSERT_EQ(lines.size(), 1u);
  EXPECT_EQ(lines[0].event_time, 1111);
  EXPECT_EQ(lines[0].ingest_time, 2222);
  EXPECT_EQ(lines[0].source_id, 42u);
  EXPECT_EQ(lines[0].payload, line_ev.payload);
  ASSERT_EQ(packed.size(), 1u);
  EXPECT_EQ(packed[0].event_time, 3333);
  EXPECT_EQ(packed[0].source_id, 43u);
  EXPECT_TRUE(packed[0].payload == packed_ev.payload);
  EXPECT_EQ(server.stats().frames, 2u);
  server.Stop();
}

TEST(TcpIngestServerTest, CorruptFrameBecomesReasonCodedDeadLetter) {
  TcpIngestOptions options;
  options.mode = WireMode::kFrames;
  TcpIngestServer server(options);
  ASSERT_TRUE(server.Start().ok());

  Event<std::string> ev(1, 2, 3, "!AIVDM,1,1,,A,x,0*00");
  std::string good;
  AppendLineFrame(ev, &good);
  std::string corrupt = good;
  corrupt[corrupt.size() - 2] ^= 0x40;  // break the CRC

  const int fd = ConnectLoopback(server.port());
  SendAll(fd, corrupt + good);
  ::close(fd);
  ASSERT_TRUE(server.WaitForConnectionsClosed(1, 10000));

  std::vector<Event<std::string>> lines;
  server.DrainLines(&lines);
  ASSERT_EQ(lines.size(), 1u);  // the clean copy resynchronised
  const DeadLetterStats dl = server.dead_letters().stats();
  EXPECT_EQ(dl.by_reason[static_cast<size_t>(DeadLetterReason::kFrameCorrupt)],
            1u);
  EXPECT_EQ(server.stats().bad_frames, 1u);
  server.Stop();
}

// The fragment-isolation regression. Two senders each transmit a two-
// fragment type-5 message; both fresh encoders pick sequential id 0 on
// channel A, so the (seq, channel, count) group keys collide. Interleaved
// on ONE merged feed the groups cross-contaminate; keyed per connection
// (`fragment_group_by_source`) both messages decode intact.
TEST(TcpIngestServerTest, InterleavedFragmentsFromTwoConnectionsStayIsolated) {
  StaticVoyageData sv_a;
  sv_a.mmsi = 111111111;
  sv_a.name = "ALPHA";
  sv_a.call_sign = "AAAA";
  sv_a.destination = "ROTTERDAM";
  sv_a.ship_type = 70;
  sv_a.dim_to_bow_m = 100;
  sv_a.dim_to_stern_m = 20;
  StaticVoyageData sv_b = sv_a;
  sv_b.mmsi = 222222222;
  sv_b.name = "BRAVO";
  sv_b.destination = "HAMBURG";

  AisEncoder encoder_a, encoder_b;  // both start at sequential id 0
  auto lines_a = encoder_a.Encode(AisMessage(sv_a));
  auto lines_b = encoder_b.Encode(AisMessage(sv_b));
  ASSERT_TRUE(lines_a.ok());
  ASSERT_TRUE(lines_b.ok());
  ASSERT_EQ(lines_a->size(), 2u) << "type 5 must fragment";
  ASSERT_EQ(lines_b->size(), 2u);

  TcpIngestOptions options;
  options.clock = [] { return Timestamp{100}; };
  TcpIngestServer server(options);
  ASSERT_TRUE(server.Start().ok());

  const int fd_a = ConnectLoopback(server.port());
  const int fd_b = ConnectLoopback(server.port());
  std::vector<Event<std::string>> events;
  // Force the adversarial arrival order A1 B1 A2 B2 by draining between
  // sends — each fragment is observed before the next is transmitted.
  auto send_and_collect = [&](int fd, const std::string& line) {
    SendAll(fd, line + "\r\n");
    DrainUntil(
        [&] {
          server.DrainLines(&events);
          return events.size();
        },
        events.size() + 1, "fragment");
  };
  send_and_collect(fd_a, (*lines_a)[0]);
  send_and_collect(fd_b, (*lines_b)[0]);
  send_and_collect(fd_a, (*lines_a)[1]);
  send_and_collect(fd_b, (*lines_b)[1]);
  ::close(fd_a);
  ::close(fd_b);
  ASSERT_TRUE(server.WaitForConnectionsClosed(2, 10000));
  server.Stop();

  ASSERT_EQ(events.size(), 4u);
  EXPECT_NE(events[0].source_id, events[1].source_id)
      << "fragments must carry per-connection source ids";

  // Per-connection keying: both messages assemble and decode cleanly.
  {
    PipelineConfig config;
    config.fragment_group_by_source = true;
    MaritimePipeline pipeline(config, nullptr, nullptr, nullptr, nullptr);
    pipeline.IngestBatch(events);
    pipeline.Finish();
    EXPECT_EQ(pipeline.metrics().decoder.messages_out, 2u);
    EXPECT_EQ(pipeline.metrics().decoder.bad_payloads, 0u);
    EXPECT_EQ(pipeline.metrics().decoder.bad_sentences, 0u);
  }
  // Control arm — the pre-fix behaviour: one merged reassembly namespace,
  // colliding groups cross-contaminate, at least one message is lost.
  {
    PipelineConfig config;
    MaritimePipeline pipeline(config, nullptr, nullptr, nullptr, nullptr);
    pipeline.IngestBatch(events);
    pipeline.Finish();
    const auto& d = pipeline.metrics().decoder;
    EXPECT_FALSE(d.messages_out == 2 && d.bad_payloads == 0)
        << "merged-namespace arm unexpectedly decoded both messages — the "
           "regression test lost its teeth";
  }
}

// --- UDP ingest -------------------------------------------------------------

TEST(UdpIngestServerTest, DatagramsArePerPeerAndSelfContained) {
  UdpIngestOptions options;
  options.clock = [] { return Timestamp{9}; };
  UdpIngestServer server(options);
  ASSERT_TRUE(server.Start().ok());
  ASSERT_GT(server.port(), 0);

  struct sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(server.port());
  ::inet_pton(AF_INET, "127.0.0.1", &addr.sin_addr);

  const int fd1 = ::socket(AF_INET, SOCK_DGRAM, 0);
  const int fd2 = ::socket(AF_INET, SOCK_DGRAM, 0);
  ASSERT_GE(fd1, 0);
  ASSERT_GE(fd2, 0);
  const std::string gram1 = std::string(kCorpusLines[0]) + "\r\n" +
                            kCorpusLines[3] + "\r\n";
  // Second datagram ends with an unterminated torso: a sender bug — the
  // torso must NOT be stitched to the next datagram.
  const std::string gram2 = std::string(kCorpusLines[0]) + "\r\ntorso";
  const std::string gram3 = "-continued\r\n";
  ASSERT_EQ(::sendto(fd1, gram1.data(), gram1.size(), 0,
                     reinterpret_cast<struct sockaddr*>(&addr), sizeof(addr)),
            static_cast<ssize_t>(gram1.size()));
  ASSERT_EQ(::sendto(fd2, gram2.data(), gram2.size(), 0,
                     reinterpret_cast<struct sockaddr*>(&addr), sizeof(addr)),
            static_cast<ssize_t>(gram2.size()));
  ASSERT_EQ(::sendto(fd2, gram3.data(), gram3.size(), 0,
                     reinterpret_cast<struct sockaddr*>(&addr), sizeof(addr)),
            static_cast<ssize_t>(gram3.size()));
  ASSERT_TRUE(server.WaitForDatagrams(3, 10000));
  server.Stop();

  std::vector<Event<std::string>> events;
  server.DrainLines(&events);
  ASSERT_EQ(events.size(), 4u);  // 2 + 1 + 1 complete lines
  EXPECT_EQ(events[0].source_id, events[1].source_id);
  EXPECT_NE(events[0].source_id, events[2].source_id);
  EXPECT_EQ(events[3].payload, "-continued");  // NOT "torso-continued"

  std::vector<DeadLetter> dead;
  server.DrainDeadLetters(&dead);
  ASSERT_EQ(dead.size(), 1u);
  EXPECT_EQ(dead[0].reason, DeadLetterReason::kBadSentence);
  EXPECT_EQ(dead[0].payload, "torso");

  const NetIngestStats stats = server.stats();
  EXPECT_EQ(stats.datagrams, 3u);
  EXPECT_EQ(stats.connections_accepted, 2u);  // two logical peers
  EXPECT_EQ(stats.lines, 4u);
  EXPECT_EQ(stats.bad_lines, 1u);
  ::close(fd1);
  ::close(fd2);
}

}  // namespace
}  // namespace marlin
