// Unit tests for marlin_sim: world geometry, vessel behaviours, receiver
// model, radar simulator, and full scenario generation.

#include <gtest/gtest.h>

#include "ais/codec.h"
#include "ais/validation.h"
#include "common/units.h"
#include "geo/geodesy.h"
#include "sim/radar.h"
#include "sim/receiver.h"
#include "sim/scenario.h"
#include "sim/vessel_sim.h"
#include "sim/world.h"

namespace marlin {
namespace {

// --- World -------------------------------------------------------------------

TEST(WorldTest, BasinIsWellFormed) {
  const World world = World::Basin();
  EXPECT_GE(world.ports().size(), 6u);
  EXPECT_GE(world.lanes().size(), 8u);
  EXPECT_GE(world.fishing_grounds().size(), 2u);
  for (const Lane& lane : world.lanes()) {
    ASSERT_GE(lane.waypoints.size(), 2u);
    // Lanes start and end at their ports.
    EXPECT_LT(HaversineDistance(lane.waypoints.front(),
                                world.ports()[lane.from_port].position),
              1.0);
    EXPECT_LT(HaversineDistance(lane.waypoints.back(),
                                world.ports()[lane.to_port].position),
              1.0);
  }
}

TEST(WorldTest, ZonesDerivedFromGeography) {
  const World world = World::Basin();
  const ZoneDatabase& zones = world.zones();
  // 2 zones per port + grounds + 2 EEZs.
  EXPECT_GE(zones.size(), world.ports().size() * 2 + 2);
  // Port centre is inside its port zone.
  const auto at_port = zones.ZonesAt(world.ports()[0].position);
  bool found_port = false;
  for (const auto* z : at_port) {
    if (z->type == ZoneType::kPort) found_port = true;
  }
  EXPECT_TRUE(found_port);
  // The protected ground exists and prohibits fishing.
  bool found_protected = false;
  for (const auto& z : zones.zones()) {
    if (z.type == ZoneType::kProtectedArea) {
      found_protected = true;
      EXPECT_TRUE(z.fishing_prohibited);
    }
  }
  EXPECT_TRUE(found_protected);
}

TEST(WorldTest, EveryPointInExactlyOneEez) {
  const World world = World::Basin();
  const BoundingBox bounds = world.Bounds();
  for (double lat = bounds.min_lat + 0.2; lat < bounds.max_lat;
       lat += 1.7) {
    for (double lon = bounds.min_lon + 0.2; lon < bounds.max_lon;
         lon += 2.3) {
      const auto eez =
          world.zones().ZonesAt(GeoPoint(lat, lon), ZoneType::kEez);
      EXPECT_EQ(eez.size(), 1u) << lat << "," << lon;
    }
  }
}

TEST(WorldTest, LanesFromPort) {
  const World world = World::Basin();
  const auto lanes = world.LanesFrom(0);
  EXPECT_FALSE(lanes.empty());
  for (int lane : lanes) {
    EXPECT_EQ(world.lanes()[lane].from_port, 0);
  }
}

TEST(WorldTest, GlobalWorldSpansTheGlobe) {
  const World world = World::Global();
  const BoundingBox bounds = world.Bounds();
  EXPECT_LT(bounds.min_lat, -20.0);
  EXPECT_GT(bounds.max_lat, 50.0);
  EXPECT_LT(bounds.min_lon, -100.0);
  EXPECT_GT(bounds.max_lon, 100.0);
}

// --- Vessel simulation ----------------------------------------------------

TEST(VesselSimTest, TransitFollowsLane) {
  const World world = World::Basin();
  VesselSpec spec;
  spec.mmsi = 228000001;
  spec.behaviour = Behaviour::kTransit;
  spec.lane = 0;
  spec.speed_knots = 12.0;
  spec.depart_time = 0;
  Rng rng(211);
  const auto states =
      SimulateVessel(spec, world, 0, Hours(4), Seconds(10), &rng);
  ASSERT_FALSE(states.empty());
  // The vessel moves.
  EXPECT_GT(HaversineDistance(states.front().position, states.back().position),
            10000.0);
  // Every position stays within ~3 km of the lane polyline (wander bound).
  const auto& lane = world.lanes()[0].waypoints;
  for (size_t i = 0; i < states.size(); i += 50) {
    EXPECT_LT(DistanceToPolyline(states[i].position, lane), 3000.0);
  }
  // Speed while underway is near the commanded speed.
  double max_speed = 0.0;
  for (const auto& s : states) max_speed = std::max(max_speed, s.sog_mps);
  EXPECT_NEAR(max_speed, KnotsToMps(12.0), KnotsToMps(12.0) * 0.35);
}

TEST(VesselSimTest, DepartTimeRespected) {
  const World world = World::Basin();
  VesselSpec spec;
  spec.behaviour = Behaviour::kTransit;
  spec.lane = 1;
  spec.depart_time = Hours(1);
  Rng rng(213);
  const auto states =
      SimulateVessel(spec, world, 0, Hours(2), Seconds(10), &rng);
  // Stationary before departure.
  for (const auto& s : states) {
    if (s.t < spec.depart_time) {
      EXPECT_DOUBLE_EQ(s.sog_mps, 0.0);
    }
  }
}

TEST(VesselSimTest, DarkWindowsSuppressTransmission) {
  const World world = World::Basin();
  VesselSpec spec;
  spec.behaviour = Behaviour::kGoDark;
  spec.lane = 0;
  spec.depart_time = 0;
  spec.dark_windows = {{Hours(1), Hours(2)}};
  Rng rng(217);
  const auto states =
      SimulateVessel(spec, world, 0, Hours(3), Seconds(10), &rng);
  for (const auto& s : states) {
    const bool in_window = s.t >= Hours(1) && s.t < Hours(2);
    EXPECT_EQ(s.transmitting, !in_window) << s.t;
  }
}

TEST(VesselSimTest, RendezvousPairMeets) {
  const World world = World::Basin();
  // Meet 30 km off the lane-0 departure port: reachable in ~1.4 h at 12 kn,
  // so both vessels arrive before the 2 h meet time and hold there.
  const GeoPoint start = World::Basin().lanes()[0].waypoints.front();
  const GeoPoint meet = Destination(start, 45.0, 30000.0);
  const Timestamp meet_time = Hours(2);
  VesselSpec a, b;
  a.mmsi = 1;
  b.mmsi = 2;
  a.behaviour = Behaviour::kRendezvousA;
  b.behaviour = Behaviour::kRendezvousB;
  a.lane = 0;
  b.lane = 0;
  a.speed_knots = b.speed_knots = 12.0;
  a.meet_point = meet;
  b.meet_point = Destination(meet, 90.0, 80.0);
  a.meet_time = b.meet_time = meet_time;
  a.meet_duration = b.meet_duration = Minutes(30);
  // Depart early enough to arrive.
  a.depart_time = b.depart_time = 0;
  Rng rng(219);
  const auto sa = SimulateVessel(a, world, 0, Hours(4), Seconds(10), &rng);
  const auto sb = SimulateVessel(b, world, 0, Hours(4), Seconds(10), &rng);
  // During the meeting window both are near the meet point and slow.
  const Timestamp probe = meet_time + Minutes(15);
  const auto at = [probe](const std::vector<TruthState>& states) {
    for (const auto& s : states) {
      if (s.t >= probe) return s;
    }
    return states.back();
  };
  const TruthState pa = at(sa);
  const TruthState pb = at(sb);
  EXPECT_LT(HaversineDistance(pa.position, meet), 2000.0);
  EXPECT_LT(HaversineDistance(pa.position, pb.position), 2000.0);
  EXPECT_LT(pa.sog_mps, 1.0);
}

TEST(VesselSimTest, LoiterStaysConfined) {
  const World world = World::Basin();
  VesselSpec spec;
  spec.behaviour = Behaviour::kLoiter;
  spec.loiter_centre = GeoPoint(39.0, 1.0);
  spec.depart_time = 0;
  Rng rng(223);
  const auto states =
      SimulateVessel(spec, world, 0, Hours(3), Seconds(10), &rng);
  for (size_t i = 0; i < states.size(); i += 20) {
    EXPECT_LT(HaversineDistance(states[i].position, spec.loiter_centre),
              3000.0);
  }
}

TEST(VesselSimTest, TruthToTrajectoryPreservesOrder) {
  const World world = World::Basin();
  VesselSpec spec;
  spec.behaviour = Behaviour::kTransit;
  spec.lane = 0;
  Rng rng(227);
  const auto states =
      SimulateVessel(spec, world, 0, Hours(1), Seconds(10), &rng);
  const Trajectory traj = TruthToTrajectory(42, states);
  EXPECT_EQ(traj.mmsi, 42u);
  EXPECT_EQ(traj.points.size(), states.size());
  for (size_t i = 1; i < traj.points.size(); ++i) {
    EXPECT_GT(traj.points[i].t, traj.points[i - 1].t);
  }
}

// --- Reporting intervals ------------------------------------------------

TEST(ReportingIntervalTest, ItuClassARates) {
  EXPECT_EQ(ReportingInterval(0.0, true), 3 * kMillisPerMinute);
  EXPECT_EQ(ReportingInterval(0.1, false), 3 * kMillisPerMinute);
  EXPECT_EQ(ReportingInterval(10.0, false), 10 * kMillisPerSecond);
  EXPECT_EQ(ReportingInterval(14.0, false), 10 * kMillisPerSecond);
  EXPECT_EQ(ReportingInterval(20.0, false), 6 * kMillisPerSecond);
  EXPECT_EQ(ReportingInterval(25.0, false), 2 * kMillisPerSecond);
}

// --- ReceiverModel ----------------------------------------------------------

TEST(ReceiverTest, TerrestrialCoverageByRange) {
  ReceiverModel::Options opts;
  opts.stations = {{GeoPoint(40.0, 5.0), 50000.0}};
  opts.terrestrial_loss = 0.0;
  opts.satellite_period_ms = 0;  // no satellite
  opts.duplicate_prob = 0.0;
  ReceiverModel model(opts, 229);
  // In range: always delivered with small latency.
  const auto near = model.Deliver(1000000, Destination(GeoPoint(40, 5), 0, 10000));
  ASSERT_EQ(near.size(), 1u);
  EXPECT_EQ(near[0].source_id, 1u);
  EXPECT_GT(near[0].ingest_time, 1000000);
  EXPECT_LT(near[0].ingest_time, 1000000 + Seconds(10));
  // Out of range, no satellite: lost.
  EXPECT_TRUE(
      model.Deliver(1000000, Destination(GeoPoint(40, 5), 0, 200000)).empty());
}

TEST(ReceiverTest, SatelliteDutyCycle) {
  ReceiverModel::Options opts;
  opts.satellite_period_ms = Minutes(90);
  opts.satellite_window_ms = Minutes(10);
  opts.satellite_loss = 0.0;
  ReceiverModel model(opts, 231);
  EXPECT_TRUE(model.SatelliteVisible(Minutes(5)));
  EXPECT_FALSE(model.SatelliteVisible(Minutes(50)));
  EXPECT_TRUE(model.SatelliteVisible(Minutes(95)));
  // Delivery during a pass has satellite-scale latency.
  const auto deliveries = model.Deliver(Minutes(5), GeoPoint(40, 5));
  ASSERT_EQ(deliveries.size(), 1u);
  EXPECT_EQ(deliveries[0].source_id, 2u);
  EXPECT_GE(deliveries[0].ingest_time - Minutes(5), Seconds(30));
}

TEST(ReceiverTest, LossRateApproximatelyHonoured) {
  ReceiverModel::Options opts;
  opts.stations = {{GeoPoint(40.0, 5.0), 100000.0}};
  opts.terrestrial_loss = 0.25;
  opts.satellite_period_ms = 0;
  opts.duplicate_prob = 0.0;
  ReceiverModel model(opts, 233);
  int delivered = 0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) {
    if (!model.Deliver(i * 1000, GeoPoint(40.0, 5.0)).empty()) ++delivered;
  }
  EXPECT_NEAR(static_cast<double>(delivered) / n, 0.75, 0.02);
}

TEST(ReceiverTest, DuplicatesProduced) {
  ReceiverModel::Options opts;
  opts.stations = {{GeoPoint(40.0, 5.0), 100000.0}};
  opts.terrestrial_loss = 0.0;
  opts.satellite_period_ms = 0;
  opts.duplicate_prob = 1.0;  // always duplicate
  ReceiverModel model(opts, 237);
  const auto deliveries = model.Deliver(0, GeoPoint(40.0, 5.0));
  EXPECT_EQ(deliveries.size(), 2u);
  EXPECT_GT(deliveries[1].ingest_time, deliveries[0].ingest_time);
}

// --- RadarSimulator ---------------------------------------------------------

TEST(RadarTest, ContactsNearTruthWithinRange) {
  RadarSite site;
  site.position = GeoPoint(40.0, 5.0);
  site.range_m = 50000.0;
  site.detection_prob = 1.0;
  site.false_alarms_per_scan = 0.0;
  site.sigma_m = 50.0;
  RadarSimulator radar(site, 239);
  std::map<Mmsi, Trajectory> truth;
  Trajectory traj;
  traj.mmsi = 1;
  for (int i = 0; i < 10; ++i) {
    TrajectoryPoint p;
    p.t = i * 6000;
    p.position = Destination(site.position, 45.0, 20000.0 + 50.0 * i);
    traj.points.push_back(p);
  }
  truth[1] = traj;
  const auto contacts = radar.Scan(truth, 30000);
  ASSERT_EQ(contacts.size(), 1u);
  EXPECT_EQ(contacts[0].mmsi, 0u);  // anonymous
  EXPECT_LT(HaversineDistance(contacts[0].position, traj.At(30000).position),
            500.0);
}

TEST(RadarTest, OutOfRangeInvisible) {
  RadarSite site;
  site.position = GeoPoint(40.0, 5.0);
  site.range_m = 10000.0;
  site.detection_prob = 1.0;
  site.false_alarms_per_scan = 0.0;
  RadarSimulator radar(site, 241);
  std::map<Mmsi, Trajectory> truth;
  Trajectory traj;
  traj.mmsi = 1;
  TrajectoryPoint p;
  p.t = 0;
  p.position = Destination(site.position, 0.0, 50000.0);
  traj.points.push_back(p);
  p.t = 100000;
  traj.points.push_back(p);
  truth[1] = traj;
  EXPECT_TRUE(radar.Scan(truth, 50000).empty());
}

TEST(RadarTest, DetectionProbabilityHonoured) {
  RadarSite site;
  site.position = GeoPoint(40.0, 5.0);
  site.detection_prob = 0.6;
  site.false_alarms_per_scan = 0.0;
  RadarSimulator radar(site, 243);
  std::map<Mmsi, Trajectory> truth;
  Trajectory traj;
  traj.mmsi = 1;
  TrajectoryPoint p;
  p.t = 0;
  p.position = Destination(site.position, 90.0, 10000.0);
  traj.points.push_back(p);
  p.t = 10000000;
  traj.points.push_back(p);
  truth[1] = traj;
  int detections = 0;
  const int scans = 5000;
  for (int i = 0; i < scans; ++i) {
    detections += static_cast<int>(radar.Scan(truth, i * 1000).size());
  }
  EXPECT_NEAR(static_cast<double>(detections) / scans, 0.6, 0.03);
}

// --- Scenario ----------------------------------------------------------------

class ScenarioTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    world_ = new World(World::Basin());
    ScenarioConfig config;
    config.seed = 77;
    config.duration = Hours(2);
    config.transit_vessels = 10;
    config.fishing_vessels = 3;
    config.loiter_vessels = 1;
    config.rendezvous_pairs = 1;
    config.dark_vessels = 2;
    config.spoof_identity_vessels = 1;
    config.spoof_teleport_vessels = 1;
    output_ = new ScenarioOutput(GenerateScenario(*world_, config));
  }
  static void TearDownTestSuite() {
    delete output_;
    delete world_;
    output_ = nullptr;
    world_ = nullptr;
  }
  static World* world_;
  static ScenarioOutput* output_;
};

World* ScenarioTest::world_ = nullptr;
ScenarioOutput* ScenarioTest::output_ = nullptr;

TEST_F(ScenarioTest, FleetComposition) {
  EXPECT_EQ(output_->fleet.size(), 10u + 3 + 1 + 2 + 2 + 1 + 1);
  EXPECT_EQ(output_->truth.size(), output_->fleet.size());
}

TEST_F(ScenarioTest, StreamSortedByIngestTime) {
  ASSERT_GT(output_->nmea.size(), 1000u);
  for (size_t i = 1; i < output_->nmea.size(); ++i) {
    EXPECT_LE(output_->nmea[i - 1].ingest_time, output_->nmea[i].ingest_time);
  }
}

TEST_F(ScenarioTest, StreamDecodes) {
  AisDecoder decoder;
  size_t decoded = 0;
  const size_t limit = std::min<size_t>(output_->nmea.size(), 5000);
  for (size_t i = 0; i < limit; ++i) {
    if (decoder.Decode(output_->nmea[i].payload, output_->nmea[i].ingest_time)
            .has_value()) {
      ++decoded;
    }
  }
  // All sentences are well-formed; only pending multi-fragment sentences
  // don't immediately produce a message.
  EXPECT_EQ(decoder.stats().bad_sentences, 0u);
  EXPECT_EQ(decoder.stats().bad_payloads, 0u);
  EXPECT_GT(decoded, limit / 2);
}

TEST_F(ScenarioTest, GroundTruthEventsSeeded) {
  int rendezvous = 0, dark = 0, spoof_id = 0, spoof_tp = 0, loiter = 0;
  for (const auto& ev : output_->events) {
    switch (ev.type) {
      case TrueEventType::kRendezvous:
        ++rendezvous;
        EXPECT_NE(ev.vessel_a, 0u);
        EXPECT_NE(ev.vessel_b, 0u);
        break;
      case TrueEventType::kDarkPeriod:
        ++dark;
        break;
      case TrueEventType::kSpoofIdentity:
        ++spoof_id;
        break;
      case TrueEventType::kSpoofTeleport:
        ++spoof_tp;
        break;
      case TrueEventType::kLoitering:
        ++loiter;
        break;
      default:
        break;
    }
  }
  EXPECT_EQ(rendezvous, 1);
  EXPECT_GE(dark, 2);
  EXPECT_EQ(spoof_id, 1);
  EXPECT_EQ(spoof_tp, 1);
  EXPECT_EQ(loiter, 1);
}

TEST_F(ScenarioTest, DeterministicForSameSeed) {
  ScenarioConfig config;
  config.seed = 77;
  config.duration = Hours(2);
  config.transit_vessels = 10;
  config.fishing_vessels = 3;
  config.loiter_vessels = 1;
  config.rendezvous_pairs = 1;
  config.dark_vessels = 2;
  config.spoof_identity_vessels = 1;
  config.spoof_teleport_vessels = 1;
  const ScenarioOutput again = GenerateScenario(*world_, config);
  ASSERT_EQ(again.nmea.size(), output_->nmea.size());
  for (size_t i = 0; i < 100; ++i) {
    EXPECT_EQ(again.nmea[i].payload, output_->nmea[i].payload);
  }
}

TEST_F(ScenarioTest, SpoofedIdentityAppearsInStream) {
  // Find the identity-spoof ground truth.
  Mmsi claimed = 0;
  for (const auto& ev : output_->events) {
    if (ev.type == TrueEventType::kSpoofIdentity) claimed = ev.vessel_b;
  }
  ASSERT_NE(claimed, 0u);
  // The claimed MMSI must appear in decoded traffic (transmitted by the
  // spoofer and possibly the legitimate holder).
  AisDecoder decoder;
  bool seen = false;
  for (const auto& ev : output_->nmea) {
    const auto msg = decoder.Decode(ev.payload, ev.ingest_time);
    if (msg.has_value() && MmsiOf(*msg) == claimed) {
      seen = true;
      break;
    }
  }
  EXPECT_TRUE(seen);
}

TEST(ScenarioConfigTest, PerfectReceptionDeliversEverything) {
  const World world = World::Basin();
  ScenarioConfig config;
  config.seed = 99;
  config.duration = Minutes(30);
  config.transit_vessels = 3;
  config.fishing_vessels = 0;
  config.loiter_vessels = 0;
  config.rendezvous_pairs = 0;
  config.dark_vessels = 0;
  config.spoof_identity_vessels = 0;
  config.spoof_teleport_vessels = 0;
  config.perfect_reception = true;
  const ScenarioOutput out = GenerateScenario(world, config);
  // Every event has ingest == event time (no latency model).
  for (const auto& ev : out.nmea) {
    EXPECT_EQ(ev.ingest_time, ev.event_time);
  }
  EXPECT_GT(out.transmissions, 0u);
}

TEST(ScenarioConfigTest, StaticErrorRateSeedsDefects) {
  const World world = World::Basin();
  ScenarioConfig config;
  config.seed = 101;
  config.duration = Hours(1);
  config.transit_vessels = 8;
  config.fishing_vessels = 0;
  config.loiter_vessels = 0;
  config.rendezvous_pairs = 0;
  config.dark_vessels = 0;
  config.spoof_identity_vessels = 0;
  config.spoof_teleport_vessels = 0;
  config.perfect_reception = true;
  config.static_error_rate = 0.5;  // high rate so the test is strong
  const ScenarioOutput out = GenerateScenario(world, config);
  AisDecoder decoder;
  QualityAssessor qa;
  for (const auto& ev : out.nmea) {
    const auto msg = decoder.Decode(ev.payload, ev.ingest_time);
    if (msg.has_value()) qa.Observe(*msg);
  }
  EXPECT_GT(qa.report().static_messages, 10u);
  EXPECT_NEAR(qa.report().StaticErrorRate(), 0.5, 0.2);
}

}  // namespace
}  // namespace marlin
