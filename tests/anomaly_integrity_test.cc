// Sentinel-correct kinematics and the anomaly & integrity stage:
//  * ITU ROT_AIS decoding (sentinels, sign, magnitude, wire round trip),
//  * availability propagation decode → reconstruct → synopses,
//  * archive round trips preserving availability byte-identically,
//  * adversarial scenario packs triggering their target detectors with a
//    zero-false-positive clean world,
//  * sequential vs N-shard byte-identity with the stage enabled.

#include <gtest/gtest.h>

#include <algorithm>
#include <bit>
#include <cmath>
#include <cstdint>
#include <tuple>
#include <vector>

#include "ais/codec.h"
#include "ais/types.h"
#include "common/units.h"
#include "core/anomaly.h"
#include "core/integrity.h"
#include "core/pipeline.h"
#include "core/reconstruction.h"
#include "core/sharded_pipeline.h"
#include "core/synopses.h"
#include "geo/geodesy.h"
#include "sim/packs.h"
#include "sim/scenario.h"
#include "sim/world.h"
#include "storage/archive.h"
#include "storage/trajectory.h"

namespace marlin {
namespace {

const World& SharedWorld() {
  static World world = World::Basin();
  return world;
}

PipelineConfig StageConfig() {
  PipelineConfig pc;
  pc.window_lines = 512;
  pc.enable_anomaly = true;
  return pc;
}

size_t CountEvents(const std::vector<DetectedEvent>& events, EventType type) {
  return static_cast<size_t>(
      std::count_if(events.begin(), events.end(),
                    [type](const DetectedEvent& ev) { return ev.type == type; }));
}

std::vector<DetectedEvent> RunSequential(const ScenarioOutput& scenario,
                                         const PipelineConfig& pc,
                                         PipelineMetrics* metrics = nullptr) {
  MaritimePipeline pipeline(pc, &SharedWorld().zones(), nullptr, nullptr,
                            nullptr);
  auto events = pipeline.Run(scenario.nmea);
  if (metrics != nullptr) *metrics = pipeline.metrics();
  return events;
}

auto EventKey(const DetectedEvent& ev) {
  return std::make_tuple(ev.detected_at, ev.vessel_a, ev.vessel_b,
                         static_cast<int>(ev.type), ev.start, ev.end,
                         ev.zone_id, ev.severity, ev.where.lat, ev.where.lon);
}

void ExpectSameEvents(const std::vector<DetectedEvent>& a,
                      const std::vector<DetectedEvent>& b,
                      bool compare_order) {
  ASSERT_EQ(a.size(), b.size());
  std::vector<decltype(EventKey(a.front()))> ka, kb;
  for (const auto& ev : a) ka.push_back(EventKey(ev));
  for (const auto& ev : b) kb.push_back(EventKey(ev));
  if (!compare_order) {
    std::sort(ka.begin(), ka.end());
    std::sort(kb.begin(), kb.end());
  }
  for (size_t i = 0; i < ka.size(); ++i) {
    EXPECT_EQ(ka[i], kb[i]) << "event mismatch at index " << i;
  }
}

/// A raw position report with a recoverable event time `t` (ms, multiple of
/// 1000 so the UTC-second round trip is exact).
PositionReport MakeReport(Mmsi mmsi, Timestamp t, const GeoPoint& pos,
                          double sog_knots, double cog_deg) {
  PositionReport pr;
  pr.mmsi = mmsi;
  pr.position = pos;
  pr.sog_knots = sog_knots;
  pr.cog_deg = cog_deg;
  pr.utc_second = static_cast<int>((t / 1000) % 60);
  pr.received_at = t;
  return pr;
}

// --- ITU rate-of-turn decoding ----------------------------------------------

TEST(RotDecodingTest, SentinelsCarryNoTurnRate) {
  PositionReport pr;
  pr.rate_of_turn = AisSentinels::kRotNotAvailable;  // -128
  EXPECT_FALSE(pr.HasTurnRate());
  pr.rate_of_turn = AisSentinels::kRotNoTurnInfo;  // +127
  EXPECT_FALSE(pr.HasTurnRate());
  pr.rate_of_turn = -AisSentinels::kRotNoTurnInfo;  // -127
  EXPECT_FALSE(pr.HasTurnRate());
  pr.rate_of_turn = 126;
  EXPECT_TRUE(pr.HasTurnRate());
  pr.rate_of_turn = -126;
  EXPECT_TRUE(pr.HasTurnRate());
  pr.rate_of_turn = 0;
  EXPECT_TRUE(pr.HasTurnRate());
  EXPECT_EQ(pr.TurnRateDegPerMin(), 0.0);
}

TEST(RotDecodingTest, ItuQuadraticRuleWithSign) {
  // ROT_AIS = 4.733 * sqrt(deg/min): field value 47 is ~98.6 deg/min.
  PositionReport pr;
  pr.rate_of_turn = 47;
  EXPECT_NEAR(pr.TurnRateDegPerMin(), std::pow(47 / 4.733, 2.0), 1e-9);
  EXPECT_NEAR(pr.TurnRateDegPerMin(), 98.6, 0.1);
  pr.rate_of_turn = -47;
  EXPECT_NEAR(pr.TurnRateDegPerMin(), -98.6, 0.1);
  // Full-scale usable value: ~708 deg/min, the ITU ceiling.
  pr.rate_of_turn = 126;
  EXPECT_NEAR(pr.TurnRateDegPerMin(), 708.7, 0.5);
}

TEST(RotDecodingTest, RotSurvivesTheWire) {
  AisEncoder encoder;
  AisDecoder decoder;
  for (int rot : {-128, -127, -47, 0, 47, 126, 127}) {
    PositionReport pr = MakeReport(235000001, 1700000000000,
                                   GeoPoint(35.0, 18.0), 12.0, 90.0);
    pr.rate_of_turn = rot;
    auto lines = encoder.Encode(AisMessage(pr));
    ASSERT_TRUE(lines.ok());
    ASSERT_EQ(lines->size(), 1u);
    auto decoded = decoder.Decode((*lines)[0], pr.received_at);
    ASSERT_TRUE(decoded.has_value());
    const auto* out = std::get_if<PositionReport>(&*decoded);
    ASSERT_NE(out, nullptr);
    EXPECT_EQ(out->rate_of_turn, rot) << "ROT_AIS " << rot;
  }
}

// --- Sentinel propagation through reconstruction -----------------------------

TEST(SentinelPropagationTest, MissingKinematicsStayUnavailable) {
  TrajectoryReconstructor recon;
  std::vector<ReconstructedPoint> points;
  const Timestamp t0 = 1700000000000;
  const GeoPoint origin(35.0, 18.0);

  // Report 0: everything available. Report 1: SOG sentinel. Report 2: COG
  // sentinel. Report 3: both sentinels + ROT sentinel (the default).
  PositionReport r0 = MakeReport(1, t0, origin, 10.0, 45.0);
  r0.rate_of_turn = 12;
  recon.Ingest(r0, &points, nullptr);
  recon.Ingest(MakeReport(1, t0 + 10000,
                          Destination(origin, 45.0, 51.4),
                          AisSentinels::kSpeedNotAvailable, 45.0),
               &points, nullptr);
  recon.Ingest(MakeReport(1, t0 + 20000, Destination(origin, 45.0, 102.9),
                          10.0, AisSentinels::kCourseNotAvailable),
               &points, nullptr);
  recon.Ingest(MakeReport(1, t0 + 30000, Destination(origin, 45.0, 154.3),
                          AisSentinels::kSpeedNotAvailable,
                          AisSentinels::kCourseNotAvailable),
               &points, nullptr);
  recon.Flush(&points, nullptr);
  ASSERT_EQ(points.size(), 4u);

  EXPECT_TRUE(points[0].point.HasSpeed());
  EXPECT_TRUE(points[0].point.HasCourse());
  EXPECT_TRUE(points[0].HasTurnRate());
  EXPECT_NEAR(points[0].point.sog_mps, KnotsToMps(10.0), 1e-4);
  EXPECT_NEAR(points[0].point.cog_deg, 45.0, 1e-4);

  EXPECT_FALSE(points[1].point.HasSpeed());
  EXPECT_TRUE(points[1].point.HasCourse());
  EXPECT_FALSE(points[1].HasTurnRate());

  EXPECT_TRUE(points[2].point.HasSpeed());
  EXPECT_FALSE(points[2].point.HasCourse());

  EXPECT_FALSE(points[3].point.HasSpeed());
  EXPECT_FALSE(points[3].point.HasCourse());

  // Unavailable is the single canonical bit pattern, not just "some NaN" —
  // the property the archive's raw-bit encodings rely on.
  EXPECT_EQ(std::bit_cast<uint32_t>(points[1].point.sog_mps),
            TrajectoryPoint::kUnavailableBits);
  EXPECT_EQ(std::bit_cast<uint32_t>(points[2].point.cog_deg),
            TrajectoryPoint::kUnavailableBits);
}

TEST(SentinelPropagationTest, SynopsisRulesSkipUnavailableFields) {
  // A vessel whose every report lacks SOG/COG must produce no stop/restart,
  // turn, or speed-change critical points — before the fix, sentinel speed
  // decoded as 0.0 made every such vessel look permanently stopped.
  SynopsisEngine engine;
  const Timestamp t0 = 1700000000000;
  const GeoPoint origin(35.0, 18.0);
  std::vector<CriticalPoint> log;
  for (int i = 0; i < 100; ++i) {
    ReconstructedPoint rp;
    rp.mmsi = 7;
    rp.point.t = t0 + static_cast<Timestamp>(i) * 10000;
    rp.point.position = Destination(origin, 45.0, 51.4 * i);
    rp.point.sog_mps = TrajectoryPoint::Unavailable();
    rp.point.cog_deg = TrajectoryPoint::Unavailable();
    rp.starts_segment = (i == 0);
    engine.Ingest(rp, &log);
  }
  for (const CriticalPoint& cp : log) {
    EXPECT_NE(cp.type, CriticalPointType::kStop);
    EXPECT_NE(cp.type, CriticalPointType::kRestart);
    EXPECT_NE(cp.type, CriticalPointType::kTurn);
    EXPECT_NE(cp.type, CriticalPointType::kSpeedChange);
  }
}

// --- Archive round trips -----------------------------------------------------

std::vector<TrajectoryPoint> SentinelComboPoints() {
  const Timestamp t0 = 1700000000000;
  const GeoPoint origin(35.0, 18.0);
  std::vector<TrajectoryPoint> points;
  for (int combo = 0; combo < 4; ++combo) {
    TrajectoryPoint p;
    p.t = t0 + combo * 10000;
    p.position = Destination(origin, 90.0, 100.0 * combo);
    p.sog_mps = (combo & 1) ? TrajectoryPoint::Unavailable() : 5.25f;
    p.cog_deg = (combo & 2) ? TrajectoryPoint::Unavailable() : 271.5f;
    points.push_back(p);
  }
  return points;
}

TEST(ArchiveRoundTripTest, TrajectoryValuePreservesAvailabilityBits) {
  for (const TrajectoryPoint& p : SentinelComboPoints()) {
    // The timestamp rides in the archival key, the kinematics in the value.
    uint32_t mmsi = 0;
    TrajectoryPoint out;
    ASSERT_TRUE(
        DecodeTrajectoryKey(EncodeTrajectoryKey(42, p.t), &mmsi, &out.t));
    EXPECT_EQ(mmsi, 42u);
    ASSERT_TRUE(DecodeTrajectoryValue(EncodeTrajectoryValue(p), &out));
    EXPECT_EQ(out.t, p.t);
    EXPECT_EQ(std::bit_cast<uint32_t>(out.sog_mps),
              std::bit_cast<uint32_t>(p.sog_mps));
    EXPECT_EQ(std::bit_cast<uint32_t>(out.cog_deg),
              std::bit_cast<uint32_t>(p.cog_deg));
    EXPECT_EQ(out.HasSpeed(), p.HasSpeed());
    EXPECT_EQ(out.HasCourse(), p.HasCourse());
  }
}

TEST(ArchiveRoundTripTest, PositionBlockPreservesAvailabilityBits) {
  const std::vector<TrajectoryPoint> points = SentinelComboPoints();
  PackedBits data;
  EncodePositionBlock(points, &data);
  std::vector<TrajectoryPoint> out;
  ASSERT_TRUE(DecodePositionBlock(data, static_cast<uint32_t>(points.size()),
                                  42, points[0].t, &out)
                  .ok());
  ASSERT_EQ(out.size(), points.size());
  for (size_t i = 0; i < points.size(); ++i) {
    EXPECT_EQ(out[i].t, points[i].t);
    EXPECT_EQ(std::bit_cast<uint32_t>(out[i].sog_mps),
              std::bit_cast<uint32_t>(points[i].sog_mps));
    EXPECT_EQ(std::bit_cast<uint32_t>(out[i].cog_deg),
              std::bit_cast<uint32_t>(points[i].cog_deg));
  }
}

// --- Integrity scorer units --------------------------------------------------

TEST(IntegrityScorerTest, ImpossibleReportedTurnRateFlags) {
  IntegrityScorer scorer;
  std::vector<DetectedEvent> events;
  PositionReport pr =
      MakeReport(1, 1700000000000, GeoPoint(35.0, 18.0), 12.0, 90.0);
  pr.rate_of_turn = 126;  // ~708 deg/min: beyond any real vessel
  EXPECT_FALSE(scorer.Assess(pr, &events));
  EXPECT_EQ(scorer.stats().turn_rate_flags, 1u);
  ASSERT_EQ(events.size(), 1u);
  EXPECT_EQ(events[0].type, EventType::kKinematicIntegrity);

  // A physically sane reported ROT passes.
  events.clear();
  PositionReport ok =
      MakeReport(2, 1700000000000, GeoPoint(35.0, 18.0), 12.0, 90.0);
  ok.rate_of_turn = 20;  // ~17.9 deg/min
  EXPECT_TRUE(scorer.Assess(ok, &events));
  EXPECT_TRUE(events.empty());
}

TEST(IntegrityScorerTest, SpoofedMmsiConflictsAccumulateToEvent) {
  IntegrityScorer scorer;
  std::vector<DetectedEvent> events;
  const Timestamp t0 = 1700000000000;
  const GeoPoint here(35.0, 18.0);
  const GeoPoint there = Destination(here, 90.0, 80000.0);  // 80 km away
  // Two transmitters alternating under one MMSI: every hop implies an
  // impossible speed, so conflict evidence accumulates to an event.
  bool any_failed = false;
  for (int i = 0; i < 8; ++i) {
    const Timestamp t = t0 + static_cast<Timestamp>(i) * 10000;
    const GeoPoint& pos = (i % 2 == 0) ? here : there;
    any_failed |= !scorer.Assess(MakeReport(99, t, pos, 10.0, 90.0), &events);
  }
  EXPECT_TRUE(any_failed);
  EXPECT_GT(scorer.stats().spoof_flags, 0u);
  EXPECT_GE(CountEvents(events, EventType::kMmsiConflict), 1u);
  // Integrity verdicts feed the Beta-posterior source reliability.
  EXPECT_LT(scorer.SourceReliability(), 1.0);
}

TEST(IntegrityScorerTest, ReportedSpeedContradictingPositionsFlags) {
  IntegrityScorer scorer;
  std::vector<DetectedEvent> events;
  const Timestamp t0 = 1700000000000;
  const GeoPoint origin(35.0, 18.0);
  // The vessel crawls (positions ~1 m apart at 10 s spacing) while
  // reporting 40 knots — a persistent implied-vs-reported mismatch.
  for (int i = 0; i < 6; ++i) {
    scorer.Assess(MakeReport(5, t0 + static_cast<Timestamp>(i) * 10000,
                             Destination(origin, 0.0, 1.0 * i), 40.0, 0.0),
                  &events);
  }
  EXPECT_GT(scorer.stats().kinematic_flags, 0u);
  EXPECT_GE(CountEvents(events, EventType::kKinematicIntegrity), 1u);

  // Reports with *unavailable* SOG never enter the mismatch check.
  IntegrityScorer lenient;
  events.clear();
  for (int i = 0; i < 6; ++i) {
    EXPECT_TRUE(lenient.Assess(
        MakeReport(6, t0 + static_cast<Timestamp>(i) * 10000,
                   Destination(origin, 0.0, 1.0 * i),
                   AisSentinels::kSpeedNotAvailable, 0.0),
        &events));
  }
  EXPECT_EQ(lenient.stats().kinematic_flags, 0u);
  EXPECT_TRUE(events.empty());
}

// --- Behaviour-change detector units -----------------------------------------

TEST(BehaviorChangeTest, RegimeShiftFlagsAndQuarantineSuppresses) {
  AnomalyOptions opts;
  opts.window_points = 8;
  BehaviorChangeDetector detector(opts);
  std::vector<DetectedEvent> events;
  const Timestamp t0 = 1700000000000;
  const GeoPoint origin(35.0, 18.0);
  auto feed = [&](int i, float sog) {
    ReconstructedPoint rp;
    rp.mmsi = 11;
    rp.point.t = t0 + static_cast<Timestamp>(i) * 10000;
    rp.point.position = Destination(origin, 90.0, 50.0 * i);
    rp.point.sog_mps = sog;
    rp.point.cog_deg = 90.0f;
    rp.turn_rate_deg_min = 0.0f;
    rp.starts_segment = (i == 0);
    detector.Ingest(rp, &events);
  };
  // Six windows of a steady 5 m/s regime build the divergence history…
  int i = 0;
  for (; i < 6 * opts.window_points; ++i) feed(i, 5.0f);
  EXPECT_TRUE(events.empty()) << "steady state must not alert";
  // …then the vessel abruptly triples its speed.
  for (int k = 0; k < 2 * opts.window_points; ++k, ++i) feed(i, 15.0f);
  EXPECT_GE(CountEvents(events, EventType::kBehaviorChange), 1u);
  EXPECT_GT(detector.stats().changes_flagged, 0u);

  // Poison drops the open window and swallows the quarantine allowance.
  const uint64_t before = detector.stats().points_quarantined;
  detector.Poison(11);
  for (int k = 0; k < opts.quarantine_points; ++k, ++i) feed(i, 15.0f);
  EXPECT_EQ(detector.stats().points_quarantined,
            before + static_cast<uint64_t>(opts.quarantine_points));
}

TEST(BehaviorChangeTest, StatsMergeSums) {
  AnomalyStageStats a, b;
  a.points_in = 10;
  a.windows_closed = 2;
  a.integrity.reports_checked = 5;
  b.points_in = 20;
  b.changes_flagged = 1;
  b.events_out = 1;
  b.integrity.reports_checked = 7;
  b.integrity.spoof_flags = 3;
  a.Merge(b);
  EXPECT_EQ(a.points_in, 30u);
  EXPECT_EQ(a.windows_closed, 2u);
  EXPECT_EQ(a.changes_flagged, 1u);
  EXPECT_EQ(a.events_out, 1u);
  EXPECT_EQ(a.integrity.reports_checked, 12u);
  EXPECT_EQ(a.integrity.spoof_flags, 3u);
}

// --- Scenario packs ----------------------------------------------------------

TEST(ScenarioPackTest, CleanWorldRaisesNoFlags) {
  const ScenarioOutput scenario =
      GenerateScenario(SharedWorld(), MakeCleanPack(7001));
  PipelineMetrics metrics;
  const auto events = RunSequential(scenario, StageConfig(), &metrics);

  EXPECT_EQ(CountEvents(events, EventType::kKinematicIntegrity), 0u);
  EXPECT_EQ(CountEvents(events, EventType::kMmsiConflict), 0u);
  EXPECT_EQ(CountEvents(events, EventType::kDarkPeriod), 0u);
  EXPECT_GT(metrics.anomaly.integrity.reports_checked, 0u);
  EXPECT_EQ(metrics.anomaly.integrity.kinematic_flags, 0u);
  EXPECT_EQ(metrics.anomaly.integrity.turn_rate_flags, 0u);
  EXPECT_EQ(metrics.anomaly.integrity.time_flags, 0u);
  EXPECT_EQ(metrics.anomaly.integrity.spoof_flags, 0u);
  EXPECT_GT(metrics.anomaly.points_in, 0u);
  EXPECT_EQ(metrics.anomaly.points_quarantined, 0u);
}

TEST(ScenarioPackTest, SpoofedMmsiPackTriggersConflicts) {
  const ScenarioOutput scenario =
      GenerateScenario(SharedWorld(), MakeSpoofedMmsiPack(7002));
  PipelineMetrics metrics;
  const auto events = RunSequential(scenario, StageConfig(), &metrics);
  EXPECT_GE(CountEvents(events, EventType::kMmsiConflict), 1u);
  EXPECT_GT(metrics.anomaly.integrity.spoof_flags, 0u);
  EXPECT_GT(metrics.anomaly.points_quarantined, 0u);
}

TEST(ScenarioPackTest, DarkVoyagePackTriggersDarkPeriods) {
  const ScenarioOutput scenario =
      GenerateScenario(SharedWorld(), MakeDarkVoyagePack(7003));
  const auto events = RunSequential(scenario, StageConfig());
  EXPECT_GE(CountEvents(events, EventType::kDarkPeriod), 1u);
}

TEST(ScenarioPackTest, IdentitySwapPackRaisesIntegrityEvidence) {
  const ScenarioOutput scenario =
      GenerateScenario(SharedWorld(), MakeIdentitySwapPack(7004));
  // The pack seeds exactly one swap ground-truth event.
  size_t swaps = 0;
  for (const TrueEvent& ev : scenario.events) {
    if (ev.type == TrueEventType::kIdentitySwap) ++swaps;
  }
  ASSERT_EQ(swaps, 1u);
  PipelineMetrics metrics;
  RunSequential(scenario, StageConfig(), &metrics);
  // Each identity's stream jumps hulls at the swap instant: impossible
  // implied speed, recorded as MMSI-conflict evidence.
  EXPECT_GT(metrics.anomaly.integrity.spoof_flags, 0u);
  EXPECT_GT(metrics.anomaly.points_quarantined, 0u);
}

TEST(ScenarioPackTest, SentinelStormProducesNoKinematicDetections) {
  // Every report in the storm carries SOG/COG sentinels. Before the fix,
  // the decoded 0.0 speeds made every vessel a permanent loiterer.
  const ScenarioOutput scenario =
      GenerateScenario(SharedWorld(), MakeSentinelStormPack(7005));
  MaritimePipeline pipeline(StageConfig(), &SharedWorld().zones(), nullptr,
                            nullptr, nullptr);
  const auto events = pipeline.Run(scenario.nmea);

  EXPECT_EQ(CountEvents(events, EventType::kStop), 0u);
  EXPECT_EQ(CountEvents(events, EventType::kMove), 0u);
  EXPECT_EQ(CountEvents(events, EventType::kLoitering), 0u);
  EXPECT_EQ(CountEvents(events, EventType::kSpeedViolation), 0u);
  EXPECT_EQ(CountEvents(events, EventType::kCollisionRisk), 0u);
  EXPECT_EQ(CountEvents(events, EventType::kRendezvous), 0u);

  for (const CriticalPoint& cp : pipeline.synopsis_log()) {
    EXPECT_NE(cp.type, CriticalPointType::kStop);
    EXPECT_NE(cp.type, CriticalPointType::kRestart);
    EXPECT_NE(cp.type, CriticalPointType::kTurn);
    EXPECT_NE(cp.type, CriticalPointType::kSpeedChange);
  }
}

// --- Determinism of the stage under sharding ---------------------------------

TEST(AnomalyDeterminismTest, OneShardIsByteIdenticalToSequential) {
  for (uint64_t seed : {7101, 7102}) {
    const ScenarioOutput scenario =
        GenerateScenario(SharedWorld(), MakeSpoofedMmsiPack(seed));
    const PipelineConfig pc = StageConfig();
    PipelineMetrics seq_metrics;
    const auto seq_events = RunSequential(scenario, pc, &seq_metrics);
    ASSERT_GT(seq_events.size(), 0u);

    ShardedPipeline::Options opts;
    opts.num_shards = 1;
    ShardedPipeline sharded(pc, opts, &SharedWorld().zones(), nullptr,
                            nullptr, nullptr);
    const auto shard_events = sharded.Run(scenario.nmea);
    ExpectSameEvents(seq_events, shard_events, /*compare_order=*/true);

    const AnomalyStageStats& ms = seq_metrics.anomaly;
    const AnomalyStageStats& mp = sharded.metrics().anomaly;
    EXPECT_EQ(ms.integrity.reports_checked, mp.integrity.reports_checked);
    EXPECT_EQ(ms.integrity.spoof_flags, mp.integrity.spoof_flags);
    EXPECT_EQ(ms.integrity.events_out, mp.integrity.events_out);
    EXPECT_EQ(ms.points_in, mp.points_in);
    EXPECT_EQ(ms.points_quarantined, mp.points_quarantined);
    EXPECT_EQ(ms.windows_closed, mp.windows_closed);
    EXPECT_EQ(ms.changes_flagged, mp.changes_flagged);
    EXPECT_EQ(ms.events_out, mp.events_out);
  }
}

TEST(AnomalyDeterminismTest, ManyShardsMatchSequentialMultiset) {
  // The adversarial packs are exactly where the stage emits: the
  // equivalence claim must hold with detections firing, across attack
  // classes and shard counts.
  const ScenarioConfig packs[] = {MakeSpoofedMmsiPack(7111),
                                  MakeIdentitySwapPack(7112),
                                  MakeSentinelStormPack(7113)};
  const PipelineConfig pc = StageConfig();
  for (const ScenarioConfig& pack : packs) {
    const ScenarioOutput scenario = GenerateScenario(SharedWorld(), pack);
    PipelineMetrics seq_metrics;
    const auto seq_events = RunSequential(scenario, pc, &seq_metrics);

    for (size_t num_shards : {2, 4}) {
      ShardedPipeline::Options opts;
      opts.num_shards = num_shards;
      ShardedPipeline sharded(pc, opts, &SharedWorld().zones(), nullptr,
                              nullptr, nullptr);
      const auto shard_events = sharded.Run(scenario.nmea);
      ExpectSameEvents(seq_events, shard_events, /*compare_order=*/false);

      const AnomalyStageStats& ms = seq_metrics.anomaly;
      const AnomalyStageStats& mp = sharded.metrics().anomaly;
      EXPECT_EQ(ms.integrity.reports_checked, mp.integrity.reports_checked);
      EXPECT_EQ(ms.integrity.kinematic_flags, mp.integrity.kinematic_flags);
      EXPECT_EQ(ms.integrity.spoof_flags, mp.integrity.spoof_flags);
      EXPECT_EQ(ms.points_in, mp.points_in);
      EXPECT_EQ(ms.points_quarantined, mp.points_quarantined);
      EXPECT_EQ(ms.windows_closed, mp.windows_closed);
      EXPECT_EQ(ms.changes_flagged, mp.changes_flagged);
    }
  }
}

TEST(AnomalyDeterminismTest, StageOffLeavesBaselineStreamUntouched) {
  // enable_anomaly=false must reproduce the pre-stage event stream and
  // leave every stage counter at zero — the knob is the compatibility
  // contract for existing baselines.
  const ScenarioOutput scenario =
      GenerateScenario(SharedWorld(), MakeSpoofedMmsiPack(7121));
  PipelineConfig off;
  off.window_lines = 512;
  PipelineMetrics metrics;
  const auto events = RunSequential(scenario, off, &metrics);
  EXPECT_EQ(CountEvents(events, EventType::kMmsiConflict), 0u);
  EXPECT_EQ(CountEvents(events, EventType::kKinematicIntegrity), 0u);
  EXPECT_EQ(CountEvents(events, EventType::kBehaviorChange), 0u);
  EXPECT_EQ(metrics.anomaly.integrity.reports_checked, 0u);
  EXPECT_EQ(metrics.anomaly.points_in, 0u);
}

}  // namespace
}  // namespace marlin
