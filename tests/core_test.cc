// Unit tests for marlin_core: event-time recovery, reconstruction, synopses,
// event recognition, patterns-of-life, forecasting, enrichment.

#include <gtest/gtest.h>

#include <cmath>

#include "common/rng.h"
#include "common/units.h"
#include "core/enrichment.h"
#include "core/events.h"
#include "core/forecast.h"
#include "core/patterns.h"
#include "core/reconstruction.h"
#include "core/synopses.h"
#include "geo/geodesy.h"

namespace marlin {
namespace {

// --- ResolveEventTime -------------------------------------------------------

TEST(ResolveEventTimeTest, SecondsFieldRecovered) {
  // Received at 12:00:05.300; transmitted second = 3 → event 12:00:03.000.
  const Timestamp rx = ParseTimestamp("2017-03-21T12:00:05.300Z");
  EXPECT_EQ(ResolveEventTime(3, rx), ParseTimestamp("2017-03-21T12:00:03.000Z"));
}

TEST(ResolveEventTimeTest, PreviousMinuteWhenSecondsWrap) {
  // Received at 12:01:02; second field 58 → 12:00:58 of the previous minute.
  const Timestamp rx = ParseTimestamp("2017-03-21T12:01:02.000Z");
  EXPECT_EQ(ResolveEventTime(58, rx),
            ParseTimestamp("2017-03-21T12:00:58.000Z"));
}

TEST(ResolveEventTimeTest, SatelliteDelayRecovered) {
  // Received 7 minutes late; second field 30 → the most recent :30 within
  // the allowed age is just before receive time.
  const Timestamp tx = ParseTimestamp("2017-03-21T12:00:30.000Z");
  const Timestamp rx = tx + Minutes(7);
  const Timestamp resolved = ResolveEventTime(30, rx, Minutes(10));
  // Any candidate with :30 seconds at most 10 min old is acceptable; the
  // closest to rx is 12:07:30.
  EXPECT_EQ(resolved % kMillisPerMinute, 30 * kMillisPerSecond);
  EXPECT_LE(resolved, rx);
}

TEST(ResolveEventTimeTest, UnavailableSecondsFallsBack) {
  EXPECT_EQ(ResolveEventTime(60, 1234567), 1234567);
  EXPECT_EQ(ResolveEventTime(-1, 1234567), 1234567);
}

// --- TrajectoryReconstructor ----------------------------------------------

PositionReport MakeReport(Mmsi mmsi, Timestamp event_time,
                          const GeoPoint& pos, double sog_kn = 10.0,
                          double cog = 90.0, DurationMs latency = 1000) {
  PositionReport pr;
  pr.message_type = 1;
  pr.mmsi = mmsi;
  pr.position = pos;
  pr.sog_knots = sog_kn;
  pr.cog_deg = cog;
  pr.utc_second = static_cast<int>((event_time / 1000) % 60);
  pr.received_at = event_time + latency;
  return pr;
}

TEST(ReconstructionTest, CleanStreamPassesThrough) {
  TrajectoryReconstructor recon;
  std::vector<ReconstructedPoint> points;
  std::vector<RejectedReport> rejected;
  const Timestamp t0 = 1700000000000;
  for (int i = 0; i < 20; ++i) {
    const GeoPoint pos = Destination(GeoPoint(40, 5), 90.0, 50.0 * i);
    recon.Ingest(MakeReport(1, t0 + i * 10000, pos), &points, &rejected);
  }
  recon.Flush(&points, &rejected);
  EXPECT_EQ(points.size(), 20u);
  EXPECT_TRUE(rejected.empty());
  EXPECT_TRUE(points.front().starts_segment);
  for (size_t i = 1; i < points.size(); ++i) {
    EXPECT_FALSE(points[i].starts_segment);
    EXPECT_GT(points[i].point.t, points[i - 1].point.t);
  }
}

TEST(ReconstructionTest, DuplicatesDropped) {
  TrajectoryReconstructor recon;
  std::vector<ReconstructedPoint> points;
  std::vector<RejectedReport> rejected;
  const Timestamp t0 = 1700000000000;
  const auto report = MakeReport(1, t0, GeoPoint(40, 5));
  recon.Ingest(report, &points, &rejected);
  recon.Ingest(report, &points, &rejected);  // exact duplicate
  recon.Ingest(MakeReport(1, t0 + 10000, GeoPoint(40, 5.001)), &points,
               &rejected);
  recon.Flush(&points, &rejected);
  EXPECT_EQ(points.size(), 2u);
  ASSERT_EQ(rejected.size(), 1u);
  EXPECT_EQ(rejected[0].reason, RejectedReport::Reason::kDuplicate);
  EXPECT_EQ(recon.stats().duplicates, 1u);
}

TEST(ReconstructionTest, OutOfOrderWithinDelayRepaired) {
  TrajectoryReconstructor::Options opts;
  opts.reorder_delay_ms = 60000;
  TrajectoryReconstructor recon(opts);
  std::vector<ReconstructedPoint> points;
  std::vector<RejectedReport> rejected;
  const Timestamp t0 = 1700000000000;
  // Events arrive interleaved: 0, 20 s, 10 s (late satellite), 30 s.
  recon.Ingest(MakeReport(1, t0, GeoPoint(40, 5.000)), &points, &rejected);
  recon.Ingest(MakeReport(1, t0 + 20000, GeoPoint(40, 5.002)), &points,
               &rejected);
  recon.Ingest(MakeReport(1, t0 + 10000, GeoPoint(40, 5.001), 10.0, 90.0,
                          25000),
               &points, &rejected);
  recon.Ingest(MakeReport(1, t0 + 30000, GeoPoint(40, 5.003)), &points,
               &rejected);
  recon.Flush(&points, &rejected);
  ASSERT_EQ(points.size(), 4u);
  for (size_t i = 1; i < points.size(); ++i) {
    EXPECT_LT(points[i - 1].point.t, points[i].point.t);
  }
  EXPECT_TRUE(rejected.empty());
}

TEST(ReconstructionTest, ImpossibleJumpRejected) {
  TrajectoryReconstructor recon;
  std::vector<ReconstructedPoint> points;
  std::vector<RejectedReport> rejected;
  const Timestamp t0 = 1700000000000;
  recon.Ingest(MakeReport(1, t0, GeoPoint(40, 5)), &points, &rejected);
  // 60 km in 10 s = 6 km/s — far beyond any vessel.
  recon.Ingest(MakeReport(1, t0 + 10000,
                          Destination(GeoPoint(40, 5), 45.0, 60000.0)),
               &points, &rejected);
  recon.Ingest(MakeReport(1, t0 + 20000, GeoPoint(40, 5.002)), &points,
               &rejected);
  recon.Flush(&points, &rejected);
  EXPECT_EQ(points.size(), 2u);
  ASSERT_EQ(rejected.size(), 1u);
  EXPECT_EQ(rejected[0].reason, RejectedReport::Reason::kImpossibleJump);
  EXPECT_GT(rejected[0].implied_speed_mps, 1000.0);
}

TEST(ReconstructionTest, GapSegmentation) {
  TrajectoryReconstructor::Options opts;
  opts.gap_threshold_ms = Minutes(10);
  TrajectoryReconstructor recon(opts);
  std::vector<ReconstructedPoint> points;
  const Timestamp t0 = 1700000000000;
  recon.Ingest(MakeReport(1, t0, GeoPoint(40, 5.0)), &points, nullptr);
  recon.Ingest(MakeReport(1, t0 + 10000, GeoPoint(40, 5.001)), &points,
               nullptr);
  // 40-minute silence, then reports resume (vessel moved meanwhile).
  recon.Ingest(MakeReport(1, t0 + Minutes(40), GeoPoint(40, 5.05)), &points,
               nullptr);
  recon.Flush(&points, nullptr);
  ASSERT_EQ(points.size(), 3u);
  EXPECT_TRUE(points[2].starts_segment);
  EXPECT_NEAR(static_cast<double>(points[2].gap_before_ms),
              static_cast<double>(Minutes(40) - 10000), 1000.0);
  EXPECT_EQ(recon.stats().segments_started, 2u);
}

TEST(ReconstructionTest, VesselsIndependent) {
  TrajectoryReconstructor recon;
  std::vector<ReconstructedPoint> points;
  const Timestamp t0 = 1700000000000;
  recon.Ingest(MakeReport(1, t0, GeoPoint(40, 5)), &points, nullptr);
  // Vessel 2 is far away — not an outlier, it's a different ship.
  recon.Ingest(MakeReport(2, t0 + 1000, GeoPoint(43, 8)), &points, nullptr);
  recon.Flush(&points, nullptr);
  EXPECT_EQ(points.size(), 2u);
  EXPECT_EQ(recon.stats().outliers, 0u);
}

// --- SynopsisEngine ---------------------------------------------------------

Trajectory StraightTrajectory(Mmsi mmsi, int n, double speed_mps = 6.0) {
  Trajectory traj;
  traj.mmsi = mmsi;
  const GeoPoint start(40.0, 5.0);
  for (int i = 0; i < n; ++i) {
    TrajectoryPoint p;
    p.t = 1700000000000 + static_cast<Timestamp>(i) * 10000;
    p.position = Destination(start, 90.0, speed_mps * 10.0 * i);
    p.sog_mps = static_cast<float>(speed_mps);
    p.cog_deg = 90.0f;
    traj.points.push_back(p);
  }
  return traj;
}

TEST(SynopsisTest, StraightLineCompressesHard) {
  SynopsisEngine engine;
  const Trajectory traj = StraightTrajectory(1, 500);
  const auto synopsis = engine.CompressTrajectory(traj);
  // Constant course & speed: only segment start/end + heartbeats survive.
  EXPECT_LT(synopsis.size(), 12u);
  EXPECT_GT(engine.stats().CompressionRatio(), 0.97);
  EXPECT_EQ(synopsis.front().type, CriticalPointType::kSegmentStart);
}

TEST(SynopsisTest, ReconstructionWithinErrorBound) {
  SynopsisEngine::Options opts;
  opts.deviation_threshold_m = 60.0;
  SynopsisEngine engine(opts);
  // A winding trajectory: course changes slowly.
  Trajectory traj;
  traj.mmsi = 1;
  GeoPoint pos(40.0, 5.0);
  double course = 90.0;
  Rng rng(251);
  for (int i = 0; i < 600; ++i) {
    TrajectoryPoint p;
    p.t = 1700000000000 + static_cast<Timestamp>(i) * 10000;
    p.position = pos;
    p.sog_mps = 6.0f;
    p.cog_deg = static_cast<float>(course);
    traj.points.push_back(p);
    course += rng.Uniform(-1.5, 1.5);
    pos = Destination(pos, course, 60.0);
  }
  const auto synopsis = engine.CompressTrajectory(traj);
  const Trajectory rebuilt = ReconstructFromSynopsis(1, synopsis);
  const TrajectoryError err = ComputeSedError(traj, rebuilt);
  EXPECT_LT(synopsis.size(), traj.points.size() / 2);
  // Mean error well inside the bound; max can exceed it slightly because
  // emission is causal (no look-ahead).
  EXPECT_LT(err.mean_m, 60.0);
  EXPECT_LT(err.max_m, 4 * 60.0);
}

TEST(SynopsisTest, TurnsEmitCriticalPoints) {
  SynopsisEngine engine;
  Trajectory traj;
  traj.mmsi = 1;
  GeoPoint pos(40.0, 5.0);
  for (int i = 0; i < 100; ++i) {
    TrajectoryPoint p;
    p.t = 1700000000000 + static_cast<Timestamp>(i) * 10000;
    p.position = pos;
    p.sog_mps = 6.0f;
    p.cog_deg = i < 50 ? 90.0f : 180.0f;  // sharp turn at i=50
    traj.points.push_back(p);
    pos = Destination(pos, p.cog_deg, 60.0);
  }
  const auto synopsis = engine.CompressTrajectory(traj);
  bool saw_turn = false;
  for (const auto& cp : synopsis) {
    if (cp.type == CriticalPointType::kTurn) saw_turn = true;
  }
  EXPECT_TRUE(saw_turn);
}

TEST(SynopsisTest, StopsAndRestartsEmitted) {
  SynopsisEngine engine;
  Trajectory traj;
  traj.mmsi = 1;
  const GeoPoint anchor(40.0, 5.0);
  for (int i = 0; i < 90; ++i) {
    TrajectoryPoint p;
    p.t = 1700000000000 + static_cast<Timestamp>(i) * 10000;
    const bool stopped = i >= 30 && i < 60;
    p.sog_mps = stopped ? 0.1f : 6.0f;
    p.cog_deg = 90.0f;
    p.position = stopped
                     ? anchor
                     : Destination(anchor, 90.0, 60.0 * (i < 30 ? i - 30 : i - 60));
    traj.points.push_back(p);
  }
  const auto synopsis = engine.CompressTrajectory(traj);
  int stops = 0, restarts = 0;
  for (const auto& cp : synopsis) {
    if (cp.type == CriticalPointType::kStop) ++stops;
    if (cp.type == CriticalPointType::kRestart) ++restarts;
  }
  EXPECT_EQ(stops, 1);
  EXPECT_EQ(restarts, 1);
}

TEST(SynopsisTest, GapBoundariesAlwaysKept) {
  SynopsisEngine engine;
  std::vector<CriticalPoint> out;
  ReconstructedPoint rp;
  rp.mmsi = 1;
  rp.point = StraightTrajectory(1, 3).points[0];
  rp.starts_segment = true;
  engine.Ingest(rp, &out);
  rp.point = StraightTrajectory(1, 3).points[1];
  rp.starts_segment = false;
  engine.Ingest(rp, &out);
  // New segment after a gap.
  rp.point = StraightTrajectory(1, 3).points[2];
  rp.point.t += Hours(1);
  rp.starts_segment = true;
  rp.gap_before_ms = Hours(1);
  engine.Ingest(rp, &out);
  int seg_starts = 0, seg_ends = 0;
  for (const auto& cp : out) {
    if (cp.type == CriticalPointType::kSegmentStart) ++seg_starts;
    if (cp.type == CriticalPointType::kSegmentEnd) ++seg_ends;
  }
  EXPECT_EQ(seg_starts, 2);
  EXPECT_EQ(seg_ends, 1);
}

// --- EventEngine -----------------------------------------------------------

class EventEngineTest : public ::testing::Test {
 protected:
  EventEngineTest() {
    GeoZone port;
    port.name = "Port";
    port.type = ZoneType::kPort;
    port.polygon = Polygon::Circle(GeoPoint(41.35, 2.15), 3000.0);
    zones_.Add(std::move(port));
    GeoZone reserve;
    reserve.name = "Reserve";
    reserve.type = ZoneType::kProtectedArea;
    reserve.fishing_prohibited = true;
    reserve.polygon = Polygon::Circle(GeoPoint(37.8, 1.8), 15000.0);
    reserve_id_ = zones_.Add(std::move(reserve));
  }

  ReconstructedPoint Point(Mmsi mmsi, Timestamp t, const GeoPoint& pos,
                           double sog_mps, double cog = 90.0,
                           DurationMs gap = 0) {
    ReconstructedPoint rp;
    rp.mmsi = mmsi;
    rp.point.t = t;
    rp.point.position = pos;
    rp.point.sog_mps = static_cast<float>(sog_mps);
    rp.point.cog_deg = static_cast<float>(cog);
    rp.gap_before_ms = gap;
    rp.starts_segment = gap > 0;
    return rp;
  }

  ZoneDatabase zones_;
  uint32_t reserve_id_ = 0;
};

TEST_F(EventEngineTest, ZoneEntryExit) {
  EventEngine engine(&zones_);
  std::vector<DetectedEvent> events;
  const Timestamp t0 = 1700000000000;
  const GeoPoint inside(41.35, 2.15);
  const GeoPoint outside = Destination(inside, 90.0, 10000.0);
  engine.Ingest(Point(1, t0, outside, 5.0), &events);
  engine.Ingest(Point(1, t0 + 60000, inside, 5.0), &events);
  engine.Ingest(Point(1, t0 + 120000, outside, 5.0), &events);
  int entries = 0, exits = 0;
  for (const auto& ev : events) {
    if (ev.type == EventType::kZoneEntry) ++entries;
    if (ev.type == EventType::kZoneExit) ++exits;
  }
  EXPECT_EQ(entries, 1);
  EXPECT_EQ(exits, 1);
}

TEST_F(EventEngineTest, DarkPeriodFromGap) {
  EventEngine engine(&zones_);
  std::vector<DetectedEvent> events;
  const Timestamp t0 = 1700000000000;
  engine.Ingest(Point(1, t0, GeoPoint(40, 5), 5.0), &events);
  engine.Ingest(
      Point(1, t0 + Minutes(45), GeoPoint(40.1, 5.1), 5.0, 90.0, Minutes(45)),
      &events);
  ASSERT_EQ(events.size(), 1u);
  EXPECT_EQ(events[0].type, EventType::kDarkPeriod);
  EXPECT_EQ(events[0].start, t0);
  EXPECT_EQ(events[0].end, t0 + Minutes(45));
}

TEST_F(EventEngineTest, RendezvousDetected) {
  EventEngine::Options opts;
  opts.rendezvous_min_duration = Minutes(10);
  EventEngine engine(&zones_, opts);
  std::vector<DetectedEvent> events;
  const Timestamp t0 = 1700000000000;
  const GeoPoint meet(40.0, 5.0);  // open sea
  // Two vessels nearly stationary 200 m apart for 20 minutes.
  for (int i = 0; i <= 20; ++i) {
    const Timestamp t = t0 + Minutes(i);
    engine.Ingest(Point(1, t, meet, 0.3), &events);
    engine.Ingest(Point(2, t + 1000, Destination(meet, 90.0, 200.0), 0.3),
                  &events);
  }
  int rendezvous = 0;
  for (const auto& ev : events) {
    if (ev.type == EventType::kRendezvous) {
      ++rendezvous;
      EXPECT_EQ(ev.vessel_a, 1u);
      EXPECT_EQ(ev.vessel_b, 2u);
      EXPECT_GE(ev.end - ev.start, opts.rendezvous_min_duration);
    }
  }
  EXPECT_EQ(rendezvous, 1);
}

TEST_F(EventEngineTest, NoRendezvousInsidePort) {
  EventEngine::Options opts;
  opts.rendezvous_min_duration = Minutes(10);
  EventEngine engine(&zones_, opts);
  std::vector<DetectedEvent> events;
  const Timestamp t0 = 1700000000000;
  const GeoPoint berth(41.35, 2.15);  // inside the port zone
  for (int i = 0; i <= 30; ++i) {
    const Timestamp t = t0 + Minutes(i);
    engine.Ingest(Point(1, t, berth, 0.1), &events);
    engine.Ingest(Point(2, t + 1000, Destination(berth, 0.0, 100.0), 0.1),
                  &events);
  }
  engine.Flush(&events);
  for (const auto& ev : events) {
    EXPECT_NE(ev.type, EventType::kRendezvous);
  }
}

TEST_F(EventEngineTest, NoRendezvousForPassingShips) {
  EventEngine engine(&zones_);
  std::vector<DetectedEvent> events;
  const Timestamp t0 = 1700000000000;
  // Two vessels pass within 300 m at 12 knots — close but fast.
  for (int i = 0; i <= 30; ++i) {
    const Timestamp t = t0 + i * 10000;
    engine.Ingest(Point(1, t, Destination(GeoPoint(40, 5), 90.0, 62.0 * i),
                        6.2, 90.0),
                  &events);
    engine.Ingest(
        Point(2, t + 1000,
              Destination(Destination(GeoPoint(40, 5), 0.0, 300.0), 270.0,
                          62.0 * (30 - i)),
              6.2, 270.0),
        &events);
  }
  engine.Flush(&events);
  for (const auto& ev : events) {
    EXPECT_NE(ev.type, EventType::kRendezvous);
  }
}

TEST_F(EventEngineTest, LoiteringDetected) {
  EventEngine::Options opts;
  opts.loiter_min_duration = Minutes(30);
  EventEngine engine(&zones_, opts);
  std::vector<DetectedEvent> events;
  const Timestamp t0 = 1700000000000;
  const GeoPoint spot(39.0, 3.0);
  Rng rng(257);
  for (int i = 0; i <= 50; ++i) {
    const GeoPoint pos =
        Destination(spot, rng.Uniform(0, 360), rng.Uniform(0, 800));
    engine.Ingest(Point(7, t0 + Minutes(i), pos, 0.5), &events);
  }
  int loiters = 0;
  for (const auto& ev : events) {
    if (ev.type == EventType::kLoitering) {
      ++loiters;
      EXPECT_EQ(ev.vessel_a, 7u);
    }
  }
  EXPECT_EQ(loiters, 1);  // re-alert suppression caps it
}

TEST_F(EventEngineTest, TransitingVesselNeverLoiters) {
  EventEngine engine(&zones_);
  std::vector<DetectedEvent> events;
  const Timestamp t0 = 1700000000000;
  for (int i = 0; i <= 120; ++i) {
    engine.Ingest(Point(8, t0 + Minutes(i),
                        Destination(GeoPoint(40, 5), 90.0, 360.0 * i), 6.0),
                  &events);
  }
  for (const auto& ev : events) {
    EXPECT_NE(ev.type, EventType::kLoitering);
  }
}

TEST_F(EventEngineTest, SpoofEventsFromRejections) {
  EventEngine::Options opts;
  opts.identity_conflict_count = 3;
  EventEngine engine(&zones_, opts);
  std::vector<DetectedEvent> events;
  const Timestamp t0 = 1700000000000;
  RejectedReport rej;
  rej.reason = RejectedReport::Reason::kImpossibleJump;
  rej.mmsi = 99;
  rej.reported = GeoPoint(40, 5);
  rej.implied_speed_mps = 500;
  // Single isolated jump: teleport spoof.
  rej.t = t0;
  engine.IngestRejection(rej, &events);
  ASSERT_EQ(events.size(), 1u);
  EXPECT_EQ(events[0].type, EventType::kTeleportSpoof);
  // A burst of conflicts upgrades to identity spoofing.
  rej.t = t0 + Minutes(1);
  engine.IngestRejection(rej, &events);
  rej.t = t0 + Minutes(2);
  engine.IngestRejection(rej, &events);
  bool identity = false;
  for (const auto& ev : events) {
    if (ev.type == EventType::kIdentitySpoof) identity = true;
  }
  EXPECT_TRUE(identity);
}

TEST_F(EventEngineTest, CollisionRiskOnConvergingCourses) {
  EventEngine engine(&zones_);
  std::vector<DetectedEvent> events;
  const Timestamp t0 = 1700000000000;
  const GeoPoint base(40.0, 5.0);
  // Head-on: A eastbound, B westbound, 8 km apart closing at 12 m/s.
  for (int i = 0; i <= 10; ++i) {
    const Timestamp t = t0 + i * 30000;
    engine.Ingest(Point(1, t, Destination(base, 90.0, 6.0 * 30 * i), 6.0, 90.0),
                  &events);
    engine.Ingest(Point(2, t + 1000,
                        Destination(base, 90.0, 8000.0 - 6.0 * 30 * i), 6.0,
                        270.0),
                  &events);
  }
  int risks = 0;
  for (const auto& ev : events) {
    if (ev.type == EventType::kCollisionRisk) ++risks;
  }
  EXPECT_GE(risks, 1);
}

TEST_F(EventEngineTest, NoCollisionRiskWhenDiverging) {
  EventEngine engine(&zones_);
  std::vector<DetectedEvent> events;
  const Timestamp t0 = 1700000000000;
  const GeoPoint base(40.0, 5.0);
  for (int i = 0; i <= 10; ++i) {
    const Timestamp t = t0 + i * 30000;
    engine.Ingest(Point(1, t, Destination(base, 270.0, 6.0 * 30 * i), 6.0,
                        270.0),
                  &events);
    engine.Ingest(Point(2, t + 1000,
                        Destination(Destination(base, 90.0, 2000.0), 90.0,
                                    6.0 * 30 * i),
                        6.0, 90.0),
                  &events);
  }
  for (const auto& ev : events) {
    EXPECT_NE(ev.type, EventType::kCollisionRisk);
  }
}

TEST_F(EventEngineTest, IllegalFishingNeedsCategoryAndZoneAndPattern) {
  EventEngine::Options opts;
  opts.fishing_min_duration = Minutes(20);
  EventEngine engine(&zones_, opts);
  engine.SetVesselInfo(30, 30);  // fishing vessel
  engine.SetVesselInfo(70, 70);  // cargo vessel
  std::vector<DetectedEvent> events;
  const Timestamp t0 = 1700000000000;
  const GeoPoint reserve(37.8, 1.8);
  // Both vessels trawl-speed inside the reserve for 40 minutes.
  for (int i = 0; i <= 40; ++i) {
    const Timestamp t = t0 + Minutes(i);
    const GeoPoint pos = Destination(reserve, 90.0, 30.0 * i);
    engine.Ingest(Point(30, t, pos, 2.0), &events);
    engine.Ingest(Point(70, t + 1000, Destination(pos, 0.0, 2000.0), 2.0),
                  &events);
  }
  int illegal = 0;
  for (const auto& ev : events) {
    if (ev.type == EventType::kIllegalFishing) {
      ++illegal;
      EXPECT_EQ(ev.vessel_a, 30u);  // only the fishing vessel
      EXPECT_EQ(ev.zone_id, reserve_id_);
    }
  }
  EXPECT_EQ(illegal, 1);
}

TEST_F(EventEngineTest, FastTransitThroughReserveNotFishing) {
  EventEngine engine(&zones_);
  engine.SetVesselInfo(30, 30);
  std::vector<DetectedEvent> events;
  const Timestamp t0 = 1700000000000;
  const GeoPoint reserve(37.8, 1.8);
  for (int i = 0; i <= 40; ++i) {
    engine.Ingest(Point(30, t0 + Minutes(i),
                        Destination(reserve, 90.0, 300.0 * i), 6.0),
                  &events);
  }
  for (const auto& ev : events) {
    EXPECT_NE(ev.type, EventType::kIllegalFishing);
  }
}

// --- PatternsOfLife / AnomalyDetector --------------------------------------

TEST(PatternsTest, TrainedLaneScoresLow) {
  PatternsOfLife model;
  // Train on heavy eastbound traffic along a lane.
  Rng rng(263);
  for (int v = 0; v < 50; ++v) {
    Trajectory traj;
    traj.mmsi = v;
    for (int i = 0; i < 100; ++i) {
      TrajectoryPoint p;
      p.t = i;
      p.position = GeoPoint(40.0 + rng.Uniform(-0.02, 0.02), 5.0 + 0.01 * i);
      p.sog_mps = static_cast<float>(6.0 + rng.Uniform(-0.5, 0.5));
      p.cog_deg = 90.0f;
      traj.points.push_back(p);
    }
    model.Train(traj);
  }
  model.Finalize();
  // On-lane, on-course, normal speed: low score.
  TrajectoryPoint normal;
  normal.position = GeoPoint(40.0, 5.5);
  normal.sog_mps = 6.0f;
  normal.cog_deg = 90.0f;
  const double normal_score = model.Score(normal);
  // Off-lane open water: high score.
  TrajectoryPoint off;
  off.position = GeoPoint(42.5, 5.5);
  off.sog_mps = 6.0f;
  off.cog_deg = 90.0f;
  EXPECT_EQ(model.Score(off), 1.0);
  EXPECT_LT(normal_score, 0.5);
  // Wrong-way traffic on the lane: elevated score.
  TrajectoryPoint wrong_way = normal;
  wrong_way.cog_deg = 270.0f;
  EXPECT_GT(model.Score(wrong_way), normal_score);
  // Impossible speed for the lane: elevated score.
  TrajectoryPoint speeding = normal;
  speeding.sog_mps = 15.0f;
  EXPECT_GT(model.Score(speeding), normal_score);
}

TEST(PatternsTest, EmptyModelIsMaximallySurprised) {
  PatternsOfLife model;
  model.Finalize();
  TrajectoryPoint p;
  p.position = GeoPoint(40, 5);
  EXPECT_DOUBLE_EQ(model.Score(p), 1.0);
}

TEST(AnomalyDetectorTest, ThresholdAndRateLimit) {
  PatternsOfLife model;  // empty: everything anomalous
  model.Finalize();
  AnomalyDetector::Options opts;
  opts.threshold = 0.5;
  opts.realert_ms = Minutes(30);
  AnomalyDetector detector(&model, opts);
  TrajectoryPoint p;
  p.t = 1700000000000;
  p.position = GeoPoint(40, 5);
  EXPECT_TRUE(detector.Observe(1, p).has_value());
  p.t += Minutes(5);
  EXPECT_FALSE(detector.Observe(1, p).has_value());  // rate-limited
  p.t += Minutes(40);
  EXPECT_TRUE(detector.Observe(1, p).has_value());
  // A different vessel is not rate-limited by the first.
  EXPECT_TRUE(detector.Observe(2, p).has_value());
}

// --- Forecasters ---------------------------------------------------------

TEST(ForecastTest, DeadReckoningExactOnStraightLine) {
  const Trajectory traj = StraightTrajectory(1, 100, 6.0);
  DeadReckoningForecaster dr;
  const auto samples = EvaluateForecaster(dr, traj, {60.0, 300.0, 600.0});
  ASSERT_FALSE(samples.empty());
  for (const auto& s : samples) {
    EXPECT_LT(s.error_m, 20.0) << "horizon " << s.horizon_s;
  }
}

Trajectory CurvedTrajectory(Mmsi mmsi, double turn_deg_per_step) {
  Trajectory traj;
  traj.mmsi = mmsi;
  GeoPoint pos(40.0, 5.0);
  double course = 90.0;
  for (int i = 0; i < 200; ++i) {
    TrajectoryPoint p;
    p.t = 1700000000000 + static_cast<Timestamp>(i) * 10000;
    p.position = pos;
    p.sog_mps = 6.0f;
    p.cog_deg = static_cast<float>(NormalizeDegrees(course));
    traj.points.push_back(p);
    course += turn_deg_per_step;
    pos = Destination(pos, course, 60.0);
  }
  return traj;
}

TEST(ForecastTest, ConstantTurnBeatsDeadReckoningOnArc) {
  const Trajectory traj = CurvedTrajectory(1, 0.8);
  DeadReckoningForecaster dr;
  ConstantTurnForecaster ct;
  double dr_err = 0, ct_err = 0;
  int n = 0;
  for (const auto& s : EvaluateForecaster(dr, traj, {600.0})) {
    dr_err += s.error_m;
    ++n;
  }
  for (const auto& s : EvaluateForecaster(ct, traj, {600.0})) {
    ct_err += s.error_m;
  }
  ASSERT_GT(n, 0);
  EXPECT_LT(ct_err, dr_err * 0.6);
}

TEST(ForecastTest, FlowFieldBeatsDeadReckoningOnLaneTurns) {
  // Historical traffic follows an L-shaped lane; the flow field learns the
  // corner, dead reckoning sails straight past it. Times derive from actual
  // geodesic distances so SOG is consistent with the motion.
  std::vector<GeoPoint> lane;
  for (int i = 0; i <= 40; ++i) lane.push_back(GeoPoint(40.0, 5.0 + 0.01 * i));
  for (int i = 1; i <= 40; ++i) lane.push_back(GeoPoint(40.0 + 0.01 * i, 5.4));
  constexpr double kSpeed = 6.0;
  auto make_run = [&lane](Mmsi mmsi, double jitter, Rng* rng) {
    Trajectory traj;
    traj.mmsi = mmsi;
    Timestamp t = 1700000000000;
    for (size_t i = 0; i < lane.size(); ++i) {
      TrajectoryPoint p;
      p.t = t;
      p.position = GeoPoint(lane[i].lat + rng->Uniform(-jitter, jitter),
                            lane[i].lon + rng->Uniform(-jitter, jitter));
      p.sog_mps = static_cast<float>(kSpeed);
      p.cog_deg = static_cast<float>(
          i + 1 < lane.size() ? InitialBearing(lane[i], lane[i + 1])
                              : InitialBearing(lane[i - 1], lane[i]));
      traj.points.push_back(p);
      if (i + 1 < lane.size()) {
        t += static_cast<Timestamp>(
            1000.0 * HaversineDistance(lane[i], lane[i + 1]) / kSpeed);
      }
    }
    return traj;
  };
  Rng rng(269);
  FlowFieldForecaster flow;
  for (int v = 0; v < 30; ++v) {
    flow.Train(make_run(100 + v, 0.002, &rng));
  }
  const Trajectory test_run = make_run(999, 0.0, &rng);
  // Evaluate where the 20-minute horizon spans the corner (index 40):
  // samples ~33-39 on the east leg.
  DeadReckoningForecaster dr;
  double dr_err = 0, flow_err = 0;
  int n = 0;
  for (size_t i = 33; i <= 39; ++i) {
    std::vector<TrajectoryPoint> recent(test_run.points.begin(),
                                        test_run.points.begin() + i + 1);
    const Timestamp target = test_run.points[i].t + 1200 * 1000;
    const TrajectoryPoint actual = test_run.At(target);
    dr_err += HaversineDistance(dr.Predict(recent, 1200.0), actual.position);
    flow_err +=
        HaversineDistance(flow.Predict(recent, 1200.0), actual.position);
    ++n;
  }
  ASSERT_GT(n, 0);
  EXPECT_LT(flow_err, dr_err * 0.8);
}

TEST(ForecastTest, ErrorGrowsWithHorizon) {
  const Trajectory traj = CurvedTrajectory(1, 0.5);
  DeadReckoningForecaster dr;
  const auto samples =
      EvaluateForecaster(dr, traj, {60.0, 300.0, 900.0}, 10, 20);
  double err[3] = {0, 0, 0};
  int count[3] = {0, 0, 0};
  for (const auto& s : samples) {
    const int idx = s.horizon_s == 60.0 ? 0 : s.horizon_s == 300.0 ? 1 : 2;
    err[idx] += s.error_m;
    ++count[idx];
  }
  ASSERT_GT(count[0], 0);
  ASSERT_GT(count[2], 0);
  EXPECT_LT(err[0] / count[0], err[1] / count[1]);
  EXPECT_LT(err[1] / count[1], err[2] / count[2]);
}

// --- EnrichmentEngine -------------------------------------------------------

TEST(EnrichmentTest, JoinsAllContextSources) {
  ZoneDatabase zones;
  GeoZone port;
  port.name = "P";
  port.type = ZoneType::kPort;
  port.polygon = Polygon::Circle(GeoPoint(41.35, 2.15), 3000.0);
  const uint32_t port_id = zones.Add(std::move(port));
  WeatherProvider weather(31);
  SourceQualityModel quality;
  VesselRegistry reg_a("marinetraffic"), reg_b("lloyds");
  RegistryRecord rec;
  rec.mmsi = 5;
  rec.name = "SEA STAR";
  rec.flag = "FR";
  rec.ship_type = 30;
  rec.length_m = 25;
  reg_a.Upsert(rec);
  rec.flag = "ES";  // conflict
  reg_b.Upsert(rec);

  EnrichmentEngine engine(&zones, &weather, &reg_a, &reg_b, &quality);
  ReconstructedPoint rp;
  rp.mmsi = 5;
  rp.point.t = 1700000000000;
  rp.point.position = GeoPoint(41.35, 2.15);
  const EnrichedPoint enriched = engine.Enrich(rp);
  ASSERT_EQ(enriched.zone_ids.size(), 1u);
  EXPECT_EQ(enriched.zone_ids[0], port_id);
  EXPECT_GE(enriched.weather.wind_speed_mps, 0.0);
  EXPECT_EQ(enriched.category, ShipCategory::kFishing);
  EXPECT_EQ(enriched.vessel_name, "SEA STAR");
  EXPECT_TRUE(enriched.registry_conflict);
  EXPECT_EQ(engine.stats().registry_conflicts, 1u);
}

TEST(EnrichmentTest, NullSourcesSkipped) {
  EnrichmentEngine engine(nullptr, nullptr, nullptr, nullptr, nullptr);
  ReconstructedPoint rp;
  rp.mmsi = 5;
  rp.point.position = GeoPoint(40, 5);
  const EnrichedPoint enriched = engine.Enrich(rp);
  EXPECT_TRUE(enriched.zone_ids.empty());
  EXPECT_EQ(enriched.category, ShipCategory::kUnknown);
}

}  // namespace
}  // namespace marlin
