// Unit tests for marlin_ais: bit packing, armoring, NMEA transport, message
// codecs (round-trip), decoder robustness, and validation rules.

#include <gtest/gtest.h>

#include "ais/codec.h"
#include "ais/messages.h"
#include "ais/nmea.h"
#include "ais/sixbit.h"
#include "ais/types.h"
#include "ais/validation.h"
#include "common/rng.h"

namespace marlin {
namespace {

// --- BitWriter / BitReader -------------------------------------------------

TEST(SixBitTest, WriteReadUnsigned) {
  BitWriter w;
  w.WriteUnsigned(0b101101, 6);
  w.WriteUnsigned(1023, 10);
  w.WriteUnsigned(0, 1);
  BitReader r(w.bits());
  EXPECT_EQ(*r.ReadUnsigned(6), 0b101101u);
  EXPECT_EQ(*r.ReadUnsigned(10), 1023u);
  EXPECT_EQ(*r.ReadUnsigned(1), 0u);
}

TEST(SixBitTest, SignedRoundTripSweep) {
  for (int width : {8, 12, 17, 27, 28, 32}) {
    BitWriter w;
    const int32_t lo = width == 32 ? INT32_MIN : -(1 << (width - 1));
    const int32_t hi = width == 32 ? INT32_MAX : (1 << (width - 1)) - 1;
    w.WriteSigned(lo, width);
    w.WriteSigned(hi, width);
    w.WriteSigned(-1, width);
    w.WriteSigned(0, width);
    BitReader r(w.bits());
    EXPECT_EQ(*r.ReadSigned(width), lo) << "width " << width;
    EXPECT_EQ(*r.ReadSigned(width), hi) << "width " << width;
    EXPECT_EQ(*r.ReadSigned(width), -1) << "width " << width;
    EXPECT_EQ(*r.ReadSigned(width), 0) << "width " << width;
  }
}

TEST(SixBitTest, ReaderBoundsChecked) {
  BitWriter w;
  w.WriteUnsigned(5, 8);
  BitReader r(w.bits());
  EXPECT_TRUE(r.ReadUnsigned(8).ok());
  EXPECT_TRUE(r.ReadUnsigned(1).status().IsOutOfRange());
}

TEST(SixBitTest, StringRoundTrip) {
  BitWriter w;
  w.WriteString("SEA STAR 42", 20);
  BitReader r(w.bits());
  EXPECT_EQ(*r.ReadString(20), "SEA STAR 42");
}

TEST(SixBitTest, StringPaddingStripped) {
  BitWriter w;
  w.WriteString("X", 10);
  BitReader r(w.bits());
  EXPECT_EQ(*r.ReadString(10), "X");
}

TEST(SixBitTest, StringLowercaseUppercased) {
  BitWriter w;
  w.WriteString("abc", 3);
  BitReader r(w.bits());
  EXPECT_EQ(*r.ReadString(3), "ABC");
}

TEST(SixBitTest, AlphabetRoundTrip) {
  // Every 6-bit value maps to a char and back.
  for (uint32_t v = 0; v < 64; ++v) {
    EXPECT_EQ(CharToSixBit(SixBitToChar(v)), v);
  }
}

TEST(SixBitTest, ArmorUnarmorRoundTrip) {
  Rng rng(53);
  for (int trial = 0; trial < 50; ++trial) {
    BitWriter w;
    const int nbits = 6 + static_cast<int>(rng.NextBounded(400));
    for (int i = 0; i < nbits; ++i) {
      w.WriteUnsigned(rng.NextBounded(2), 1);
    }
    int fill = 0;
    const std::string payload = ArmorBits(w.bits(), &fill);
    EXPECT_LE(fill, 5);
    const auto bits = UnarmorPayload(payload, fill);
    ASSERT_TRUE(bits.ok());
    EXPECT_EQ(*bits, w.bits());
  }
}

TEST(SixBitTest, UnarmorRejectsIllegalChars) {
  EXPECT_TRUE(UnarmorPayload("ab\x19z", 0).status().IsCorruption());
  EXPECT_TRUE(UnarmorPayload("15M", 6).status().IsInvalid());
}

// --- NMEA ----------------------------------------------------------------

TEST(NmeaTest, ChecksumKnownSentence) {
  // Classic reference sentence.
  const std::string body = "AIVDM,1,1,,B,177KQJ5000G?tO`K>RA1wUbN0TKH,0";
  EXPECT_EQ(NmeaChecksum(body), 0x5C);
}

TEST(NmeaTest, ParseWellFormed) {
  const auto s =
      ParseSentence("!AIVDM,1,1,,B,177KQJ5000G?tO`K>RA1wUbN0TKH,0*5C");
  ASSERT_TRUE(s.ok());
  EXPECT_EQ(s->talker, "AIVDM");
  EXPECT_EQ(s->fragment_count, 1);
  EXPECT_EQ(s->fragment_number, 1);
  EXPECT_EQ(s->sequential_id, -1);
  EXPECT_EQ(s->channel, 'B');
  EXPECT_EQ(s->payload, "177KQJ5000G?tO`K>RA1wUbN0TKH");
  EXPECT_EQ(s->fill_bits, 0);
}

TEST(NmeaTest, FormatParseRoundTrip) {
  NmeaSentence s;
  s.talker = "AIVDM";
  s.fragment_count = 2;
  s.fragment_number = 1;
  s.sequential_id = 3;
  s.channel = 'A';
  s.payload = "55PH?P01ukIq<DhV221=@Tl";
  s.fill_bits = 2;
  const auto parsed = ParseSentence(FormatSentence(s));
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ(parsed->fragment_count, 2);
  EXPECT_EQ(parsed->sequential_id, 3);
  EXPECT_EQ(parsed->payload, s.payload);
  EXPECT_EQ(parsed->fill_bits, 2);
}

TEST(NmeaTest, RejectsBadChecksum) {
  EXPECT_TRUE(
      ParseSentence("!AIVDM,1,1,,B,177KQJ5000G?tO`K>RA1wUbN0TKH,0*5D")
          .status()
          .IsCorruption());
}

TEST(NmeaTest, RejectsMalformedStructure) {
  EXPECT_FALSE(ParseSentence("").ok());
  EXPECT_FALSE(ParseSentence("AIVDM,1,1,,B,xx,0*00").ok());  // missing '!'
  EXPECT_FALSE(ParseSentence("!AIVDM,1,1,,B,xx*00").ok());   // 6 fields
  EXPECT_FALSE(ParseSentence("!AIVDM,0,1,,B,xx,0*00").ok()); // bad frag count
  EXPECT_FALSE(ParseSentence("!AIVDM,1,2,,B,xx,0*00").ok()); // frag > count
  EXPECT_FALSE(ParseSentence("!AIVDM,1,1,,B,xx,9*00").ok()); // bad fill
}

TEST(NmeaTest, RejectsMultiFragmentWithoutSeqId) {
  NmeaSentence s;
  s.fragment_count = 2;
  s.fragment_number = 1;
  s.sequential_id = -1;
  s.payload = "abc";
  EXPECT_FALSE(ParseSentence(FormatSentence(s)).ok());
}

// --- AivdmAssembler ----------------------------------------------------------

TEST(AssemblerTest, SingleFragmentPassesThrough) {
  AivdmAssembler assembler;
  NmeaSentence s;
  s.payload = "XYZ";
  s.fill_bits = 2;
  const auto result = assembler.Add(s, 0);
  ASSERT_TRUE(result.ok());
  ASSERT_TRUE(result->has_value());
  EXPECT_EQ((*result)->payload, "XYZ");
  EXPECT_EQ((*result)->fill_bits, 2);
}

TEST(AssemblerTest, TwoFragmentAssembly) {
  AivdmAssembler assembler;
  NmeaSentence f1, f2;
  f1.fragment_count = f2.fragment_count = 2;
  f1.fragment_number = 1;
  f2.fragment_number = 2;
  f1.sequential_id = f2.sequential_id = 5;
  f1.payload = "AAA";
  f2.payload = "BBB";
  f2.fill_bits = 4;
  auto r1 = assembler.Add(f1, 0);
  ASSERT_TRUE(r1.ok());
  EXPECT_FALSE(r1->has_value());
  EXPECT_EQ(assembler.pending_groups(), 1u);
  auto r2 = assembler.Add(f2, 100);
  ASSERT_TRUE(r2.ok());
  ASSERT_TRUE(r2->has_value());
  EXPECT_EQ((*r2)->payload, "AAABBB");
  EXPECT_EQ((*r2)->fill_bits, 4);
  EXPECT_EQ(assembler.pending_groups(), 0u);
}

TEST(AssemblerTest, OutOfOrderFragments) {
  AivdmAssembler assembler;
  NmeaSentence f1, f2;
  f1.fragment_count = f2.fragment_count = 2;
  f1.fragment_number = 1;
  f2.fragment_number = 2;
  f1.sequential_id = f2.sequential_id = 1;
  f1.payload = "FIRST";
  f2.payload = "SECOND";
  auto r2 = assembler.Add(f2, 0);
  EXPECT_FALSE(r2->has_value());
  auto r1 = assembler.Add(f1, 10);
  ASSERT_TRUE(r1->has_value());
  EXPECT_EQ((*r1)->payload, "FIRSTSECOND");
}

TEST(AssemblerTest, InterleavedGroupsBySeqId) {
  AivdmAssembler assembler;
  auto frag = [](int seq, int num, const std::string& payload) {
    NmeaSentence s;
    s.fragment_count = 2;
    s.fragment_number = num;
    s.sequential_id = seq;
    s.payload = payload;
    return s;
  };
  EXPECT_FALSE(assembler.Add(frag(1, 1, "A1"), 0)->has_value());
  EXPECT_FALSE(assembler.Add(frag(2, 1, "B1"), 1)->has_value());
  auto ra = assembler.Add(frag(1, 2, "A2"), 2);
  ASSERT_TRUE(ra->has_value());
  EXPECT_EQ((*ra)->payload, "A1A2");
  auto rb = assembler.Add(frag(2, 2, "B2"), 3);
  ASSERT_TRUE(rb->has_value());
  EXPECT_EQ((*rb)->payload, "B1B2");
}

TEST(AssemblerTest, ExpiredGroupsEvicted) {
  AivdmAssembler::Options opts;
  opts.timeout_ms = 1000;
  AivdmAssembler assembler(opts);
  NmeaSentence f1;
  f1.fragment_count = 2;
  f1.fragment_number = 1;
  f1.sequential_id = 0;
  f1.payload = "ORPHAN";
  assembler.Add(f1, 0);
  EXPECT_EQ(assembler.pending_groups(), 1u);
  EXPECT_EQ(assembler.EvictExpired(5000), 1u);
  EXPECT_EQ(assembler.pending_groups(), 0u);
}

// --- Message round trips ------------------------------------------------

PositionReport MakeClassA() {
  PositionReport m;
  m.message_type = 1;
  m.repeat_indicator = 0;
  m.mmsi = 228123456;
  m.nav_status = NavigationStatus::kUnderWayUsingEngine;
  m.rate_of_turn = 3;
  m.sog_knots = 13.7;
  m.position_accurate = true;
  m.position = GeoPoint(43.2967, 5.3684);
  m.cog_deg = 87.3;
  m.true_heading = 86;
  m.utc_second = 41;
  m.maneuver_indicator = 1;
  m.raim = false;
  m.radio_status = 0x1234;
  return m;
}

TEST(MessageTest, ClassARoundTrip) {
  const PositionReport original = MakeClassA();
  const auto bits = EncodePositionReport(original);
  ASSERT_TRUE(bits.ok());
  EXPECT_EQ(bits->size(), 168u);
  const auto decoded = DecodeMessageBits(*bits);
  ASSERT_TRUE(decoded.ok());
  const auto& m = std::get<PositionReport>(*decoded);
  EXPECT_EQ(m.message_type, 1);
  EXPECT_EQ(m.mmsi, original.mmsi);
  EXPECT_EQ(m.nav_status, original.nav_status);
  EXPECT_EQ(m.rate_of_turn, 3);
  EXPECT_NEAR(m.sog_knots, 13.7, 0.05);
  EXPECT_TRUE(m.position_accurate);
  EXPECT_NEAR(m.position.lat, original.position.lat, 1e-4 / 60.0);
  EXPECT_NEAR(m.position.lon, original.position.lon, 1e-4 / 60.0);
  EXPECT_NEAR(m.cog_deg, 87.3, 0.05);
  EXPECT_EQ(m.true_heading, 86);
  EXPECT_EQ(m.utc_second, 41);
  EXPECT_EQ(m.maneuver_indicator, 1);
  EXPECT_EQ(m.radio_status, 0x1234u);
}

TEST(MessageTest, ClassANotAvailableSentinels) {
  PositionReport m;
  m.message_type = 3;
  m.mmsi = 247000001;
  // All defaults: position/speed/course not available.
  const auto bits = EncodePositionReport(m);
  ASSERT_TRUE(bits.ok());
  const auto decoded = DecodeMessageBits(*bits);
  ASSERT_TRUE(decoded.ok());
  const auto& d = std::get<PositionReport>(*decoded);
  EXPECT_FALSE(d.HasPosition());
  EXPECT_FALSE(d.HasSpeed());
  EXPECT_FALSE(d.HasCourse());
  EXPECT_EQ(d.true_heading, AisSentinels::kHeadingNotAvailable);
}

TEST(MessageTest, NegativeCoordinates) {
  PositionReport m = MakeClassA();
  m.position = GeoPoint(-33.8568, -70.6483);
  const auto decoded = DecodeMessageBits(*EncodePositionReport(m));
  ASSERT_TRUE(decoded.ok());
  const auto& d = std::get<PositionReport>(*decoded);
  EXPECT_NEAR(d.position.lat, -33.8568, 1e-4);
  EXPECT_NEAR(d.position.lon, -70.6483, 1e-4);
}

TEST(MessageTest, SpeedQuantization) {
  for (double sog : {0.0, 0.1, 5.55, 102.2}) {
    PositionReport m = MakeClassA();
    m.sog_knots = sog;
    const auto decoded = DecodeMessageBits(*EncodePositionReport(m));
    const auto& d = std::get<PositionReport>(*decoded);
    EXPECT_NEAR(d.sog_knots, sog, 0.051) << "sog " << sog;
  }
}

TEST(MessageTest, BaseStationRoundTrip) {
  BaseStationReport m;
  m.mmsi = 2288888;  // base stations use 00MIDxxxx but field is just 30 bits
  m.year = 2017;
  m.month = 3;
  m.day = 21;
  m.hour = 14;
  m.minute = 55;
  m.second = 30;
  m.position = GeoPoint(43.0, 5.0);
  m.position_accurate = true;
  m.epfd_type = 1;
  const auto bits = EncodeBaseStationReport(m);
  ASSERT_TRUE(bits.ok());
  EXPECT_EQ(bits->size(), 168u);
  const auto decoded = DecodeMessageBits(*bits);
  ASSERT_TRUE(decoded.ok());
  const auto& d = std::get<BaseStationReport>(*decoded);
  EXPECT_EQ(d.year, 2017);
  EXPECT_EQ(d.month, 3);
  EXPECT_EQ(d.day, 21);
  EXPECT_EQ(d.hour, 14);
  EXPECT_EQ(d.minute, 55);
  EXPECT_EQ(d.second, 30);
  EXPECT_EQ(d.epfd_type, 1);
}

TEST(MessageTest, StaticVoyageRoundTrip) {
  StaticVoyageData m;
  m.mmsi = 228123456;
  m.ais_version = 1;
  m.imo_number = MakeImoNumber(972345);
  m.call_sign = "3FOF8";
  m.name = "EVER GIVEN";
  m.ship_type = 71;
  m.dim_to_bow_m = 200;
  m.dim_to_stern_m = 200;
  m.dim_to_port_m = 29;
  m.dim_to_starboard_m = 30;
  m.epfd_type = 1;
  m.eta_month = 3;
  m.eta_day = 23;
  m.eta_hour = 4;
  m.eta_minute = 30;
  m.draught_m = 14.5;
  m.destination = "ROTTERDAM";
  m.dte = true;
  const auto bits = EncodeStaticVoyageData(m);
  ASSERT_TRUE(bits.ok());
  EXPECT_EQ(bits->size(), 424u);
  const auto decoded = DecodeMessageBits(*bits);
  ASSERT_TRUE(decoded.ok());
  const auto& d = std::get<StaticVoyageData>(*decoded);
  EXPECT_EQ(d.mmsi, m.mmsi);
  EXPECT_EQ(d.imo_number, m.imo_number);
  EXPECT_EQ(d.call_sign, "3FOF8");
  EXPECT_EQ(d.name, "EVER GIVEN");
  EXPECT_EQ(d.ship_type, 71);
  EXPECT_EQ(d.LengthMetres(), 400);
  EXPECT_EQ(d.BeamMetres(), 59);
  EXPECT_EQ(d.eta_day, 23);
  EXPECT_NEAR(d.draught_m, 14.5, 0.05);
  EXPECT_EQ(d.destination, "ROTTERDAM");
  EXPECT_TRUE(d.dte);
}

TEST(MessageTest, ClassBRoundTrip) {
  PositionReport m;
  m.message_type = 18;
  m.mmsi = 338987654;
  m.sog_knots = 6.3;
  m.position = GeoPoint(37.8, -122.4);
  m.cog_deg = 201.5;
  m.true_heading = 200;
  m.utc_second = 12;
  const auto bits = EncodePositionReport(m);
  ASSERT_TRUE(bits.ok());
  EXPECT_EQ(bits->size(), 168u);
  const auto decoded = DecodeMessageBits(*bits);
  ASSERT_TRUE(decoded.ok());
  const auto& d = std::get<PositionReport>(*decoded);
  EXPECT_EQ(d.message_type, 18);
  EXPECT_NEAR(d.sog_knots, 6.3, 0.05);
  EXPECT_NEAR(d.position.lat, 37.8, 1e-4);
  EXPECT_NEAR(d.cog_deg, 201.5, 0.05);
}

TEST(MessageTest, ExtendedClassBRoundTrip) {
  ExtendedClassBReport m;
  m.position_report.message_type = 19;
  m.position_report.mmsi = 367001234;
  m.position_report.sog_knots = 8.0;
  m.position_report.position = GeoPoint(42.35, -71.05);
  m.position_report.cog_deg = 45.0;
  m.position_report.true_heading = 44;
  m.position_report.utc_second = 7;
  m.name = "FISHER KING";
  m.ship_type = 30;
  m.dim_to_bow_m = 12;
  m.dim_to_stern_m = 8;
  m.dim_to_port_m = 3;
  m.dim_to_starboard_m = 3;
  const auto bits = EncodeExtendedClassB(m);
  ASSERT_TRUE(bits.ok());
  EXPECT_EQ(bits->size(), 312u);
  const auto decoded = DecodeMessageBits(*bits);
  ASSERT_TRUE(decoded.ok());
  const auto& d = std::get<ExtendedClassBReport>(*decoded);
  EXPECT_EQ(d.position_report.message_type, 19);
  EXPECT_EQ(d.name, "FISHER KING");
  EXPECT_EQ(d.ship_type, 30);
  EXPECT_EQ(d.dim_to_bow_m, 12);
}

TEST(MessageTest, StaticDataPartARoundTrip) {
  StaticDataReport m;
  m.mmsi = 228000111;
  m.part_number = 0;
  m.name = "ALBATROSS";
  const auto bits = EncodeStaticDataReport(m);
  ASSERT_TRUE(bits.ok());
  EXPECT_EQ(bits->size(), 160u);
  const auto decoded = DecodeMessageBits(*bits);
  ASSERT_TRUE(decoded.ok());
  const auto& d = std::get<StaticDataReport>(*decoded);
  EXPECT_EQ(d.part_number, 0);
  EXPECT_EQ(d.name, "ALBATROSS");
}

TEST(MessageTest, StaticDataPartBRoundTrip) {
  StaticDataReport m;
  m.mmsi = 228000111;
  m.part_number = 1;
  m.ship_type = 36;
  m.vendor_id = "ACM";
  m.call_sign = "FQ1234";
  m.dim_to_bow_m = 5;
  m.dim_to_stern_m = 7;
  m.dim_to_port_m = 2;
  m.dim_to_starboard_m = 2;
  const auto bits = EncodeStaticDataReport(m);
  ASSERT_TRUE(bits.ok());
  EXPECT_EQ(bits->size(), 168u);
  const auto decoded = DecodeMessageBits(*bits);
  ASSERT_TRUE(decoded.ok());
  const auto& d = std::get<StaticDataReport>(*decoded);
  EXPECT_EQ(d.part_number, 1);
  EXPECT_EQ(d.ship_type, 36);
  EXPECT_EQ(d.vendor_id, "ACM");
  EXPECT_EQ(d.call_sign, "FQ1234");
  EXPECT_EQ(d.dim_to_stern_m, 7);
}

TEST(MessageTest, UnsupportedTypeReported) {
  BitWriter w;
  w.WriteUnsigned(9, 6);  // SAR aircraft report, unsupported
  w.WriteUnsigned(0, 2);
  w.WriteUnsigned(111222333, 30);
  for (int i = 0; i < 130; ++i) w.WriteUnsigned(0, 1);
  EXPECT_TRUE(DecodeMessageBits(w.bits()).status().IsNotImplemented());
}

TEST(MessageTest, TruncatedPayloadIsCorruption) {
  const auto bits = EncodePositionReport(MakeClassA());
  std::vector<uint8_t> truncated(bits->begin(), bits->begin() + 100);
  EXPECT_FALSE(DecodeMessageBits(truncated).ok());
}

// --- Codec (NMEA <-> message) ------------------------------------------

TEST(CodecTest, EncodeDecodeSingleSentence) {
  AisEncoder encoder;
  const PositionReport original = MakeClassA();
  const auto lines = encoder.Encode(AisMessage(original));
  ASSERT_TRUE(lines.ok());
  ASSERT_EQ(lines->size(), 1u);  // 168 bits -> 28 chars, fits one sentence
  AisDecoder decoder;
  const auto msg = decoder.Decode((*lines)[0], 1700000000000);
  ASSERT_TRUE(msg.has_value());
  const auto& d = std::get<PositionReport>(*msg);
  EXPECT_EQ(d.mmsi, original.mmsi);
  EXPECT_EQ(d.received_at, 1700000000000);
  EXPECT_EQ(decoder.stats().messages_out, 1u);
}

TEST(CodecTest, Type5SpansTwoSentences) {
  AisEncoder encoder;
  StaticVoyageData sv;
  sv.mmsi = 228123456;
  sv.name = "LONG NAME VESSEL";
  const auto lines = encoder.Encode(AisMessage(sv));
  ASSERT_TRUE(lines.ok());
  EXPECT_EQ(lines->size(), 2u);  // 424 bits -> 71 chars -> 2 fragments
  AisDecoder decoder;
  EXPECT_FALSE(decoder.Decode((*lines)[0], 0).has_value());
  const auto msg = decoder.Decode((*lines)[1], 0);
  ASSERT_TRUE(msg.has_value());
  EXPECT_EQ(std::get<StaticVoyageData>(*msg).name, "LONG NAME VESSEL");
}

TEST(CodecTest, DecoderSurvivesGarbage) {
  AisDecoder decoder;
  EXPECT_FALSE(decoder.Decode("", 0).has_value());
  EXPECT_FALSE(decoder.Decode("garbage line", 0).has_value());
  EXPECT_FALSE(decoder.Decode("!AIVDM,1,1,,A,,0*26", 0).has_value());
  EXPECT_FALSE(
      decoder.Decode("!AIVDM,1,1,,B,177KQJ5000G?tO`K>RA1wUbN0TKH,0*00", 0)
          .has_value());  // bad checksum
  EXPECT_GE(decoder.stats().bad_sentences, 3u);
  // And still decodes a good line afterwards.
  AisEncoder encoder;
  const auto lines = encoder.Encode(AisMessage(MakeClassA()));
  EXPECT_TRUE(decoder.Decode((*lines)[0], 0).has_value());
}

TEST(CodecTest, RealWorldReferenceSentence) {
  // Documented type-1 example from the AIVDM/AIVDO protocol decoding guide:
  // MMSI 477553000, SOG 0.0, position 47.5828.../-122.345...
  AisDecoder decoder;
  const auto msg = decoder.Decode(
      "!AIVDM,1,1,,B,177KQJ5000G?tO`K>RA1wUbN0TKH,0*5C", 0);
  ASSERT_TRUE(msg.has_value());
  const auto& d = std::get<PositionReport>(*msg);
  EXPECT_EQ(d.message_type, 1);
  EXPECT_EQ(d.mmsi, 477553000u);
  EXPECT_NEAR(d.sog_knots, 0.0, 0.01);
  EXPECT_NEAR(d.position.lat, 47.5828, 0.001);
  EXPECT_NEAR(d.position.lon, -122.3458, 0.001);
}

// --- Validation ---------------------------------------------------------

TEST(ValidationTest, MmsiRules) {
  EXPECT_TRUE(IsValidVesselMmsi(228123456));   // France MID
  EXPECT_TRUE(IsValidVesselMmsi(775999999));   // Venezuela MID
  EXPECT_FALSE(IsValidVesselMmsi(12345));      // too short
  EXPECT_FALSE(IsValidVesselMmsi(999123456));  // out-of-range MID
  EXPECT_FALSE(IsValidVesselMmsi(100123456));  // below ship range
}

TEST(ValidationTest, ImoCheckDigit) {
  // 9074729 is the documented IMO example with a valid check digit.
  EXPECT_TRUE(IsValidImoNumber(9074729));
  EXPECT_FALSE(IsValidImoNumber(9074728));
  EXPECT_FALSE(IsValidImoNumber(123));  // too short
}

TEST(ValidationTest, MakeImoNumberAlwaysValid) {
  Rng rng(61);
  for (int i = 0; i < 100; ++i) {
    EXPECT_TRUE(IsValidImoNumber(
        MakeImoNumber(static_cast<uint32_t>(rng.UniformInt(100000, 999999)))));
  }
}

StaticVoyageData CleanStatic() {
  StaticVoyageData sv;
  sv.mmsi = 228123456;
  sv.imo_number = MakeImoNumber(907472);
  sv.call_sign = "FABC1";
  sv.name = "GOOD SHIP";
  sv.ship_type = 70;
  sv.dim_to_bow_m = 60;
  sv.dim_to_stern_m = 60;
  sv.dim_to_port_m = 10;
  sv.dim_to_starboard_m = 10;
  return sv;
}

TEST(ValidationTest, CleanRecordHasNoDefects) {
  EXPECT_TRUE(ValidateStaticData(CleanStatic()).empty());
}

TEST(ValidationTest, EachDefectDetected) {
  {
    auto sv = CleanStatic();
    sv.mmsi = 1;
    const auto defects = ValidateStaticData(sv);
    ASSERT_EQ(defects.size(), 1u);
    EXPECT_EQ(defects[0], StaticDataDefect::kInvalidMmsi);
  }
  {
    auto sv = CleanStatic();
    sv.imo_number += 1;
    const auto defects = ValidateStaticData(sv);
    ASSERT_EQ(defects.size(), 1u);
    EXPECT_EQ(defects[0], StaticDataDefect::kInvalidImoChecksum);
  }
  {
    auto sv = CleanStatic();
    sv.name.clear();
    EXPECT_EQ(ValidateStaticData(sv)[0], StaticDataDefect::kMissingName);
  }
  {
    auto sv = CleanStatic();
    sv.dim_to_bow_m = sv.dim_to_stern_m = sv.dim_to_port_m =
        sv.dim_to_starboard_m = 0;
    EXPECT_EQ(ValidateStaticData(sv)[0],
              StaticDataDefect::kDefaultDimensions);
  }
  {
    auto sv = CleanStatic();
    sv.dim_to_bow_m = 300;
    sv.dim_to_stern_m = 300;
    EXPECT_EQ(ValidateStaticData(sv)[0], StaticDataDefect::kImplausibleSize);
  }
  {
    auto sv = CleanStatic();
    sv.ship_type = 13;
    EXPECT_EQ(ValidateStaticData(sv)[0], StaticDataDefect::kBadShipType);
  }
  {
    auto sv = CleanStatic();
    sv.call_sign = "A?B";
    EXPECT_EQ(ValidateStaticData(sv)[0], StaticDataDefect::kCallSignFormat);
  }
}

TEST(ValidationTest, ImoZeroMeansNotAvailableNotDefect) {
  auto sv = CleanStatic();
  sv.imo_number = 0;
  EXPECT_TRUE(ValidateStaticData(sv).empty());
}

TEST(ValidationTest, QualityAssessorAggregates) {
  QualityAssessor qa;
  qa.Observe(AisMessage(CleanStatic()));
  auto bad = CleanStatic();
  bad.name.clear();
  qa.Observe(AisMessage(bad));
  PositionReport pr = MakeClassA();
  qa.Observe(AisMessage(pr));
  const auto& report = qa.report();
  EXPECT_EQ(report.static_messages, 2u);
  EXPECT_EQ(report.static_with_defects, 1u);
  EXPECT_DOUBLE_EQ(report.StaticErrorRate(), 0.5);
  EXPECT_EQ(report.position_messages, 1u);
}

// --- Ship categories -----------------------------------------------------

TEST(TypesTest, ShipCategories) {
  EXPECT_EQ(ShipTypeToCategory(30), ShipCategory::kFishing);
  EXPECT_EQ(ShipTypeToCategory(52), ShipCategory::kTug);
  EXPECT_EQ(ShipTypeToCategory(60), ShipCategory::kPassenger);
  EXPECT_EQ(ShipTypeToCategory(74), ShipCategory::kCargo);
  EXPECT_EQ(ShipTypeToCategory(89), ShipCategory::kTanker);
  EXPECT_EQ(ShipTypeToCategory(45), ShipCategory::kHighSpeedCraft);
  EXPECT_EQ(ShipTypeToCategory(0), ShipCategory::kUnknown);
  EXPECT_EQ(ShipTypeToCategory(99), ShipCategory::kOther);
}

TEST(TypesTest, MessageVariantAccessors) {
  const AisMessage pos(MakeClassA());
  EXPECT_EQ(MessageTypeOf(pos), 1);
  EXPECT_EQ(MmsiOf(pos), 228123456u);
  const AisMessage sv(CleanStatic());
  EXPECT_EQ(MessageTypeOf(sv), 5);
  StaticDataReport sd;
  sd.mmsi = 7;
  EXPECT_EQ(MessageTypeOf(AisMessage(sd)), 24);
  EXPECT_EQ(MmsiOf(AisMessage(sd)), 7u);
}

}  // namespace
}  // namespace marlin
