// The network front door's determinism proof: replaying a scenario corpus
// over loopback TCP — framed with the full event envelope, written with
// adversarial byte splits — must produce BYTE-IDENTICAL detected-event
// streams and dead-letter ledgers to in-process `IngestBatch`, for the
// sequential pipeline and for every shard count. The wire is then just a
// transport; it can never change what the system computes.

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <string>
#include <thread>
#include <tuple>
#include <vector>

#include <gtest/gtest.h>

#include "core/pipeline.h"
#include "core/sharded_pipeline.h"
#include "net/tcp_ingest_server.h"
#include "sim/scenario.h"
#include "sim/world.h"
#include "stream/frame.h"

namespace marlin {
namespace {

const World& SharedWorld() {
  static World world = World::Basin();
  return world;
}

ScenarioOutput MakeScenario(uint64_t seed) {
  ScenarioConfig config;
  config.seed = seed;
  config.duration = 45 * kMillisPerMinute;
  config.transit_vessels = 10;
  config.fishing_vessels = 3;
  config.loiter_vessels = 2;
  config.rendezvous_pairs = 2;
  config.dark_vessels = 1;
  config.spoof_identity_vessels = 1;
  config.perfect_reception = false;  // multi-receiver, garbled lines included
  return GenerateScenario(SharedWorld(), config);
}

PipelineConfig TestConfig() {
  PipelineConfig pc;
  pc.window_lines = 512;
  return pc;
}

auto EventKey(const DetectedEvent& ev) {
  return std::make_tuple(ev.detected_at, ev.vessel_a, ev.vessel_b,
                         static_cast<int>(ev.type), ev.start, ev.end,
                         ev.zone_id, ev.severity, ev.where.lat, ev.where.lon);
}

void ExpectIdenticalEvents(const std::vector<DetectedEvent>& reference,
                           const std::vector<DetectedEvent>& via_net) {
  ASSERT_EQ(reference.size(), via_net.size());
  for (size_t i = 0; i < reference.size(); ++i) {
    EXPECT_EQ(EventKey(reference[i]), EventKey(via_net[i]))
        << "event mismatch at index " << i;
  }
}

void ExpectIdenticalLedgers(const std::vector<DeadLetter>& reference,
                            const std::vector<DeadLetter>& via_net) {
  ASSERT_EQ(reference.size(), via_net.size());
  for (size_t i = 0; i < reference.size(); ++i) {
    EXPECT_EQ(reference[i].reason, via_net[i].reason) << "index " << i;
    EXPECT_EQ(reference[i].payload, via_net[i].payload) << "index " << i;
    EXPECT_EQ(reference[i].ingest_time, via_net[i].ingest_time)
        << "index " << i;
  }
}

// Replays the corpus through a loopback TCP connection in kFrames mode
// with adversarial write-chunk splits, returning the events the server
// reassembled, in arrival order.
std::vector<Event<std::string>> ReplayOverLoopback(
    const std::vector<Event<std::string>>& corpus, uint64_t split_seed) {
  TcpIngestOptions options;
  options.mode = WireMode::kFrames;
  TcpIngestServer server(options);
  EXPECT_TRUE(server.Start().ok());

  std::string wire;
  for (const Event<std::string>& ev : corpus) AppendLineFrame(ev, &wire);

  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  EXPECT_GE(fd, 0);
  struct sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(server.port());
  ::inet_pton(AF_INET, "127.0.0.1", &addr.sin_addr);
  EXPECT_EQ(::connect(fd, reinterpret_cast<struct sockaddr*>(&addr),
                      sizeof(addr)),
            0);

  // Adversarial chunking: xorshift-driven sizes biased tiny, so frames
  // straddle every kind of boundary (mid-magic, mid-length, mid-CRC).
  uint64_t rng = split_seed ? split_seed : 1;
  size_t off = 0;
  while (off < wire.size()) {
    rng ^= rng << 13;
    rng ^= rng >> 7;
    rng ^= rng << 17;
    const size_t n = std::min<size_t>(1 + rng % 37, wire.size() - off);
    size_t sent = 0;
    while (sent < n) {
      const ssize_t w = ::send(fd, wire.data() + off + sent, n - sent, 0);
      EXPECT_GT(w, 0);
      sent += static_cast<size_t>(w);
    }
    off += n;
  }
  ::close(fd);
  EXPECT_TRUE(server.WaitForConnectionsClosed(1, 30000));
  server.Stop();

  std::vector<Event<std::string>> received;
  server.DrainLines(&received);
  // The transport itself must be fault-free on a clean corpus.
  EXPECT_EQ(server.dead_letters().stats().total(), 0u);
  EXPECT_EQ(server.stats().bad_frames, 0u);
  return received;
}

// The envelope-carrying frame makes loopback replay a faithful identity:
// the received event sequence IS the corpus, byte for byte.
TEST(NetEquivalenceTest, LoopbackReplayReconstructsCorpusExactly) {
  const ScenarioOutput scenario = MakeScenario(7001);
  ASSERT_GT(scenario.nmea.size(), 0u);
  const auto received = ReplayOverLoopback(scenario.nmea, 0xFEED);
  ASSERT_EQ(received.size(), scenario.nmea.size());
  for (size_t i = 0; i < received.size(); ++i) {
    EXPECT_EQ(received[i].event_time, scenario.nmea[i].event_time)
        << "index " << i;
    EXPECT_EQ(received[i].ingest_time, scenario.nmea[i].ingest_time)
        << "index " << i;
    EXPECT_EQ(received[i].source_id, scenario.nmea[i].source_id)
        << "index " << i;
    EXPECT_EQ(received[i].payload, scenario.nmea[i].payload) << "index " << i;
  }
}

// Garbles a deterministic sample of lines (checksum-breaking byte flips)
// so the corpus exercises the dead-letter path on both arms.
void GarbleSomeLines(std::vector<Event<std::string>>* corpus) {
  for (size_t i = 7; i < corpus->size(); i += 97) {
    std::string& line = (*corpus)[i].payload;
    if (!line.empty()) line[line.size() / 2] ^= 0x15;
  }
}

// Three scenario worlds, each replayed over the wire and fed to the
// sequential pipeline: events and dead-letter ledgers must match the
// in-process arm exactly.
TEST(NetEquivalenceTest, SequentialPipelineMatchesInProcessIngest) {
  const uint64_t seeds[] = {7101, 7102, 7103};
  uint64_t split_seed = 0xA11CE;
  for (uint64_t seed : seeds) {
    ScenarioOutput scenario = MakeScenario(seed);
    GarbleSomeLines(&scenario.nmea);
    const PipelineConfig pc = TestConfig();

    MaritimePipeline in_process(pc, &SharedWorld().zones(), nullptr, nullptr,
                                nullptr);
    auto ref_events = in_process.IngestBatch(scenario.nmea);
    const auto ref_tail = in_process.Finish();
    ref_events.insert(ref_events.end(), ref_tail.begin(), ref_tail.end());
    std::vector<DeadLetter> ref_ledger;
    in_process.DrainDeadLetters(&ref_ledger);

    const auto received = ReplayOverLoopback(scenario.nmea, split_seed++);
    MaritimePipeline via_net(pc, &SharedWorld().zones(), nullptr, nullptr,
                             nullptr);
    auto net_events = via_net.IngestBatch(received);
    const auto net_tail = via_net.Finish();
    net_events.insert(net_events.end(), net_tail.begin(), net_tail.end());
    std::vector<DeadLetter> net_ledger;
    via_net.DrainDeadLetters(&net_ledger);

    ASSERT_GT(ref_events.size(), 0u) << "seed " << seed;
    ExpectIdenticalEvents(ref_events, net_events);
    ASSERT_GT(ref_ledger.size(), 0u)
        << "imperfect-reception corpus should reject some lines";
    ExpectIdenticalLedgers(ref_ledger, net_ledger);
    EXPECT_EQ(in_process.metrics().decoder.messages_out,
              via_net.metrics().decoder.messages_out);
    EXPECT_EQ(in_process.metrics().alerts, via_net.metrics().alerts);
  }
}

// Same proof across shard counts: the wire transport composes with
// parallelism — N shards fed from the network match N shards fed
// in-process, which in turn match the sequential reference.
TEST(NetEquivalenceTest, ShardedPipelineMatchesAcrossShardCounts) {
  ScenarioOutput scenario = MakeScenario(7201);
  GarbleSomeLines(&scenario.nmea);
  const PipelineConfig pc = TestConfig();
  const auto received = ReplayOverLoopback(scenario.nmea, 0xB0B);

  for (size_t shards : {size_t{1}, size_t{2}, size_t{4}}) {
    ShardedPipeline::Options opts;
    opts.num_shards = shards;

    ShardedPipeline in_process(pc, opts, &SharedWorld().zones(), nullptr,
                               nullptr, nullptr);
    auto ref_events = in_process.IngestBatch(scenario.nmea);
    const auto ref_tail = in_process.Finish();
    ref_events.insert(ref_events.end(), ref_tail.begin(), ref_tail.end());
    std::vector<DeadLetter> ref_ledger;
    in_process.DrainDeadLetters(&ref_ledger);

    ShardedPipeline via_net(pc, opts, &SharedWorld().zones(), nullptr,
                            nullptr, nullptr);
    auto net_events = via_net.IngestBatch(received);
    const auto net_tail = via_net.Finish();
    net_events.insert(net_events.end(), net_tail.begin(), net_tail.end());
    std::vector<DeadLetter> net_ledger;
    via_net.DrainDeadLetters(&net_ledger);

    ASSERT_GT(ref_events.size(), 0u) << "shards " << shards;
    ExpectIdenticalEvents(ref_events, net_events);
    ExpectIdenticalLedgers(ref_ledger, net_ledger);
  }
}

}  // namespace
}  // namespace marlin
