// Unit tests for marlin_fusion: matrices, Kalman filtering, assignment,
// multi-target tracking, covariance intersection.

#include <gtest/gtest.h>

#include <cmath>

#include "common/rng.h"
#include "common/units.h"
#include "ais/types.h"
#include "fusion/assignment.h"
#include "fusion/kalman.h"
#include "fusion/matrix.h"
#include "fusion/tracker.h"
#include "geo/geodesy.h"

namespace marlin {
namespace {

// --- Matrix ---------------------------------------------------------------

TEST(MatrixTest, MultiplyIdentity) {
  Mat4 a = Mat4::Zero();
  Rng rng(127);
  for (int i = 0; i < 4; ++i) {
    for (int j = 0; j < 4; ++j) a(i, j) = rng.Uniform(-5, 5);
  }
  const Mat4 product = a * Mat4::Identity();
  for (int i = 0; i < 4; ++i) {
    for (int j = 0; j < 4; ++j) EXPECT_DOUBLE_EQ(product(i, j), a(i, j));
  }
}

TEST(MatrixTest, TransposeInvolution) {
  Mat4 a = Mat4::Zero();
  a(0, 1) = 3.0;
  a(2, 3) = -2.0;
  const Mat4 att = a.Transpose().Transpose();
  for (int i = 0; i < 4; ++i) {
    for (int j = 0; j < 4; ++j) EXPECT_DOUBLE_EQ(att(i, j), a(i, j));
  }
}

TEST(MatrixTest, Invert2x2) {
  Mat2 a;
  a(0, 0) = 4;
  a(0, 1) = 7;
  a(1, 0) = 2;
  a(1, 1) = 6;
  Mat2 inv;
  ASSERT_TRUE(Invert2x2(a, &inv));
  const Mat2 product = a * inv;
  EXPECT_NEAR(product(0, 0), 1.0, 1e-12);
  EXPECT_NEAR(product(0, 1), 0.0, 1e-12);
  EXPECT_NEAR(product(1, 1), 1.0, 1e-12);
}

TEST(MatrixTest, Invert2x2SingularFails) {
  Mat2 a;
  a(0, 0) = 1;
  a(0, 1) = 2;
  a(1, 0) = 2;
  a(1, 1) = 4;
  Mat2 inv;
  EXPECT_FALSE(Invert2x2(a, &inv));
}

TEST(MatrixTest, Invert4x4RandomMatrices) {
  Rng rng(131);
  for (int trial = 0; trial < 50; ++trial) {
    Mat4 a = Mat4::Identity();  // diagonally dominated → invertible
    for (int i = 0; i < 4; ++i) {
      for (int j = 0; j < 4; ++j) {
        a(i, j) += rng.Uniform(-0.4, 0.4);
        if (i == j) a(i, j) += 2.0;
      }
    }
    Mat4 inv;
    ASSERT_TRUE(Invert4x4(a, &inv));
    const Mat4 product = a * inv;
    for (int i = 0; i < 4; ++i) {
      for (int j = 0; j < 4; ++j) {
        EXPECT_NEAR(product(i, j), i == j ? 1.0 : 0.0, 1e-9);
      }
    }
  }
}

TEST(MatrixTest, Invert4x4SingularFails) {
  Mat4 a = Mat4::Zero();  // rank 0
  Mat4 inv;
  EXPECT_FALSE(Invert4x4(a, &inv));
}

// --- Kalman -------------------------------------------------------------

TEST(KalmanTest, StaticTargetConverges) {
  KalmanCv kf(0.05);
  Rng rng(137);
  const EnuPoint truth(500.0, -300.0);
  for (int i = 0; i < 60; ++i) {
    PositionMeasurement z;
    z.t = i * 1000;
    z.position = EnuPoint(truth.east + rng.Gaussian(0, 10),
                          truth.north + rng.Gaussian(0, 10));
    z.sigma_m = 10.0;
    kf.Update(z);
  }
  const EnuPoint estimate = kf.PositionEstimate();
  // After 60 measurements the filtered error is far below the raw 10 m noise.
  EXPECT_LT((estimate - truth).Norm(), 5.0);
  EXPECT_LT(kf.VelocityEstimate().Norm(), 0.5);
}

TEST(KalmanTest, ConstantVelocityTracked) {
  KalmanCv kf(0.2);
  Rng rng(139);
  const double ve = 4.0, vn = -2.0;
  for (int i = 0; i <= 120; ++i) {
    PositionMeasurement z;
    z.t = i * 1000;
    z.position = EnuPoint(ve * i + rng.Gaussian(0, 15),
                          vn * i + rng.Gaussian(0, 15));
    z.sigma_m = 15.0;
    kf.Update(z);
  }
  const EnuPoint v = kf.VelocityEstimate();
  EXPECT_NEAR(v.east, ve, 0.5);
  EXPECT_NEAR(v.north, vn, 0.5);
}

TEST(KalmanTest, FilteredBeatsRawMeasurements) {
  // RMSE of filtered positions must undercut raw measurement RMSE.
  KalmanCv kf(0.3);
  Rng rng(141);
  double raw_sq = 0.0, filt_sq = 0.0;
  int n = 0;
  for (int i = 0; i <= 200; ++i) {
    const EnuPoint truth(3.0 * i, 1.5 * i);
    PositionMeasurement z;
    z.t = i * 1000;
    z.position = EnuPoint(truth.east + rng.Gaussian(0, 20),
                          truth.north + rng.Gaussian(0, 20));
    z.sigma_m = 20.0;
    kf.Update(z);
    if (i > 20) {  // after burn-in
      raw_sq += (z.position - truth).NormSq();
      filt_sq += (kf.PositionEstimate() - truth).NormSq();
      ++n;
    }
  }
  EXPECT_LT(std::sqrt(filt_sq / n), std::sqrt(raw_sq / n) * 0.8);
}

TEST(KalmanTest, PredictGrowsUncertainty) {
  KalmanCv kf(0.5);
  PositionMeasurement z;
  z.t = 0;
  z.position = EnuPoint(0, 0);
  kf.Update(z);
  const double p0 = kf.Covariance()(0, 0);
  kf.Predict(60000);
  EXPECT_GT(kf.Covariance()(0, 0), p0);
}

TEST(KalmanTest, MahalanobisGatesOutliers) {
  KalmanCv kf(0.1);
  Rng rng(149);
  for (int i = 0; i <= 30; ++i) {
    PositionMeasurement z;
    z.t = i * 1000;
    z.position = EnuPoint(rng.Gaussian(0, 5), rng.Gaussian(0, 5));
    z.sigma_m = 5.0;
    kf.Update(z);
  }
  PositionMeasurement consistent;
  consistent.t = kf.time();
  consistent.position = EnuPoint(0, 0);
  consistent.sigma_m = 5.0;
  EXPECT_LT(kf.MahalanobisSq(consistent), 9.21);
  PositionMeasurement outlier = consistent;
  outlier.position = EnuPoint(5000, 5000);
  EXPECT_GT(kf.MahalanobisSq(outlier), 9.21);
}

// --- Covariance intersection ----------------------------------------------

TEST(CovarianceIntersectionTest, FusedCovarianceNotWorseThanBest) {
  Vec4 xa = Vec4::Zero(), xb = Vec4::Zero();
  xa(0, 0) = 100.0;
  xb(0, 0) = 110.0;
  Mat4 Pa = Mat4::Identity() * 100.0;  // σ = 10 m
  Mat4 Pb = Mat4::Identity() * 400.0;  // σ = 20 m
  const FusedEstimate fused = CovarianceIntersection(xa, Pa, xb, Pb);
  ASSERT_TRUE(fused.valid);
  // CI guarantees consistency; trace must not exceed the better input's.
  EXPECT_LE(fused.P.Trace(), Pa.Trace() + 1e-9);
  // Fused state leans toward the more certain source.
  EXPECT_LT(std::abs(fused.x(0, 0) - 100.0), std::abs(fused.x(0, 0) - 110.0));
}

TEST(CovarianceIntersectionTest, SymmetricInputsGiveMidpoint) {
  Vec4 xa = Vec4::Zero(), xb = Vec4::Zero();
  xa(0, 0) = -50.0;
  xb(0, 0) = 50.0;
  const Mat4 P = Mat4::Identity() * 100.0;
  const FusedEstimate fused = CovarianceIntersection(xa, P, xb, P);
  ASSERT_TRUE(fused.valid);
  EXPECT_NEAR(fused.x(0, 0), 0.0, 1e-6);
}

// --- Assignment ------------------------------------------------------------

TEST(AssignmentTest, SimpleDiagonal) {
  const std::vector<std::vector<double>> cost = {
      {1.0, 10.0, 10.0}, {10.0, 1.0, 10.0}, {10.0, 10.0, 1.0}};
  const auto result = SolveAssignment(cost);
  EXPECT_EQ(result.row_to_col, (std::vector<int>{0, 1, 2}));
  EXPECT_DOUBLE_EQ(result.total_cost, 3.0);
}

TEST(AssignmentTest, OffDiagonalOptimum) {
  // Greedy would pick (0,0)=1 then be forced into 100; optimal crosses.
  const std::vector<std::vector<double>> cost = {{1.0, 2.0}, {2.0, 100.0}};
  const auto result = SolveAssignment(cost);
  EXPECT_EQ(result.row_to_col, (std::vector<int>{1, 0}));
  EXPECT_DOUBLE_EQ(result.total_cost, 4.0);
}

TEST(AssignmentTest, RectangularMoreRowsThanCols) {
  const std::vector<std::vector<double>> cost = {{5.0}, {1.0}, {3.0}};
  const auto result = SolveAssignment(cost);
  // Only one column: the cheapest row gets it.
  EXPECT_EQ(result.row_to_col[1], 0);
  EXPECT_EQ(result.row_to_col[0], -1);
  EXPECT_EQ(result.row_to_col[2], -1);
}

TEST(AssignmentTest, ForbiddenPairsUnassigned) {
  const double kForbidden = 1e12;
  const std::vector<std::vector<double>> cost = {{kForbidden, kForbidden},
                                                 {1.0, kForbidden}};
  const auto result = SolveAssignment(cost, kForbidden);
  EXPECT_EQ(result.row_to_col[0], -1);
  EXPECT_EQ(result.row_to_col[1], 0);
}

TEST(AssignmentTest, MatchesBruteForceOnRandomInstances) {
  Rng rng(151);
  for (int trial = 0; trial < 30; ++trial) {
    const int n = 2 + static_cast<int>(rng.NextBounded(4));  // 2..5
    std::vector<std::vector<double>> cost(n, std::vector<double>(n));
    for (auto& row : cost) {
      for (auto& c : row) c = rng.Uniform(0, 100);
    }
    const auto result = SolveAssignment(cost);
    // Brute force over permutations.
    std::vector<int> perm(n);
    for (int i = 0; i < n; ++i) perm[i] = i;
    double best = 1e18;
    do {
      double total = 0.0;
      for (int i = 0; i < n; ++i) total += cost[i][perm[i]];
      best = std::min(best, total);
    } while (std::next_permutation(perm.begin(), perm.end()));
    EXPECT_NEAR(result.total_cost, best, 1e-9) << "n=" << n;
  }
}

// --- MultiTargetTracker -----------------------------------------------------

Contact MakeContact(Timestamp t, const GeoPoint& pos, double sigma = 50.0,
                    Mmsi mmsi = 0) {
  Contact c;
  c.t = t;
  c.position = pos;
  c.sigma_m = sigma;
  c.sensor = mmsi == 0 ? SensorKind::kRadar : SensorKind::kAis;
  c.mmsi = mmsi;
  return c;
}

TEST(TrackerTest, SingleTargetConfirmsAndTracks) {
  const GeoPoint origin(40.0, 5.0);
  MultiTargetTracker tracker(origin);
  Rng rng(157);
  // Target moving east at 10 m/s.
  for (int i = 0; i < 10; ++i) {
    const GeoPoint truth = Destination(origin, 90.0, 10.0 * i * 6.0);
    const GeoPoint noisy =
        Destination(truth, rng.Uniform(0, 360), std::abs(rng.Gaussian(0, 30)));
    tracker.ProcessScan({MakeContact(i * 6000, noisy)}, i * 6000);
  }
  const auto confirmed = tracker.ConfirmedTracks();
  ASSERT_EQ(confirmed.size(), 1u);
  const MotionState motion = tracker.TrackMotion(*confirmed[0]);
  EXPECT_NEAR(motion.speed_mps, 10.0, 2.5);
  EXPECT_NEAR(AngleDifference(motion.course_deg, 90.0), 0.0, 15.0);
}

TEST(TrackerTest, IsolatedFalseAlarmNeverConfirms) {
  MultiTargetTracker tracker(GeoPoint(40.0, 5.0));
  tracker.ProcessScan({MakeContact(0, GeoPoint(40.2, 5.2))}, 0);
  for (int i = 1; i < 8; ++i) {
    tracker.ProcessScan({}, i * 6000);  // nothing afterwards
  }
  EXPECT_TRUE(tracker.ConfirmedTracks().empty());
  EXPECT_TRUE(tracker.LiveTracks().empty());  // tentative died
}

TEST(TrackerTest, TwoWellSeparatedTargets) {
  MultiTargetTracker tracker(GeoPoint(40.0, 5.0));
  for (int i = 0; i < 10; ++i) {
    const Timestamp t = i * 6000;
    std::vector<Contact> scan = {
        MakeContact(t, Destination(GeoPoint(40.0, 5.0), 90.0, 8.0 * i * 6)),
        MakeContact(t, Destination(GeoPoint(40.3, 5.0), 270.0, 6.0 * i * 6)),
    };
    tracker.ProcessScan(scan, t);
  }
  EXPECT_EQ(tracker.ConfirmedTracks().size(), 2u);
}

TEST(TrackerTest, MissedScansCoastThenDie) {
  MultiTargetTracker::Options opts;
  opts.max_misses = 3;
  opts.max_coast_ms = 30000;
  MultiTargetTracker tracker(GeoPoint(40.0, 5.0), opts);
  for (int i = 0; i < 5; ++i) {
    tracker.ProcessScan(
        {MakeContact(i * 6000, Destination(GeoPoint(40.0, 5.0), 90.0, 60.0 * i))},
        i * 6000);
  }
  ASSERT_EQ(tracker.ConfirmedTracks().size(), 1u);
  const uint64_t id = tracker.ConfirmedTracks()[0]->id;
  // Starve the track.
  Timestamp t = 5 * 6000;
  for (int i = 0; i < 4; ++i, t += 6000) tracker.ProcessScan({}, t);
  const Track* coasted = tracker.Find(id);
  ASSERT_NE(coasted, nullptr);
  EXPECT_EQ(coasted->status, TrackStatus::kCoasted);
  // Past the coast budget the track is dropped.
  t += 40000;
  tracker.ProcessScan({}, t);
  EXPECT_EQ(tracker.Find(id), nullptr);
}

TEST(TrackerTest, AisIdentityBindsToTrack) {
  MultiTargetTracker tracker(GeoPoint(40.0, 5.0));
  for (int i = 0; i < 6; ++i) {
    const GeoPoint pos = Destination(GeoPoint(40.0, 5.0), 90.0, 50.0 * i);
    tracker.ProcessScan({MakeContact(i * 6000, pos, 10.0, 228000123)},
                        i * 6000);
  }
  const auto tracks = tracker.ConfirmedTracks();
  ASSERT_EQ(tracks.size(), 1u);
  EXPECT_EQ(tracks[0]->mmsi, 228000123u);
  EXPECT_TRUE(tracks[0]->sensors_seen & (1 << static_cast<int>(SensorKind::kAis)));
}

TEST(TrackerTest, RadarAndAisFuseIntoOneTrack) {
  // Interleaved AIS (with identity) and radar (anonymous) contacts of the
  // same vessel must end up in one track touched by both sensors.
  MultiTargetTracker tracker(GeoPoint(40.0, 5.0));
  Rng rng(163);
  for (int i = 0; i < 12; ++i) {
    const Timestamp t = i * 5000;
    const GeoPoint truth = Destination(GeoPoint(40.0, 5.0), 45.0, 7.0 * i * 5);
    std::vector<Contact> scan;
    if (i % 2 == 0) {
      scan.push_back(MakeContact(
          t, Destination(truth, rng.Uniform(0, 360), 8.0), 10.0, 228000001));
    } else {
      scan.push_back(MakeContact(
          t, Destination(truth, rng.Uniform(0, 360), 40.0), 60.0, 0));
    }
    tracker.ProcessScan(scan, t);
  }
  const auto tracks = tracker.ConfirmedTracks();
  ASSERT_EQ(tracks.size(), 1u);
  EXPECT_EQ(tracks[0]->mmsi, 228000001u);
  const uint32_t both = (1u << static_cast<int>(SensorKind::kAis)) |
                        (1u << static_cast<int>(SensorKind::kRadar));
  EXPECT_EQ(tracks[0]->sensors_seen & both, both);
}

TEST(TrackerTest, CrossingTargetsKeepDistinctTracks) {
  // Two targets crossing paths; identity constraints keep them apart.
  MultiTargetTracker tracker(GeoPoint(40.0, 5.0));
  for (int i = 0; i < 14; ++i) {
    const Timestamp t = i * 6000;
    const GeoPoint a =
        Destination(GeoPoint(39.95, 5.0), 0.0, 8.0 * i * 6);   // northbound
    const GeoPoint b =
        Destination(GeoPoint(40.05, 5.0), 180.0, 8.0 * i * 6); // southbound
    tracker.ProcessScan({MakeContact(t, a, 10.0, 111111111),
                         MakeContact(t, b, 10.0, 222222222)},
                        t);
  }
  const auto tracks = tracker.ConfirmedTracks();
  ASSERT_EQ(tracks.size(), 2u);
  EXPECT_NE(tracks[0]->mmsi, tracks[1]->mmsi);
}

}  // namespace
}  // namespace marlin
