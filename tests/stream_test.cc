// Unit tests for marlin_stream: queues, watermarks, reordering, windows,
// merging, rate metering.

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <thread>
#include <vector>

#include "common/rng.h"
#include "stream/event.h"
#include "stream/merge.h"
#include "stream/queue.h"
#include "stream/rate.h"
#include "stream/reorder.h"
#include "stream/side_stage.h"
#include "stream/watermark.h"
#include "stream/window.h"

namespace marlin {
namespace {

// --- BoundedQueue ---------------------------------------------------------

TEST(QueueTest, FifoOrder) {
  BoundedQueue<int> q(10);
  for (int i = 0; i < 5; ++i) EXPECT_TRUE(q.Push(i));
  for (int i = 0; i < 5; ++i) EXPECT_EQ(*q.Pop(), i);
}

TEST(QueueTest, TryPushRespectsCapacity) {
  BoundedQueue<int> q(2);
  EXPECT_TRUE(q.TryPush(1));
  EXPECT_TRUE(q.TryPush(2));
  EXPECT_FALSE(q.TryPush(3));  // full: backpressure point
  q.Pop();
  EXPECT_TRUE(q.TryPush(3));
}

TEST(QueueTest, CloseDrainsThenSignalsEnd) {
  BoundedQueue<int> q(10);
  q.Push(1);
  q.Push(2);
  q.Close();
  EXPECT_FALSE(q.Push(3));  // closed: rejected
  EXPECT_EQ(*q.Pop(), 1);
  EXPECT_EQ(*q.Pop(), 2);
  EXPECT_FALSE(q.Pop().has_value());  // end of stream
}

TEST(QueueTest, ProducerConsumerThreads) {
  BoundedQueue<int> q(4);  // small capacity forces blocking
  constexpr int kCount = 1000;
  std::thread producer([&q] {
    for (int i = 0; i < kCount; ++i) q.Push(i);
    q.Close();
  });
  int expected = 0;
  int64_t sum = 0;
  while (auto v = q.Pop()) {
    EXPECT_EQ(*v, expected++);
    sum += *v;
  }
  producer.join();
  EXPECT_EQ(expected, kCount);
  EXPECT_EQ(sum, static_cast<int64_t>(kCount) * (kCount - 1) / 2);
}

TEST(QueueTest, TryPopNonBlocking) {
  BoundedQueue<int> q(2);
  EXPECT_FALSE(q.TryPop().has_value());
  q.Push(9);
  EXPECT_EQ(*q.TryPop(), 9);
}

TEST(QueueTest, MultiProducerMultiConsumerStress) {
  BoundedQueue<int> q(8);  // tight capacity: producers and consumers block
  constexpr int kProducers = 4;
  constexpr int kConsumers = 4;
  constexpr int kPerProducer = 5000;
  std::vector<std::thread> producers, consumers;
  std::atomic<int64_t> consumed_sum{0};
  std::atomic<int64_t> consumed_count{0};
  for (int p = 0; p < kProducers; ++p) {
    producers.emplace_back([&q, p] {
      for (int i = 0; i < kPerProducer; ++i) {
        ASSERT_TRUE(q.Push(p * kPerProducer + i));
      }
    });
  }
  for (int c = 0; c < kConsumers; ++c) {
    consumers.emplace_back([&] {
      while (auto v = q.Pop()) {
        consumed_sum.fetch_add(*v, std::memory_order_relaxed);
        consumed_count.fetch_add(1, std::memory_order_relaxed);
      }
    });
  }
  for (auto& t : producers) t.join();
  q.Close();
  for (auto& t : consumers) t.join();
  constexpr int64_t kTotal = int64_t{kProducers} * kPerProducer;
  EXPECT_EQ(consumed_count.load(), kTotal);
  EXPECT_EQ(consumed_sum.load(), kTotal * (kTotal - 1) / 2);
  EXPECT_EQ(q.size(), 0u);
}

TEST(QueueTest, CloseUnblocksWaitingProducers) {
  BoundedQueue<int> q(1);
  ASSERT_TRUE(q.Push(1));
  std::thread producer([&q] {
    EXPECT_FALSE(q.Push(2));  // blocks on full queue until Close rejects it
  });
  // Give the producer time to block, then close.
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  q.Close();
  producer.join();
  // The queued item is still drainable after close.
  EXPECT_EQ(*q.Pop(), 1);
  EXPECT_FALSE(q.Pop().has_value());
}

TEST(QueueTest, CloseUnblocksWaitingConsumers) {
  BoundedQueue<int> q(4);
  std::thread consumer([&q] { EXPECT_FALSE(q.Pop().has_value()); });
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  q.Close();
  consumer.join();
}

TEST(QueueTest, PopBatchDrainsUpToLimit) {
  BoundedQueue<int> q(16);
  for (int i = 0; i < 10; ++i) q.Push(i);
  std::vector<int> out;
  EXPECT_EQ(q.PopBatch(&out, 4), 4u);
  EXPECT_EQ(out, (std::vector<int>{0, 1, 2, 3}));
  EXPECT_EQ(q.PopBatch(&out, 100), 6u);
  EXPECT_EQ(out.size(), 10u);
  q.Close();
  EXPECT_EQ(q.PopBatch(&out, 4), 0u);  // closed & drained
}

TEST(QueueTest, PopBatchBlocksUntilFirstItem) {
  BoundedQueue<int> q(4);
  std::vector<int> out;
  std::thread consumer([&] { EXPECT_EQ(q.PopBatch(&out, 8), 1u); });
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  q.Push(77);
  consumer.join();
  EXPECT_EQ(out, std::vector<int>{77});
}

// --- Watermark ---------------------------------------------------------------

TEST(WatermarkTest, TracksMaxMinusDelay) {
  WatermarkGenerator wm(5000);
  EXPECT_EQ(wm.Current(), kMinTimestamp);
  wm.Observe(100000);
  EXPECT_EQ(wm.Current(), 95000);
  wm.Observe(90000);  // older event does not regress the watermark
  EXPECT_EQ(wm.Current(), 95000);
  wm.Observe(120000);
  EXPECT_EQ(wm.Current(), 115000);
}

TEST(WatermarkTest, LatenessClassification) {
  WatermarkGenerator wm(5000);
  wm.Observe(100000);
  EXPECT_TRUE(wm.IsLate(94000));
  EXPECT_TRUE(wm.IsLate(95000));  // at the watermark = late
  EXPECT_FALSE(wm.IsLate(96000));
}

// --- ReorderBuffer -------------------------------------------------------

TEST(ReorderTest, EmitsInEventTimeOrder) {
  ReorderBuffer<int> buffer(
      ReorderBuffer<int>::Options{1000, false});
  Rng rng(71);
  std::vector<Event<int>> out;
  // Events shuffled within a 1 s out-of-orderness bound.
  for (int i = 0; i < 500; ++i) {
    const Timestamp base = i * 100;
    const Timestamp jitter = static_cast<Timestamp>(rng.NextBounded(900));
    buffer.Push(Event<int>(base + jitter, i), &out);
  }
  buffer.Flush(&out);
  ASSERT_GE(out.size(), 450u);  // some may be dropped as late at the margin
  for (size_t i = 1; i < out.size(); ++i) {
    EXPECT_LE(out[i - 1].event_time, out[i].event_time);
  }
}

TEST(ReorderTest, DropsLateEvents) {
  ReorderBuffer<int> buffer(ReorderBuffer<int>::Options{1000, false});
  std::vector<Event<int>> out;
  buffer.Push(Event<int>(10000, 1), &out);
  buffer.Push(Event<int>(20000, 2), &out);  // watermark now 19000
  buffer.Push(Event<int>(5000, 3), &out);   // far too late
  buffer.Flush(&out);
  EXPECT_EQ(buffer.stats().dropped_late, 1u);
  ASSERT_EQ(out.size(), 2u);
  EXPECT_EQ(out[0].payload, 1);
  EXPECT_EQ(out[1].payload, 2);
}

TEST(ReorderTest, EmitLateOptionKeepsThem) {
  ReorderBuffer<int> buffer(ReorderBuffer<int>::Options{1000, true});
  std::vector<Event<int>> out;
  buffer.Push(Event<int>(10000, 1), &out);
  buffer.Push(Event<int>(20000, 2), &out);
  buffer.Push(Event<int>(5000, 3), &out);
  buffer.Flush(&out);
  EXPECT_EQ(out.size(), 3u);
  EXPECT_EQ(buffer.stats().late, 1u);
  EXPECT_EQ(buffer.stats().dropped_late, 0u);
}

// --- TumblingWindow ---------------------------------------------------------

TEST(TumblingWindowTest, CountsPerKeyPerWindow) {
  TumblingWindow<int, int, int> win(
      1000, [](int* acc, const int& v, Timestamp) { *acc += v; });
  win.Add(1, Event<int>(100, 5));
  win.Add(1, Event<int>(900, 7));
  win.Add(2, Event<int>(500, 1));
  win.Add(1, Event<int>(1100, 9));  // next window
  std::vector<WindowResult<int, int>> out;
  win.AdvanceWatermark(1000, &out);
  ASSERT_EQ(out.size(), 2u);
  EXPECT_EQ(out[0].key, 1);
  EXPECT_EQ(out[0].aggregate, 12);
  EXPECT_EQ(out[1].key, 2);
  EXPECT_EQ(out[1].aggregate, 1);
  EXPECT_EQ(win.open_windows(), 1u);
  win.Close(&out);
  ASSERT_EQ(out.size(), 3u);
  EXPECT_EQ(out[2].aggregate, 9);
}

TEST(TumblingWindowTest, AlignmentBoundaries) {
  TumblingWindow<int, int, int> win(
      1000, [](int* acc, const int&, Timestamp) { *acc += 1; });
  win.Add(0, Event<int>(999, 0));
  win.Add(0, Event<int>(1000, 0));  // belongs to the NEXT window
  std::vector<WindowResult<int, int>> out;
  win.Close(&out);
  ASSERT_EQ(out.size(), 2u);
  EXPECT_EQ(out[0].window_start, 0);
  EXPECT_EQ(out[0].window_end, 1000);
  EXPECT_EQ(out[1].window_start, 1000);
}

TEST(TumblingWindowTest, WatermarkDoesNotCloseOpenWindows) {
  TumblingWindow<int, int, int> win(
      1000, [](int* acc, const int&, Timestamp) { *acc += 1; });
  win.Add(0, Event<int>(500, 0));
  std::vector<WindowResult<int, int>> out;
  win.AdvanceWatermark(999, &out);
  EXPECT_TRUE(out.empty());
  win.AdvanceWatermark(1000, &out);
  EXPECT_EQ(out.size(), 1u);
}

// --- SlidingWindow ---------------------------------------------------------

TEST(SlidingWindowTest, EventEntersOverlappingPanes) {
  // size 1000, slide 500: each event lands in two panes.
  SlidingWindow<int, int, int> win(
      1000, 500, [](int* acc, const int&, Timestamp) { *acc += 1; });
  win.Add(0, Event<int>(750, 0));
  std::vector<WindowResult<int, int>> out;
  win.Close(&out);
  ASSERT_EQ(out.size(), 2u);
  std::vector<Timestamp> starts = {out[0].window_start, out[1].window_start};
  std::sort(starts.begin(), starts.end());
  EXPECT_EQ(starts[0], 0);
  EXPECT_EQ(starts[1], 500);
}

TEST(SlidingWindowTest, AggregatesAcrossPanes) {
  SlidingWindow<int, int, int> win(
      2000, 1000, [](int* acc, const int& v, Timestamp) { *acc += v; });
  win.Add(7, Event<int>(100, 1));
  win.Add(7, Event<int>(1100, 10));
  win.Add(7, Event<int>(2100, 100));
  std::vector<WindowResult<int, int>> out;
  win.Close(&out);
  // Panes: [-1000,1000)=1? No: starts at 0 and -1000... events assign to
  // panes [0,2000)={1,10}, [1000,3000)={10,100}, [2000,4000)={100},
  // [-1000,1000)={1}.
  ASSERT_EQ(out.size(), 4u);
  int64_t total = 0;
  for (const auto& w : out) total += w.aggregate;
  EXPECT_EQ(total, 2 * (1 + 10 + 100));
}

// --- StreamMerger ---------------------------------------------------------

TEST(MergeTest, GlobalEventTimeOrder) {
  std::vector<Event<int>> a, b, c;
  for (int i = 0; i < 50; ++i) a.push_back(Event<int>(i * 30, 100 + i));
  for (int i = 0; i < 50; ++i) b.push_back(Event<int>(i * 50 + 7, 200 + i));
  for (int i = 0; i < 20; ++i) c.push_back(Event<int>(i * 111 + 3, 300 + i));
  StreamMerger<int> merger(
      {VectorSource(a), VectorSource(b), VectorSource(c)});
  const auto merged = merger.DrainAll();
  EXPECT_EQ(merged.size(), 120u);
  for (size_t i = 1; i < merged.size(); ++i) {
    EXPECT_LE(merged[i - 1].event_time, merged[i].event_time);
  }
}

TEST(MergeTest, HandlesEmptySources) {
  StreamMerger<int> merger({VectorSource(std::vector<Event<int>>{}),
                            VectorSource(std::vector<Event<int>>{
                                Event<int>(5, 1)})});
  const auto merged = merger.DrainAll();
  ASSERT_EQ(merged.size(), 1u);
  EXPECT_EQ(merged[0].payload, 1);
}

TEST(MergeTest, AllEmpty) {
  StreamMerger<int> merger({});
  EXPECT_FALSE(merger.Next().has_value());
}

// --- RateMeter / LatencyReservoir ------------------------------------------

TEST(RateTest, EventsPerSecond) {
  RateMeter meter;
  for (int i = 0; i <= 100; ++i) meter.Observe(i * 100);  // 10 evt/s, 10 s
  EXPECT_EQ(meter.count(), 101u);
  EXPECT_NEAR(meter.EventsPerSecond(), 10.1, 0.2);
}

TEST(RateTest, DegenerateCases) {
  RateMeter meter;
  EXPECT_EQ(meter.EventsPerSecond(), 0.0);
  meter.Observe(1000);
  EXPECT_EQ(meter.EventsPerSecond(), 0.0);  // single event: undefined rate
}

TEST(LatencyReservoirTest, MeanAndQuantiles) {
  LatencyReservoir res(1024);
  for (int i = 1; i <= 1000; ++i) res.Observe(i);
  EXPECT_EQ(res.count(), 1000u);
  EXPECT_NEAR(res.Mean(), 500.5, 1e-9);
  EXPECT_NEAR(static_cast<double>(res.Quantile(0.5)), 500.0, 10.0);
  EXPECT_NEAR(static_cast<double>(res.Quantile(0.99)), 990.0, 12.0);
}

TEST(LatencyReservoirTest, BoundedMemoryUnderLongStreams) {
  LatencyReservoir res(128);
  for (int i = 0; i < 100000; ++i) res.Observe(i % 1000);
  EXPECT_EQ(res.count(), 100000u);
  // Quantiles still roughly reflect the uniform 0..999 distribution.
  EXPECT_GT(res.Quantile(0.9), 600);
}

// --- Event helpers --------------------------------------------------------

TEST(EventTest, LatencyComputation) {
  Event<int> e(1000, 3500, 1, 42);
  EXPECT_EQ(e.Latency(), 2500);
  Event<int> no_ingest(1000, 42);
  EXPECT_EQ(no_ingest.Latency(), 0);
}

// --- Regressions: rate/latency metrics under merge & disorder --------------

TEST(RateTest, OutOfOrderStreamUsesEventTimeEnvelope) {
  // Satellite deliveries can surface an *earlier* event after a later one.
  // The observed span must be min..max of event times, not first-arrival..max,
  // or the rate is overestimated.
  RateMeter meter;
  meter.Observe(10'000);  // arrives first but is NOT the earliest event
  for (int i = 0; i <= 100; ++i) meter.Observe(i * 100);  // 0..10 s
  EXPECT_EQ(meter.first_event(), 0);
  EXPECT_EQ(meter.last_event(), 10'000);
  // 102 events over exactly 10 s.
  EXPECT_NEAR(meter.EventsPerSecond(), 10.2, 1e-9);
}

TEST(LatencyReservoirTest, MergeMixedCapacitiesKeepsReplacementInBounds) {
  // Merging a larger-capacity reservoir used to leave the systematic
  // replacement index desynchronised from the thinned sample set.
  LatencyReservoir a(64), b(256);
  for (int i = 1; i <= 500; ++i) a.Observe(10);
  for (int i = 1; i <= 1000; ++i) b.Observe(20);
  a.Merge(b);
  EXPECT_EQ(a.count(), 1500u);
  EXPECT_NEAR(a.Mean(), (500.0 * 10 + 1000.0 * 20) / 1500.0, 1e-9);

  // Replacement after the merge walks a well-defined ring over the thinned
  // set: 64 fresh observations must refresh the *entire* reservoir.
  for (int i = 0; i < 64; ++i) a.Observe(99);
  EXPECT_EQ(a.Quantile(0.0), 99);
  EXPECT_EQ(a.Quantile(1.0), 99);
  EXPECT_EQ(a.count(), 1564u);
}

TEST(LatencyReservoirTest, MergeBelowCapacityKeepsAllSamples) {
  LatencyReservoir a(4096), b(64);
  for (int i = 1; i <= 10; ++i) a.Observe(i);
  for (int i = 11; i <= 20; ++i) b.Observe(i);
  a.Merge(b);
  EXPECT_EQ(a.count(), 20u);
  EXPECT_EQ(a.Quantile(0.0), 1);
  EXPECT_EQ(a.Quantile(1.0), 20);
}

// --- Lossy push (side-stage backpressure primitive) ------------------------

TEST(QueueTest, PushEvictOldestNeverBlocksAndCountsEvictions) {
  BoundedQueue<int> q(2);
  size_t evicted = 0;
  size_t total_evicted = 0;
  for (int i = 1; i <= 5; ++i) {
    EXPECT_TRUE(q.PushEvictOldest(i, &evicted));
    total_evicted += evicted;
  }
  EXPECT_EQ(total_evicted, 3u);
  EXPECT_EQ(q.size(), 2u);
  EXPECT_EQ(q.Pop(), 4);  // the oldest survivors are the newest two
  EXPECT_EQ(q.Pop(), 5);
  q.Close();
  EXPECT_FALSE(q.PushEvictOldest(6, &evicted));
  EXPECT_EQ(evicted, 0u);
}

// --- Async side-stage ------------------------------------------------------

TEST(SideStageTest, SynchronousModeDeliversInline) {
  AsyncSideStage<int, int>::Options opts;
  opts.async = false;
  AsyncSideStage<int, int> stage(opts, [](const int& v) { return v * 2; });
  std::vector<int> seen;
  stage.SetSink([&seen](const int& v) { seen.push_back(v); });
  for (int i = 0; i < 5; ++i) stage.Submit(i);
  // Inline mode: everything delivered before Submit returns.
  EXPECT_EQ(seen, (std::vector<int>{0, 2, 4, 6, 8}));
  const SideStageStats stats = stage.stats();
  EXPECT_EQ(stats.submitted, 5u);
  EXPECT_EQ(stats.processed, 5u);
  EXPECT_EQ(stats.dropped(), 0u);
}

TEST(SideStageTest, FlushIsACompletenessBarrier) {
  AsyncSideStage<int, int>::Options opts;
  opts.queue_depth = 4096;
  AsyncSideStage<int, int> stage(opts, [](const int& v) { return v + 1; });
  for (int i = 0; i < 2000; ++i) stage.Submit(i);
  stage.Flush();
  std::vector<int> out;
  EXPECT_EQ(stage.Drain(&out), 2000u);
  // FIFO: delivery order is submission order.
  for (int i = 0; i < 2000; ++i) ASSERT_EQ(out[i], i + 1);
  const SideStageStats stats = stage.stats();
  EXPECT_EQ(stats.submitted, 2000u);
  EXPECT_EQ(stats.processed + stats.queue_dropped, stats.submitted);
  EXPECT_EQ(stats.queue_dropped, 0u);
}

TEST(SideStageTest, DropOldestUnderSlowTransform) {
  AsyncSideStage<int, int>::Options opts;
  opts.queue_depth = 4;
  opts.max_batch = 1;
  AsyncSideStage<int, int> stage(opts, [](const int& v) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
    return v;
  });
  const int n = 200;
  for (int i = 0; i < n; ++i) stage.Submit(i);  // far faster than 1 ms/item
  stage.Flush();
  const SideStageStats stats = stage.stats();
  EXPECT_EQ(stats.submitted, static_cast<uint64_t>(n));
  EXPECT_GT(stats.queue_dropped, 0u);
  EXPECT_EQ(stats.processed + stats.queue_dropped, stats.submitted);
  EXPECT_GE(stats.max_queue_depth, 4u);
  // Drops thin the stream but never reorder it.
  std::vector<int> out;
  stage.Drain(&out);
  EXPECT_EQ(out.size(), stats.processed);
  EXPECT_TRUE(std::is_sorted(out.begin(), out.end()));
}

TEST(SideStageTest, DrainBufferEvictsOldestWhenUnconsumed) {
  AsyncSideStage<int, int>::Options opts;
  opts.async = false;  // deterministic accounting
  opts.output_capacity = 8;
  AsyncSideStage<int, int> stage(opts, [](const int& v) { return v; });
  for (int i = 0; i < 32; ++i) stage.Submit(i);
  std::vector<int> out;
  EXPECT_EQ(stage.Drain(&out), 8u);
  EXPECT_EQ(out, (std::vector<int>{24, 25, 26, 27, 28, 29, 30, 31}));
  const SideStageStats stats = stage.stats();
  EXPECT_EQ(stats.output_dropped, 24u);
  EXPECT_EQ(stats.processed, 32u);
}

TEST(SideStageStatsTest, MergeAccumulates) {
  SideStageStats a, b;
  a.submitted = 10;
  a.processed = 8;
  a.queue_dropped = 2;
  a.max_queue_depth = 3;
  b.submitted = 20;
  b.processed = 20;
  b.output_dropped = 5;
  b.max_queue_depth = 7;
  a.Merge(b);
  EXPECT_EQ(a.submitted, 30u);
  EXPECT_EQ(a.processed, 28u);
  EXPECT_EQ(a.dropped(), 7u);
  EXPECT_EQ(a.max_queue_depth, 7u);
}

TEST(SideStageTest, SourceAttributionAggregatesPerName) {
  // The transform attributes its per-source wall-clock through the stage;
  // the stage aggregates by name under the stats lock (sync mode here for
  // deterministic accounting — async shares the code path).
  AsyncSideStage<int, int>::Options opts;
  opts.async = false;
  AsyncSideStage<int, int>* stage_ptr = nullptr;
  AsyncSideStage<int, int> stage(opts, [&stage_ptr](const int& v) {
    stage_ptr->AttributeSource("alpha", 5);
    stage_ptr->AttributeSource("beta", static_cast<uint64_t>(10 + v));
    return v;
  });
  stage_ptr = &stage;  // installed before the first Submit
  for (int i = 0; i < 4; ++i) stage.Submit(i);
  stage.Flush();

  const SideStageStats stats = stage.stats();
  ASSERT_EQ(stats.source_latency.size(), 2u);
  const SourceLatency& alpha = stats.source_latency.at("alpha");
  EXPECT_EQ(alpha.calls, 4u);
  EXPECT_EQ(alpha.total_us, 20u);
  EXPECT_EQ(alpha.max_us, 5u);
  EXPECT_DOUBLE_EQ(alpha.MeanUs(), 5.0);
  const SourceLatency& beta = stats.source_latency.at("beta");
  EXPECT_EQ(beta.calls, 4u);
  EXPECT_EQ(beta.total_us, 10u + 11u + 12u + 13u);
  EXPECT_EQ(beta.max_us, 13u);
}

TEST(SideStageStatsTest, MergeUnionsSourceLatencyByName) {
  SideStageStats a, b;
  a.source_latency["zones"] = SourceLatency{10, 100, 20};
  a.source_latency["weather"] = SourceLatency{10, 5000, 900};
  b.source_latency["weather"] = SourceLatency{5, 1000, 400};
  b.source_latency["registry"] = SourceLatency{5, 50, 15};
  a.Merge(b);
  ASSERT_EQ(a.source_latency.size(), 3u);
  EXPECT_EQ(a.source_latency["zones"].calls, 10u);
  EXPECT_EQ(a.source_latency["weather"].calls, 15u);
  EXPECT_EQ(a.source_latency["weather"].total_us, 6000u);
  EXPECT_EQ(a.source_latency["weather"].max_us, 900u);
  EXPECT_EQ(a.source_latency["registry"].total_us, 50u);
  EXPECT_DOUBLE_EQ(a.source_latency["weather"].MeanUs(), 400.0);
}

}  // namespace
}  // namespace marlin
